#!/usr/bin/env python3
"""Crash-recovery drill: kill the metadata plane at every commit stage.

A (6,4) EAR cluster runs a deterministic metadata workload — file
creates, block allocations, corruption churn, stripe encodes (intent/
commit brackets), relocations, deletes — against the write-ahead
journal.  A golden run records a state fingerprint before every journal
record.  Then, for every commit-stage boundary x {before, torn, after},
the same seeded workload is re-run, crashed at that exact point, and
recovered from its journal directory; recovery must reproduce the
fingerprint of exactly the durable prefix, with no stripe left
half-committed.

The run is a pure function of its seed.  Pass ``--keep DIR`` to leave
the journal directories on disk (CI points ``repro journal verify`` at
them afterwards).

Run:  python examples/crash_recovery_drill.py [seed] [--keep DIR]
"""

import argparse
import sys
import tempfile

from repro.faults.crash import run_crash_matrix


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("seed", nargs="?", type=int, default=0)
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="write journal directories under DIR and leave them there",
    )
    parser.add_argument(
        "--checkpoint-midway", action="store_true",
        help="also exercise the checkpoint + log-tail recovery path",
    )
    args = parser.parse_args(argv)

    print(f"running crash-recovery drill with seed {args.seed}...\n")
    if args.keep is not None:
        report = run_crash_matrix(
            args.seed, args.keep, checkpoint_midway=args.checkpoint_midway
        )
    else:
        with tempfile.TemporaryDirectory() as base:
            report = run_crash_matrix(
                args.seed, base, checkpoint_midway=args.checkpoint_midway
            )

    summary = report.summary()
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        print(f"  {key.ljust(width)}  {value}")

    print()
    if not report.clean:
        for case in report.cases:
            if not case.clean:
                print(f"FAILED at seq {case.point.seq} ({case.point.phase}): "
                      f"expected {case.expected[:16]} "
                      f"recovered {case.recovered[:16]} "
                      f"problems={case.half_commit_problems} "
                      f"errors={case.verify_errors + case.recovery_errors}")
        print("DRILL FAILED: some crash point did not recover consistently")
        return 1
    print("drill clean: every crash point recovered the durable prefix, "
          "no half-committed stripes.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
