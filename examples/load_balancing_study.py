#!/usr/bin/env python3
"""Load-balancing study: EAR's constraints vs RR's pure randomness.

The paper's Section V-C: EAR restricts replica placement (core racks, flow
feasibility), so it must be shown to spread storage and read load like RR.
This scenario reproduces both analyses on the 20x20 cluster:

* Experiment C.1 — per-rack storage shares (Figure 14);
* Experiment C.2 — the read hotness index H vs file size (Figure 15);
* bonus: the same comparison at *node* granularity via the block store.

Run:  python examples/load_balancing_study.py
"""

import random

from repro.analysis.load_balance import hotness_index
from repro.experiments.loadbalance import read_balance, storage_balance
from repro.experiments.runner import format_table


def main():
    print("Storage balance (Figure 14): sorted per-rack replica shares\n")
    shares = storage_balance(num_blocks=10_000, runs=10)
    ranks = (0, 4, 9, 14, 19)
    print(format_table(
        ["policy"] + [f"rank {r + 1}" for r in ranks],
        [
            [p.upper()] + [f"{100 * shares[p][r]:.2f}%" for r in ranks]
            for p in ("rr", "ear")
        ],
    ))
    spread_rr = shares["rr"][0] - shares["rr"][-1]
    spread_ear = shares["ear"][0] - shares["ear"][-1]
    print(f"\nmax-min spread: RR {100 * spread_rr:.2f} points, "
          f"EAR {100 * spread_ear:.2f} points "
          "(paper band: 4.92%-5.08%)\n")

    print("Read balance (Figure 15): hotness index H vs file size\n")
    sizes = (1, 10, 100, 1000, 10_000)
    result = read_balance(file_sizes=sizes, runs=8)
    print(format_table(
        ["policy"] + [f"F={s}" for s in sizes],
        [
            [p.upper()] + [f"{100 * result[p][s]:.2f}%" for s in sizes]
            for p in ("rr", "ear")
        ],
    ))
    print("\nH -> 1/R = 5.00% for both policies as files grow: EAR keeps "
          "RR's read balance.")


if __name__ == "__main__":
    main()
