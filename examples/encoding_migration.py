#!/usr/bin/env python3
"""Replication-to-erasure-coding migration on the simulated testbed.

Reproduces the heart of the paper's Experiment A.1/A.2 story as a runnable
scenario: a 12-rack HDFS cluster writes 64 MB blocks under RR and under
EAR, then encodes them to (10, 8) Reed-Solomon with a 12-map MapReduce job
while a Poisson write stream keeps arriving.  Prints encoding throughput,
write response times before/during encoding, and the cross-rack traffic
both policies generated.

Run:  python examples/encoding_migration.py [--stripes N]
"""

import argparse

from repro.erasure.codec import CodeParams
from repro.experiments.config import TestbedConfig
from repro.experiments.runner import format_table
from repro.experiments.testbed import run_raw_encoding, run_write_during_encoding


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--stripes", type=int, default=96,
        help="stripes to write and encode (paper: 96)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = TestbedConfig().scaled(args.stripes)
    code = CodeParams(10, 8)
    print(f"testbed: {config.num_racks} single-node racks, 1 Gb/s, "
          f"{args.stripes} stripes of {code}\n")

    # --- raw encoding (Experiment A.1) -----------------------------------
    rows = []
    raw = {}
    for policy in ("rr", "ear"):
        result = run_raw_encoding(policy, code, config, seed=args.seed)
        raw[policy] = result
        rows.append([
            policy.upper(),
            f"{result.throughput_mb_s:.0f}",
            f"{result.encoding_time:.0f}",
            result.cross_rack_downloads,
            result.cross_rack_uploads,
        ])
    gain = raw["ear"].throughput_mb_s / raw["rr"].throughput_mb_s - 1
    print("Raw encoding performance:")
    print(format_table(
        ["policy", "encode MB/s", "time (s)", "x-rack downloads",
         "x-rack uploads"],
        rows,
    ))
    print(f"-> EAR encoding throughput gain: {100 * gain:+.1f}% "
          "(paper: +20% to +120% depending on congestion)\n")

    # --- encoding under live writes (Experiment A.2) ----------------------
    rows = []
    for policy in ("rr", "ear"):
        result = run_write_during_encoding(
            policy, code, config, seed=args.seed, write_rate=0.5,
            warmup_duration=120.0,
        )
        rows.append([
            policy.upper(),
            f"{result.write_rt_before:.2f}",
            f"{result.write_rt_during:.2f}",
            f"{result.encoding_time:.0f}",
        ])
    print("Encoding while serving writes (0.5 writes/s):")
    print(format_table(
        ["policy", "write RT before (s)", "write RT during (s)",
         "encoding time (s)"],
        rows,
    ))
    print("-> EAR encodes faster *and* disturbs foreground writes less.")


if __name__ == "__main__":
    main()
