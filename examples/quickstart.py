#!/usr/bin/env python3
"""Quickstart: place, encode, break, and repair a stripe with EAR.

Walks the library's core loop on a 20-rack cluster:

1. place 3-way-replicated blocks with encoding-aware replication (EAR);
2. when a stripe seals, plan its encoding — zero cross-rack downloads;
3. compute *real* Reed-Solomon parity over the blocks' bytes;
4. delete the redundant replicas (3x -> 1.4x storage overhead);
5. fail a rack and reconstruct the lost block bit-exactly.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    BlockStore,
    ClusterTopology,
    CodeParams,
    EncodingAwareReplication,
    make_codec,
    plan_ear_encoding,
)

BLOCK_SIZE = 4096  # small blocks so the demo encodes real bytes quickly


def main():
    rng = random.Random(2015)
    topology = ClusterTopology.large_scale()  # 20 racks x 20 nodes
    code = CodeParams(14, 10)  # Facebook's (14, 10): tolerates 4 failures
    print(f"cluster: {topology}")
    print(f"code: {code}, storage overhead {code.storage_overhead:.2f}x\n")

    # -- 1. write blocks through EAR ---------------------------------------
    ear = EncodingAwareReplication(topology, code, rng=rng)
    store = BlockStore(topology)
    payloads = {}
    while not ear.store.sealed_stripes():
        payload = bytes(rng.randrange(256) for _ in range(BLOCK_SIZE))
        block = store.create_block(BLOCK_SIZE)
        decision = ear.place_block(block.block_id)
        store.add_replicas(block.block_id, decision.node_ids)
        payloads[block.block_id] = payload
        if block.block_id < 5:
            print(
                f"  block {block.block_id}: replicas on "
                f"{[topology.node(n).name for n in decision.node_ids]} "
                f"(core rack {decision.core_rack}, {decision.attempts} draw(s))"
            )
        elif block.block_id == 5:
            print("  ... (writing until some core rack accumulates k blocks)")

    stripe = ear.store.sealed_stripes()[0]
    print(f"\nstripe {stripe.stripe_id} sealed with k={code.k} blocks; "
          f"core rack = {stripe.core_rack}")

    # -- 2. plan the encoding ----------------------------------------------
    plan = plan_ear_encoding(topology, store, stripe, code, rng=rng)
    print(f"encoder node: {topology.node(plan.encoder_node).name}")
    print(f"cross-rack downloads: {plan.cross_rack_downloads} (EAR guarantee)")
    print(f"cross-rack parity uploads: {plan.cross_rack_uploads}")

    # -- 3. compute real parity ---------------------------------------------
    codec = make_codec(code.n, code.k, "reed-solomon")
    data = [payloads[b] for b in stripe.block_ids]
    parity = codec.encode(data)
    parity_payloads = {}
    parity_ids = []
    for node, payload in zip(plan.parity_nodes, parity):
        block = store.create_block(BLOCK_SIZE, stripe_id=stripe.stripe_id)
        store.add_replica(block.block_id, node)
        parity_payloads[block.block_id] = payload
        parity_ids.append(block.block_id)

    # -- 4. trim replicas ----------------------------------------------------
    for block_id, keeper in plan.retained.items():
        store.retain_only(block_id, keeper)
    stripe.mark_encoded(parity_ids)
    copies = sum(
        len(store.replica_nodes(b)) for b in stripe.all_block_ids()
    )
    print(f"\nafter encoding: {copies} block copies for {code.k} data blocks "
          f"({copies / code.k:.1f}x overhead, was 3.0x)")

    # -- 5. fail a rack, reconstruct ------------------------------------------
    all_ids = stripe.all_block_ids()
    victim_rack = topology.rack_of(store.replica_nodes(all_ids[0])[0])
    lost = [
        (i, b) for i, b in enumerate(all_ids)
        if topology.rack_of(store.replica_nodes(b)[0]) == victim_rack
    ]
    print(f"\nfailing rack {victim_rack}: loses block(s) "
          f"{[b for _, b in lost]}")
    survivors = {}
    everything = {**payloads, **parity_payloads}
    for i, b in enumerate(all_ids):
        if topology.rack_of(store.replica_nodes(b)[0]) != victim_rack:
            survivors[i] = everything[b]
    for index, block_id in lost:
        rebuilt = codec.reconstruct(index, survivors)
        assert rebuilt == everything[block_id]
        print(f"  block {block_id} reconstructed bit-exactly "
              f"from {code.k} surviving blocks")
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
