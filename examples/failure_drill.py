#!/usr/bin/env python3
"""Failure drill: lose a rack mid-workload and watch the system heal.

A 20x20 cluster encodes EAR-placed stripes to (14, 10) while serving
writes.  At t=120 s a whole rack fails; the failure injector re-replicates
the replicated blocks and rebuilds every encoded block from its stripe,
with all repair traffic flowing through the simulated network.  A tracer
shows what the repair cost the core.

Run:  python examples/failure_drill.py [seed]

Every random choice derives from the single seed (default 7), so a run is
reproducible end to end: same seed, same repair traffic, same report.
"""

import random
import sys

from repro.cluster.topology import ClusterTopology
from repro.core.policy import ReplicationScheme
from repro.erasure.codec import CodeParams
from repro.experiments.runner import build_cluster, populate_until_sealed
from repro.hdfs.failures import FailureInjector
from repro.sim.trace import Tracer
from repro.workloads.writes import WriteStream


def main(seed: int = 7):
    master = random.Random(seed)
    injector_seed = master.randrange(2**32)
    writes_seed = master.randrange(2**32)
    mover_seed = master.randrange(2**32)

    code = CodeParams(14, 10)
    topology = ClusterTopology.large_scale()
    setup = build_cluster(
        "ear", topology, code, ReplicationScheme(3, 2), seed=seed
    )
    populate_until_sealed(setup, 30)
    stripes = setup.namenode.sealed_stripes()[:30]
    print(f"cluster: {topology}; encoding {len(stripes)} stripes of {code} "
          f"(seed {seed})\n")

    injector = FailureInjector(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        rng=random.Random(injector_seed),
    )
    writes = WriteStream(
        setup.sim, setup.client, rate=0.5, rng=random.Random(writes_seed)
    )
    tracer = Tracer.attach(setup.network)

    def encode_all():
        for stripe in stripes:
            yield from setup.encoder.encode_stripe(stripe)
        writes.stop()

    victim_rack = 5
    setup.sim.process(encode_all())
    setup.sim.process(writes.run())
    failure = setup.sim.process(injector.fail_rack_at(120.0, victim_rack))
    setup.sim.run()

    report = injector.reports[-1]
    print(f"rack {victim_rack} failed at t=120 s:")
    print(f"  blocks lost:           {report.blocks_lost}")
    print(f"  re-replicated copies:  {report.blocks_rereplicated}")
    print(f"  erasure-decoded:       {report.blocks_recovered}")
    print(f"  unrecoverable:         {len(report.unrecoverable)}")
    print(f"  repair took:           {report.repair_time:.1f} s\n")

    repair_window = tracer.between(120.0, 120.0 + report.repair_time)
    repair_bytes = sum(r.size for r in repair_window if r.cross_rack)
    print(f"cross-rack traffic during the repair window: "
          f"{repair_bytes / 2**30:.2f} GiB over {len(repair_window)} transfers")

    # Post-mortem: stripes encoded *during* the failure may have degraded
    # layouts — exactly what the periodic PlacementMonitor/BlockMover sweep
    # exists for.  Run one sweep with real traffic and verify.
    from repro.core.relocation import BlockMover, PlacementMonitor

    monitor = PlacementMonitor(topology, code)
    mover = BlockMover(topology, code, rng=random.Random(mover_seed))
    violating = monitor.scan(setup.namenode.block_store, stripes)
    print(f"stripes needing relocation after the repair: {len(violating)}")

    def sweep():
        for stripe in violating:
            yield from setup.raidnode.relocate_if_violating(stripe, mover)

    setup.sim.process(sweep())
    setup.sim.run()
    remaining = monitor.scan(setup.namenode.block_store, stripes)
    print(f"stripes violating after the PlacementMonitor sweep: "
          f"{len(remaining)} (must be 0)")
    assert not remaining
    assert not report.unrecoverable
    print("\nfailure drill complete: no data lost, fault tolerance restored.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
