#!/usr/bin/env python3
"""MapReduce on replicated data: does EAR hurt analytics jobs?

The paper's Experiment A.3: before encoding runs, the cluster is just a
replicated store serving MapReduce.  EAR constrains where replicas go —
does that cost locality or balance?  This scenario replays a SWIM-style
synthetic workload (heavy-tailed Facebook-like job mix) on the testbed
model under both policies and compares the completion curves.

Run:  python examples/mapreduce_locality.py [--jobs N]
"""

import argparse

from repro.experiments.config import TestbedConfig
from repro.experiments.runner import format_table
from repro.experiments.testbed import completion_curve, run_mapreduce_workload


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=30,
                        help="SWIM jobs to replay (paper: 50)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = TestbedConfig()
    curves = {}
    stats = {}
    for policy in ("rr", "ear"):
        records = run_mapreduce_workload(
            policy, num_jobs=args.jobs, config=config, seed=args.seed
        )
        curves[policy] = completion_curve(records)
        runtimes = sorted(r.runtime for r in records)
        stats[policy] = {
            "makespan": max(r.finish_time for r in records),
            "median": runtimes[len(runtimes) // 2],
            "p90": runtimes[int(0.9 * len(runtimes))],
        }

    print(f"SWIM workload: {args.jobs} jobs on the 12-rack testbed model\n")
    print("Cumulative completions over time (Figure 10 shape):")
    checkpoints = [args.jobs // 4, args.jobs // 2, 3 * args.jobs // 4, args.jobs]
    rows = []
    for policy in ("rr", "ear"):
        row = [policy.upper()]
        for target in checkpoints:
            time_at = next(t for t, c in curves[policy] if c >= target)
            row.append(f"{time_at:.0f}s")
        rows.append(row)
    print(format_table(
        ["policy"] + [f"{c} jobs" for c in checkpoints], rows
    ))

    print("\nJob runtime statistics:")
    print(format_table(
        ["policy", "median (s)", "p90 (s)", "makespan (s)"],
        [
            [p.upper(), f"{stats[p]['median']:.1f}", f"{stats[p]['p90']:.1f}",
             f"{stats[p]['makespan']:.0f}"]
            for p in ("rr", "ear")
        ],
    ))
    delta = stats["ear"]["makespan"] / stats["rr"]["makespan"] - 1
    print(f"\n-> makespan difference: {100 * delta:+.1f}% "
          "(paper: 'very similar performance trends')")


if __name__ == "__main__":
    main()
