#!/usr/bin/env python3
"""Pipelined archival drill: RR vs EAR vs RapidRAID-style pipelining.

Runs the same replication-to-erasure-coding transition three ways on one
seeded cluster — random placement with download-and-encode, EAR
placement with download-and-encode (the paper), and EAR placement with
the hop-to-hop pipelined strategy — first undisturbed, then with a
replica-heavy node failing mid-wave to exercise the pipeline's
abort → retry → re-plan → fallback ladder.  Every pipelined stripe's
committed parity is verified byte-for-byte against the whole-stripe
codec.

Each trial is a pure function of its seed: the drill runs the grid
twice and requires identical fingerprints.  It passes when every run is
clean, all parity verifies, and the undisturbed pipelined wave finishes
faster than both download strategies without adding core-link traffic.

Run:  python examples/pipelined_archival_drill.py [seed]
"""

import argparse
import sys

from repro.pipeline import CONTENDERS, pipeline_trial


def run_grid(seed, disturb):
    label = "disturbed" if disturb else "undisturbed"
    print(f"=== {label} transition wave (seed={seed}) ===")
    results = {}
    header = (
        f"  {'contender'.ljust(10)} {'window (s)'.rjust(10)}"
        f" {'MB/s'.rjust(7)} {'core MB'.rjust(8)}"
        f" {'replans'.rjust(7)} {'fallbacks'.rjust(9)}  clean"
    )
    print(header)
    for contender in CONTENDERS:
        result = pipeline_trial(seed=seed, contender=contender,
                                disturb=disturb)
        results[contender] = result
        print(
            f"  {contender.ljust(10)}"
            f" {float(result['encode_window']):10.3f}"
            f" {float(result['encode_mb_per_s']):7.3f}"
            f" {float(result['core_bytes']) / 1e6:8.2f}"
            f" {result['pipeline_replans']:7d}"
            f" {result['pipeline_fallbacks']:9d}"
            f"  {result['clean']}"
        )
    print()
    return results


def check_wave(results, disturb):
    failures = []
    for contender, result in sorted(results.items()):
        if not result["clean"]:
            failures.append(f"{contender}: run not clean ({result})")
        if result["strategy"] == "pipeline":
            if result["parity_verified"] != result["stripes_encoded"]:
                failures.append(
                    f"{contender}: only {result['parity_verified']} of "
                    f"{result['stripes_encoded']} stripes verified"
                )
    if not disturb:
        window = {c: float(r["encode_window"]) for c, r in results.items()}
        core = {c: float(r["core_bytes"]) for c, r in results.items()}
        if not window["pipeline"] < window["ear"] < window["rr"]:
            failures.append(f"expected pipeline < ear < rr windows: {window}")
        if core["pipeline"] > core["ear"]:
            failures.append(f"pipeline added core traffic: {core}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("seed", nargs="?", type=int, default=0)
    args = parser.parse_args(argv)

    failures = []
    fingerprints = {}
    for disturb in (False, True):
        results = run_grid(args.seed, disturb)
        failures.extend(check_wave(results, disturb))
        fingerprints[disturb] = {
            contender: result["fingerprint"]
            for contender, result in results.items()
        }
        # Determinism: the same grid again must fingerprint identically.
        rerun = {
            contender: pipeline_trial(
                seed=args.seed, contender=contender, disturb=disturb
            )["fingerprint"]
            for contender in CONTENDERS
        }
        if rerun != fingerprints[disturb]:
            failures.append(f"fingerprints not reproducible (disturb={disturb})")

    for disturb, prints in sorted(fingerprints.items()):
        label = "disturbed" if disturb else "undisturbed"
        for contender, fingerprint in sorted(prints.items()):
            print(f"fingerprint {label}/{contender}: {fingerprint[:16]}")
    print()

    if failures:
        for failure in failures:
            print(f"DRILL FAILED: {failure}")
        return 1
    print("drill clean: pipelined transition faster than download-and-encode,"
          " zero extra core traffic, all parity verified, fully reproducible")
    return 0


if __name__ == "__main__":
    sys.exit(main())
