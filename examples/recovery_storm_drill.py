#!/usr/bin/env python3
"""Recovery storm drill: correlated failures against encoded stripes.

Runs the four storm scenarios — single node loss under MapReduce load,
whole-rack loss, a scrub storm over latent corruption, and rolling
failures during an in-progress encoding wave — for one placement policy
and seed, then a rack-loss head-to-head of EAR versus recovery-aware
placement.  Every run is a pure function of its seed: the fingerprint
printed per scenario is reproducible across machines and worker counts.

A drill passes when every scenario ends clean (no unrecoverable blocks,
every stripe re-protected) and the recovery-aware policy repairs the
lost rack no slower than EAR.

Run:  python examples/recovery_storm_drill.py [seed] [--policy ear]
"""

import argparse
import sys

from repro.recovery import SCENARIOS, run_storm


def run_scenarios(seed, policy):
    reports = []
    for scenario in SCENARIOS:
        print(f"=== {scenario} (policy={policy}, seed={seed}) ===")
        report = run_storm(scenario, seed=seed, policy=policy, num_stripes=4)
        summary = report.summary()
        width = max(len(key) for key in summary)
        for key, value in summary.items():
            print(f"  {key.ljust(width)}  {value}")
        print()
        reports.append(report)
    return reports


def rack_loss_head_to_head(seed):
    print(f"=== rack_loss head-to-head (seed={seed}) ===")
    means = {}
    for policy in ("ear", "recovery"):
        report = run_storm("rack_loss", seed=seed, policy=policy, num_stripes=4)
        mean = report.recovery_summary.get("repair_time_mean", 0.0)
        means[policy] = mean
        print(
            f"  {policy.ljust(8)}  repair_time_mean={mean:.4f}"
            f"  clean={report.clean}"
        )
    if means["recovery"] <= means["ear"]:
        gain = 1.0 - means["recovery"] / means["ear"] if means["ear"] else 0.0
        print(f"  recovery-aware placement repairs {gain:.0%} faster than EAR")
        return True
    print("  FAIL: recovery-aware placement repaired slower than EAR")
    return False


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("seed", nargs="?", type=int, default=0)
    parser.add_argument(
        "--policy", choices=("rr", "ear", "recovery"), default="ear",
        help="placement policy for the per-scenario pass",
    )
    args = parser.parse_args(argv)

    reports = run_scenarios(args.seed, args.policy)
    head_to_head_ok = rack_loss_head_to_head(args.seed)

    print()
    dirty = [r for r in reports if not r.clean]
    if dirty:
        for report in dirty:
            print(
                f"STORM FAILED: {report.scenario} left"
                f" {len(report.unrecoverable)} unrecoverable block(s)"
            )
        return 1
    if not head_to_head_ok:
        return 1
    print("all storms clean: no data loss, every stripe re-protected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
