#!/usr/bin/env python3
"""Chaos drill: transient faults and bit-rot against a live encode.

An 8x4 EAR cluster batch-encodes 12 stripes through the MapReduce
pipeline while the chaos layer works against it:

* nodes flap down and back up (in-flight transfers abort and retry);
* one whole rack drops off the core for a while;
* NICs degrade into stragglers;
* blocks silently rot on disk (the scrubber catches them);
* one node dies *permanently*, and the prioritized repair queue decodes
  or re-replicates everything it held.

The run is deterministic: the same seed always produces the same final
cluster state, fingerprinted with sha256.  The drill passes when nothing
is lost.

Run:  python examples/chaos_drill.py [seed]
"""

import sys

from repro.faults.drill import run_chaos_drill


def main(seed: int = 0):
    print(f"running chaos drill with seed {seed}...\n")
    report = run_chaos_drill(seed=seed)

    width = max(len(k) for k in report.summary())
    for key, value in report.summary().items():
        print(f"  {key.ljust(width)}  {value}")

    print()
    if not report.clean:
        print("DRILL FAILED: data was lost or encoding did not finish")
        return 1

    # Same seed, same world: replay and compare fingerprints.
    replay = run_chaos_drill(seed=seed)
    assert replay.fingerprint == report.fingerprint, "drill is nondeterministic!"
    print("drill clean: no data loss, all stripes encoded, "
          "replay fingerprint matches.")
    return 0


if __name__ == "__main__":
    sys.exit(main(int(sys.argv[1]) if len(sys.argv) > 1 else 0))
