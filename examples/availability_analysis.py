#!/usr/bin/env python3
"""Availability analysis: why naive core-rack placement is not enough.

Reproduces the paper's Section III analysis end to end:

1. Figure 3 — the closed-form probability that *preliminary* EAR (core
   rack only, no flow-graph validation) violates rack-level fault
   tolerance, compared against a Monte-Carlo over the real policy;
2. the relocation burden this causes (PlacementMonitor + BlockMover);
3. complete EAR's guarantee — zero violations, verified by exhaustively
   enumerating rack failures on every encoded stripe.

Run:  python examples/availability_analysis.py
"""

import random

from repro.analysis.violation import (
    violation_probability,
    violation_probability_mc,
)
from repro.cluster.block import BlockStore
from repro.cluster.failure import FailureModel
from repro.cluster.topology import ClusterTopology
from repro.core.ear import EncodingAwareReplication
from repro.core.flowgraph import StripeFlowGraph
from repro.core.parity import plan_ear_encoding
from repro.core.preliminary import PreliminaryEAR
from repro.core.relocation import BlockMover, PlacementMonitor
from repro.erasure.codec import CodeParams
from repro.experiments.runner import format_table


def figure3():
    print("Figure 3: P[preliminary EAR violates rack fault tolerance]\n")
    racks = (16, 20, 24, 28, 32, 36, 40)
    rows = []
    rng = random.Random(1)
    for r in racks:
        row = [r]
        for k in (6, 8, 10, 12):
            row.append(f"{violation_probability(r, k):.3f}")
        rows.append(row)
    print(format_table(["R", "k=6", "k=8", "k=10", "k=12"], rows))
    mc = violation_probability_mc(16, 12, 50_000, rng)
    print(f"\nMonte-Carlo check at (R=16, k=12): {mc:.3f} "
          f"(closed form {violation_probability(16, 12):.3f}; paper: 0.97)\n")


def relocation_burden():
    """Quantify the cross-rack traffic preliminary EAR's violations cost."""
    topology = ClusterTopology(nodes_per_rack=20, num_racks=16)
    code = CodeParams(8, 6)
    rng = random.Random(7)
    policy = PreliminaryEAR(topology, k=code.k, rng=rng)
    store = BlockStore(topology)
    graph = StripeFlowGraph(topology, c=1)

    num_stripes = 200
    block_id = 0
    while len(policy.store.sealed_stripes()) < num_stripes:
        block = store.create_block(64 * 2**20)
        assert block.block_id == block_id
        decision = policy.place_block(block_id)
        store.add_replicas(block_id, decision.node_ids)
        block_id += 1

    violating = 0
    for stripe in policy.store.sealed_stripes()[:num_stripes]:
        if not graph.is_feasible(policy.stripe_layout(stripe)):
            violating += 1
    print(f"Preliminary EAR on R=16, (8,6): {violating}/{num_stripes} stripes "
          f"({100 * violating / num_stripes:.0f}%) need block relocation "
          f"(closed form predicts "
          f"{100 * violation_probability(16, code.k):.0f}%)\n")


def complete_ear_guarantee():
    topology = ClusterTopology(nodes_per_rack=6, num_racks=10)
    code = CodeParams(6, 4)
    rng = random.Random(11)
    policy = EncodingAwareReplication(topology, code, rng=rng)
    store = BlockStore(topology)
    while len(policy.store.sealed_stripes()) < 25:
        block = store.create_block(64 * 2**20)
        decision = policy.place_block(block.block_id)
        store.add_replicas(block.block_id, decision.node_ids)

    monitor = PlacementMonitor(topology, code)
    model = FailureModel(topology)
    checked = 0
    for stripe in policy.store.sealed_stripes()[:25]:
        plan = plan_ear_encoding(topology, store, stripe, code, rng=rng)
        for bid, node in plan.retained.items():
            store.retain_only(bid, node)
        parity_ids = []
        for node in plan.parity_nodes:
            parity = store.create_block(64 * 2**20)
            store.add_replica(parity.block_id, node)
            parity_ids.append(parity.block_id)
        stripe.mark_encoded(parity_ids)
        assert not monitor.is_violating(store, stripe)
        nodes = [store.replica_nodes(b)[0] for b in stripe.all_block_ids()]
        assert model.stripe_tolerates_rack_failures(
            nodes, code.k, code.num_parity
        )
        checked += 1
    print(f"Complete EAR on R=10, (6,4): {checked}/25 encoded stripes "
          f"tolerate every {code.num_parity}-rack failure — zero relocation "
          "needed (exhaustively verified).")


def main():
    figure3()
    relocation_burden()
    complete_ear_guarantee()


if __name__ == "__main__":
    main()
