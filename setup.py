"""Setup shim enabling legacy editable installs (pip install -e .)."""

from setuptools import setup

setup()
