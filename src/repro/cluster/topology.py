"""Cluster topology: racks, nodes, and the switch hierarchy of Figure 1.

The paper's CFS architecture groups storage nodes into racks.  Nodes within a
rack share a top-of-rack switch; racks are joined by a network core whose
bandwidth is scarce and often over-subscribed.  ``ClusterTopology`` is the
single source of truth for that layout and is consumed by the placement
policies (:mod:`repro.core`) and by the network simulator
(:mod:`repro.sim.netsim`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

NodeId = int
RackId = int

#: Default link speed used throughout the paper's evaluation (1 Gb/s),
#: expressed in bytes per second.
GIGABIT_PER_SECOND_BYTES = 1e9 / 8

#: Default HDFS block size (64 MB) used in all paper experiments.
DEFAULT_BLOCK_SIZE = 64 * 1024 * 1024


@dataclass(frozen=True)
class Node:
    """A storage node (a DataNode in HDFS terms).

    Attributes:
        node_id: Globally unique identifier.
        rack_id: Identifier of the rack housing this node.
        name: Human-readable hostname, e.g. ``"rack3/node7"``.
    """

    node_id: NodeId
    rack_id: RackId
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Rack:
    """A rack of nodes behind one top-of-rack switch.

    Attributes:
        rack_id: Globally unique identifier.
        node_ids: Identifiers of the nodes in this rack, in creation order.
    """

    rack_id: RackId
    node_ids: tuple

    def __len__(self) -> int:
        return len(self.node_ids)

    def __str__(self) -> str:
        return f"rack{self.rack_id}"


class ClusterTopology:
    """Immutable description of a CFS cluster's racks, nodes, and links.

    Args:
        nodes_per_rack: Number of nodes in each rack.  Either a single int
            (homogeneous racks) or a sequence giving each rack's size.
        num_racks: Number of racks; required when ``nodes_per_rack`` is an
            int, ignored otherwise.
        intra_rack_bandwidth: Top-of-rack link speed in bytes/second.
        cross_rack_bandwidth: Rack uplink (to the network core) speed in
            bytes/second.  The paper treats cross-rack bandwidth as the
            bottleneck; over-subscription is modelled by setting this lower
            than ``intra_rack_bandwidth`` times the rack size.

    Example:
        >>> topo = ClusterTopology(nodes_per_rack=20, num_racks=20)
        >>> topo.num_nodes
        400
        >>> topo.rack_of(25)
        1
    """

    def __init__(
        self,
        nodes_per_rack,
        num_racks: Optional[int] = None,
        intra_rack_bandwidth: float = GIGABIT_PER_SECOND_BYTES,
        cross_rack_bandwidth: float = GIGABIT_PER_SECOND_BYTES,
    ) -> None:
        if isinstance(nodes_per_rack, int):
            if num_racks is None:
                raise ValueError("num_racks is required when nodes_per_rack is an int")
            if nodes_per_rack <= 0 or num_racks <= 0:
                raise ValueError("rack and node counts must be positive")
            sizes: List[int] = [nodes_per_rack] * num_racks
        else:
            sizes = list(nodes_per_rack)
            if not sizes or any(s <= 0 for s in sizes):
                raise ValueError("every rack must contain at least one node")
            if num_racks is not None and num_racks != len(sizes):
                raise ValueError("num_racks disagrees with the explicit rack sizes")
        if intra_rack_bandwidth <= 0 or cross_rack_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")

        self.intra_rack_bandwidth = float(intra_rack_bandwidth)
        self.cross_rack_bandwidth = float(cross_rack_bandwidth)

        self._nodes: List[Node] = []
        self._racks: List[Rack] = []
        next_node = 0
        for rack_id, size in enumerate(sizes):
            ids = []
            for __ in range(size):
                node = Node(next_node, rack_id, f"rack{rack_id}/node{next_node}")
                self._nodes.append(node)
                ids.append(next_node)
                next_node += 1
            self._racks.append(Rack(rack_id, tuple(ids)))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total number of storage nodes in the cluster."""
        return len(self._nodes)

    @property
    def num_racks(self) -> int:
        """Total number of racks in the cluster."""
        return len(self._racks)

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes, indexed by node id."""
        return tuple(self._nodes)

    @property
    def racks(self) -> Sequence[Rack]:
        """All racks, indexed by rack id."""
        return tuple(self._racks)

    def node(self, node_id: NodeId) -> Node:
        """Return the node with the given id."""
        return self._nodes[self._check_node(node_id)]

    def rack(self, rack_id: RackId) -> Rack:
        """Return the rack with the given id."""
        return self._racks[self._check_rack(rack_id)]

    def rack_of(self, node_id: NodeId) -> RackId:
        """Return the id of the rack that houses ``node_id``."""
        return self._nodes[self._check_node(node_id)].rack_id

    def nodes_in_rack(self, rack_id: RackId) -> Sequence[NodeId]:
        """Return the node ids living in ``rack_id``."""
        return self._racks[self._check_rack(rack_id)].node_ids

    def rack_ids(self) -> Iterator[RackId]:
        """Iterate over all rack ids."""
        return iter(range(self.num_racks))

    def node_ids(self) -> Iterator[NodeId]:
        """Iterate over all node ids."""
        return iter(range(self.num_nodes))

    def same_rack(self, a: NodeId, b: NodeId) -> bool:
        """True when both nodes share a top-of-rack switch."""
        return self.rack_of(a) == self.rack_of(b)

    def is_cross_rack(self, src: NodeId, dst: NodeId) -> bool:
        """True when a transfer from ``src`` to ``dst`` crosses the core."""
        return not self.same_rack(src, dst)

    # ------------------------------------------------------------------
    # Convenience constructors mirroring the paper's two deployments
    # ------------------------------------------------------------------
    @classmethod
    def testbed(cls, num_racks: int = 12, bandwidth: float = GIGABIT_PER_SECOND_BYTES):
        """The 13-machine testbed of Section V-A.

        One master (not modelled: it stores no data) plus 12 slaves, each
        slave placed in its own rack, all behind one 1 Gb/s switch.
        """
        return cls(
            nodes_per_rack=1,
            num_racks=num_racks,
            intra_rack_bandwidth=bandwidth,
            cross_rack_bandwidth=bandwidth,
        )

    @classmethod
    def large_scale(
        cls,
        num_racks: int = 20,
        nodes_per_rack: int = 20,
        bandwidth: float = GIGABIT_PER_SECOND_BYTES,
    ):
        """The simulated 400-node CFS of Section V-B (20 racks x 20 nodes)."""
        return cls(
            nodes_per_rack=nodes_per_rack,
            num_racks=num_racks,
            intra_rack_bandwidth=bandwidth,
            cross_rack_bandwidth=bandwidth,
        )

    # ------------------------------------------------------------------
    # Internal validation helpers
    # ------------------------------------------------------------------
    def _check_node(self, node_id: NodeId) -> NodeId:
        if not 0 <= node_id < len(self._nodes):
            raise KeyError(f"unknown node id {node_id}")
        return node_id

    def _check_rack(self, rack_id: RackId) -> RackId:
        if not 0 <= rack_id < len(self._racks):
            raise KeyError(f"unknown rack id {rack_id}")
        return rack_id

    def __repr__(self) -> str:
        return (
            f"ClusterTopology(num_racks={self.num_racks}, "
            f"num_nodes={self.num_nodes})"
        )
