"""Cluster substrate: topology, blocks, replicas, and failure analysis.

This package models the physical layout of a clustered file system (CFS):
racks of storage nodes connected by top-of-rack switches and a network core
(Figure 1 of the paper).  It also provides the block/replica bookkeeping that
the placement policies in :mod:`repro.core` operate on, and the availability
analysis used to decide whether an erasure-coded stripe satisfies node- and
rack-level fault tolerance.
"""

from repro.cluster.block import (
    Block,
    BlockId,
    BlockStore,
    Replica,
)
from repro.cluster.failure import (
    FailureModel,
    stripe_node_fault_tolerance,
    stripe_rack_fault_tolerance,
    stripe_survives,
    violates_rack_fault_tolerance,
)
from repro.cluster.topology import (
    ClusterTopology,
    Node,
    NodeId,
    Rack,
    RackId,
)

__all__ = [
    "Block",
    "BlockId",
    "BlockStore",
    "ClusterTopology",
    "FailureModel",
    "Node",
    "NodeId",
    "Rack",
    "RackId",
    "Replica",
    "stripe_node_fault_tolerance",
    "stripe_rack_fault_tolerance",
    "stripe_survives",
    "violates_rack_fault_tolerance",
]
