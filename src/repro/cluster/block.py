"""Blocks, replicas, and the per-node block store.

A CFS file is a sequence of fixed-size blocks; each block initially exists as
``r`` replicas on distinct nodes and, after the encoding operation, as a
single copy that is protected by parity blocks of its stripe.  ``BlockStore``
tracks where every copy lives and enforces the structural invariants that the
placement policies rely on (no two copies of a block on one node, capacity
accounting, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.journal.records import (
    AddBlock,
    AssignStripe,
    ClearCorrupted,
    DeleteReplica,
    MarkCorrupted,
    ParityAdd,
    PlaceReplica,
    Relocate,
)

BlockId = int


class BlockKind:
    """Enumeration of block roles within a stripe."""

    DATA = "data"
    PARITY = "parity"


@dataclass(frozen=True)
class Block:
    """An immutable descriptor of a logical block.

    Attributes:
        block_id: Globally unique identifier.
        size: Block size in bytes (64 MB by default in the paper).
        kind: ``BlockKind.DATA`` or ``BlockKind.PARITY``.
        stripe_id: The stripe this block belongs to, or ``None`` before the
            block has been assigned to a stripe.
    """

    block_id: BlockId
    size: int
    kind: str = BlockKind.DATA
    stripe_id: Optional[int] = None

    def is_parity(self) -> bool:
        """True for parity blocks produced by the encoding operation."""
        return self.kind == BlockKind.PARITY


@dataclass(frozen=True)
class Replica:
    """One physical copy of a block on a specific node.

    Attributes:
        block_id: The logical block this copy belongs to.
        node_id: The node storing the copy.
        is_primary: True for the first replica written — under EAR this is
            the copy that lives in the stripe's core rack.
    """

    block_id: BlockId
    node_id: NodeId
    is_primary: bool = False


class BlockStore:
    """Tracks the replica locations of every block in the cluster.

    The store is the authoritative map used by the NameNode model; placement
    policies record decisions here and the encoding pipeline consults and
    mutates it (replica deletion, parity insertion).

    Args:
        topology: The cluster this store describes.

    Raises:
        ValueError: On attempts to violate structural invariants, e.g.
            placing two replicas of one block on the same node.

    When a :class:`~repro.journal.journal.MetadataJournal` is attached
    (``self.journal``), every mutator appends its typed record *before*
    touching in-memory state — the write-ahead invariant the recovery
    path relies on.  The ``restore_*`` / ``resume_ids`` entry points are
    for recovery and checkpoint loading only and never journal.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology
        self.journal = None
        self._blocks: Dict[BlockId, Block] = {}
        self._replicas: Dict[BlockId, List[Replica]] = {}
        self._node_blocks: Dict[NodeId, Set[BlockId]] = {
            node_id: set() for node_id in topology.node_ids()
        }
        self._next_id = 0
        self._corrupted: Set[Tuple[BlockId, NodeId]] = set()

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------
    @property
    def next_block_id(self) -> BlockId:
        """The id the next created block will receive."""
        return self._next_id

    def create_block(
        self,
        size: int,
        kind: str = BlockKind.DATA,
        stripe_id: Optional[int] = None,
    ) -> Block:
        """Allocate a fresh block id and register the block."""
        if size <= 0:
            raise ValueError("block size must be positive")
        block = Block(self._next_id, size, kind, stripe_id)
        if self.journal is not None:
            self.journal.append(AddBlock(
                block_id=block.block_id, size=size, kind=kind,
                stripe_id=stripe_id,
            ))
        self._next_id = block.block_id + 1
        self._blocks[block.block_id] = block
        self._replicas[block.block_id] = []
        return block

    def add_parity_block(
        self, size: int, stripe_id: int, node_id: NodeId
    ) -> Block:
        """Create a parity block already placed on ``node_id``.

        Journals a single :class:`~repro.journal.records.ParityAdd`
        (the commit bracket's interior record) instead of separate
        add-block/place-replica records, then applies both steps.
        """
        if size <= 0:
            raise ValueError("block size must be positive")
        self.topology.node(node_id)
        if self.journal is not None:
            self.journal.append(ParityAdd(
                stripe_id=stripe_id, block_id=self._next_id,
                node_id=node_id, size=size,
            ))
        saved, self.journal = self.journal, None
        try:
            block = self.create_block(
                size, kind=BlockKind.PARITY, stripe_id=stripe_id
            )
            self.add_replica(block.block_id, node_id, is_primary=True)
        finally:
            self.journal = saved
        return block

    def restore_block(self, block: Block) -> Block:
        """Re-register a block with its original id (recovery only)."""
        if block.block_id in self._blocks:
            raise ValueError(f"block {block.block_id} already registered")
        self._blocks[block.block_id] = block
        self._replicas[block.block_id] = []
        self._next_id = max(self._next_id, block.block_id + 1)
        return block

    def resume_ids(self, next_id: BlockId) -> None:
        """Fast-forward the id counter (recovery/checkpoint load only)."""
        self._next_id = max(self._next_id, next_id)

    def assign_stripe(self, block_id: BlockId, stripe_id: int) -> Block:
        """Bind a block to a stripe (done when the core rack seals k blocks)."""
        old = self._get_block(block_id)
        if self.journal is not None and old.stripe_id != stripe_id:
            self.journal.append(AssignStripe(
                block_id=block_id, stripe_id=stripe_id
            ))
        updated = Block(old.block_id, old.size, old.kind, stripe_id)
        self._blocks[block_id] = updated
        return updated

    def block(self, block_id: BlockId) -> Block:
        """Return the descriptor for ``block_id``."""
        return self._get_block(block_id)

    def blocks(self) -> Iterator[Block]:
        """Iterate over all registered blocks."""
        return iter(list(self._blocks.values()))

    def __contains__(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def add_replica(
        self, block_id: BlockId, node_id: NodeId, is_primary: bool = False
    ) -> Replica:
        """Record a new replica of ``block_id`` on ``node_id``.

        Raises:
            ValueError: If the node already stores a copy of this block.
        """
        self._get_block(block_id)
        self.topology.node(node_id)
        if node_id in self.replica_nodes(block_id):
            raise ValueError(
                f"node {node_id} already stores a replica of block {block_id}"
            )
        if self.journal is not None:
            self.journal.append(PlaceReplica(
                block_id=block_id, node_id=node_id, is_primary=is_primary
            ))
        replica = Replica(block_id, node_id, is_primary)
        self._replicas[block_id].append(replica)
        self._node_blocks[node_id].add(block_id)
        return replica

    def add_replicas(self, block_id: BlockId, node_ids: Sequence[NodeId]) -> List[Replica]:
        """Record all replicas for a block; the first one is primary."""
        return [
            self.add_replica(block_id, node_id, is_primary=(index == 0))
            for index, node_id in enumerate(node_ids)
        ]

    def remove_replica(self, block_id: BlockId, node_id: NodeId) -> None:
        """Delete the copy of ``block_id`` held by ``node_id``.

        Raises:
            KeyError: If the node holds no copy of the block.
        """
        replicas = self._replicas[self._get_block(block_id).block_id]
        for index, replica in enumerate(replicas):
            if replica.node_id == node_id:
                if self.journal is not None:
                    self.journal.append(DeleteReplica(
                        block_id=block_id, node_id=node_id
                    ))
                del replicas[index]
                self._node_blocks[node_id].discard(block_id)
                self._corrupted.discard((block_id, node_id))
                return
        raise KeyError(f"node {node_id} stores no replica of block {block_id}")

    def retain_only(self, block_id: BlockId, node_id: NodeId) -> None:
        """Keep exactly the copy on ``node_id``; delete every other replica.

        This is step (iii) of the encoding operation: after parity blocks are
        written, the redundant replicas of each data block are removed.
        """
        if node_id not in self.replica_nodes(block_id):
            raise KeyError(f"node {node_id} stores no replica of block {block_id}")
        for other in list(self.replica_nodes(block_id)):
            if other != node_id:
                self.remove_replica(block_id, other)

    def move_replica(self, block_id: BlockId, src: NodeId, dst: NodeId) -> None:
        """Relocate one copy from ``src`` to ``dst`` (BlockMover behaviour).

        Journaled as one semantic :class:`~repro.journal.records.Relocate`
        record; the remove/add sub-steps run with the journal detached.
        """
        nodes = self.replica_nodes(block_id)
        if src not in nodes:
            raise KeyError(
                f"node {src} stores no replica of block {block_id}"
            )
        self.topology.node(dst)
        if dst in nodes:
            raise ValueError(
                f"node {dst} already stores a replica of block {block_id}"
            )
        if self.journal is not None:
            self.journal.append(Relocate(
                block_id=block_id, src_node=src, dst_node=dst
            ))
        saved, self.journal = self.journal, None
        try:
            self.remove_replica(block_id, src)
            self.add_replica(block_id, dst)
        finally:
            self.journal = saved

    # ------------------------------------------------------------------
    # Corruption (bit-rot) markers
    # ------------------------------------------------------------------
    def mark_corrupted(self, block_id: BlockId, node_id: NodeId) -> None:
        """Flag one replica as bit-rotted (its checksum no longer matches).

        The replica still occupies space and shows up in
        :meth:`replica_nodes`, but readers and repair pipelines must treat
        it as unusable — :meth:`healthy_replica_nodes` excludes it.

        Raises:
            KeyError: If the node holds no copy of the block.
        """
        if node_id not in self.replica_nodes(block_id):
            raise KeyError(
                f"node {node_id} stores no replica of block {block_id}"
            )
        if (block_id, node_id) in self._corrupted:
            return
        if self.journal is not None:
            self.journal.append(MarkCorrupted(
                block_id=block_id, node_id=node_id
            ))
        self._corrupted.add((block_id, node_id))

    def clear_corrupted(self, block_id: BlockId, node_id: NodeId) -> None:
        """Unflag a replica (e.g. after it was rewritten from a good copy)."""
        if (block_id, node_id) not in self._corrupted:
            return
        if self.journal is not None:
            self.journal.append(ClearCorrupted(
                block_id=block_id, node_id=node_id
            ))
        self._corrupted.discard((block_id, node_id))

    def is_corrupted(self, block_id: BlockId, node_id: NodeId) -> bool:
        """True when the replica's stored bytes are known-bad."""
        return (block_id, node_id) in self._corrupted

    def corrupted_replicas(self) -> List[Tuple[BlockId, NodeId]]:
        """All flagged (block, node) pairs, deterministically ordered."""
        return sorted(self._corrupted)

    def corrupted_on_node(self, node_id: NodeId) -> List[BlockId]:
        """Flagged blocks on one node, sorted (the scrubber's scan unit)."""
        return sorted(b for b, n in self._corrupted if n == node_id)

    def healthy_replica_nodes(self, block_id: BlockId) -> Tuple[NodeId, ...]:
        """Nodes holding an uncorrupted copy of ``block_id``."""
        return tuple(
            n
            for n in self.replica_nodes(block_id)
            if (block_id, n) not in self._corrupted
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def replicas(self, block_id: BlockId) -> Sequence[Replica]:
        """All current replicas of a block."""
        return tuple(self._replicas[self._get_block(block_id).block_id])

    def replica_nodes(self, block_id: BlockId) -> Tuple[NodeId, ...]:
        """Node ids currently holding a copy of ``block_id``."""
        return tuple(r.node_id for r in self._replicas[self._get_block(block_id).block_id])

    def replica_racks(self, block_id: BlockId) -> Tuple[RackId, ...]:
        """Rack ids currently holding a copy (duplicates preserved)."""
        return tuple(self.topology.rack_of(n) for n in self.replica_nodes(block_id))

    def primary_node(self, block_id: BlockId) -> Optional[NodeId]:
        """The node holding the first-written replica, if it still exists."""
        for replica in self._replicas[self._get_block(block_id).block_id]:
            if replica.is_primary:
                return replica.node_id
        return None

    def blocks_on_node(self, node_id: NodeId) -> Set[BlockId]:
        """Ids of blocks with a copy on ``node_id``."""
        self.topology.node(node_id)
        return set(self._node_blocks[node_id])

    def blocks_in_rack(self, rack_id: RackId) -> Set[BlockId]:
        """Ids of blocks with at least one copy in ``rack_id``."""
        found: Set[BlockId] = set()
        for node_id in self.topology.nodes_in_rack(rack_id):
            found.update(self._node_blocks[node_id])
        return found

    def replica_count_per_node(self) -> Dict[NodeId, int]:
        """Number of replicas stored on each node (storage load)."""
        return {
            node_id: len(blocks) for node_id, blocks in self._node_blocks.items()
        }

    def replica_count_per_rack(self) -> Dict[RackId, int]:
        """Number of replicas stored in each rack (rack-level storage load)."""
        counts = {rack_id: 0 for rack_id in self.topology.rack_ids()}
        for node_id, blocks in self._node_blocks.items():
            counts[self.topology.rack_of(node_id)] += len(blocks)
        return counts

    def bytes_on_node(self, node_id: NodeId) -> int:
        """Total bytes stored on a node."""
        return sum(self._blocks[b].size for b in self._node_blocks[node_id])

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _get_block(self, block_id: BlockId) -> Block:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise KeyError(f"unknown block id {block_id}") from None
