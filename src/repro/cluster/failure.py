"""Failure and availability analysis for replicated and erasure-coded data.

The paper's availability requirement (Section II-B, III-B) is twofold:

* **node level** — an ``(n, k)`` stripe placed on ``n`` distinct nodes
  tolerates any ``n - k`` node failures;
* **rack level** — with at most ``c`` blocks of a stripe per rack, the stripe
  tolerates ``floor((n - k) / c)`` rack failures.  Facebook's deployment uses
  ``c = 1`` (one block per rack, ``n`` racks, ``n - k`` rack failures
  tolerated).

``violates_rack_fault_tolerance`` is the check performed by the
``PlacementMonitor`` module of HDFS-RAID: stripes that fail it must have
blocks relocated by the ``BlockMover`` (see :mod:`repro.core.relocation`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence, Tuple

from repro.cluster.topology import ClusterTopology, NodeId, RackId


def stripe_node_fault_tolerance(node_ids: Sequence[NodeId], k: int) -> int:
    """Number of node failures an ``(n, k)`` stripe placed on ``node_ids`` survives.

    With all ``n`` blocks on distinct nodes this is ``n - k``; co-located
    blocks reduce it because one node failure then removes several blocks.

    Args:
        node_ids: The node of each of the stripe's ``n`` blocks.
        k: Number of blocks required to reconstruct the stripe.

    Returns:
        The largest ``t`` such that every ``t``-node failure leaves at least
        ``k`` blocks available.
    """
    n = len(node_ids)
    if not 0 < k <= n:
        raise ValueError(f"require 0 < k <= n, got k={k}, n={n}")
    per_node = sorted(Counter(node_ids).values(), reverse=True)
    budget = n - k  # how many blocks we can afford to lose
    tolerated = 0
    for blocks_lost in per_node:
        if budget - blocks_lost < 0:
            break
        budget -= blocks_lost
        tolerated += 1
    return tolerated


def stripe_rack_fault_tolerance(
    topology: ClusterTopology, node_ids: Sequence[NodeId], k: int
) -> int:
    """Number of rack failures an ``(n, k)`` stripe survives.

    Computed greedily: losing the racks holding the most blocks first is the
    worst case, so the stripe tolerates ``t`` rack failures iff the ``t``
    fullest racks together hold at most ``n - k`` blocks.
    """
    n = len(node_ids)
    if not 0 < k <= n:
        raise ValueError(f"require 0 < k <= n, got k={k}, n={n}")
    per_rack = sorted(
        Counter(topology.rack_of(node) for node in node_ids).values(), reverse=True
    )
    budget = n - k
    tolerated = 0
    for blocks_lost in per_rack:
        if budget - blocks_lost < 0:
            break
        budget -= blocks_lost
        tolerated += 1
    return tolerated


def violates_rack_fault_tolerance(
    topology: ClusterTopology,
    node_ids: Sequence[NodeId],
    k: int,
    required_rack_failures: int,
) -> bool:
    """PlacementMonitor check: does the stripe need block relocation?

    Args:
        topology: Cluster layout.
        node_ids: Node of each of the stripe's blocks.
        k: Reconstruction threshold of the code.
        required_rack_failures: Rack failures the deployment must survive
            (``n - k`` at Facebook; ``floor((n - k) / c)`` with parameter c).

    Returns:
        True when the current layout tolerates fewer rack failures than
        required, i.e. the BlockMover must relocate blocks.
    """
    return (
        stripe_rack_fault_tolerance(topology, node_ids, k) < required_rack_failures
    )


def stripe_survives(
    topology: ClusterTopology,
    node_ids: Sequence[NodeId],
    k: int,
    failed_nodes: Iterable[NodeId] = (),
    failed_racks: Iterable[RackId] = (),
) -> bool:
    """Can the stripe be reconstructed after the given concrete failures?

    A stripe survives iff at least ``k`` of its blocks live on nodes that are
    neither failed themselves nor inside a failed rack.
    """
    failed_node_set = set(failed_nodes)
    failed_rack_set = set(failed_racks)
    alive = sum(
        1
        for node in node_ids
        if node not in failed_node_set
        and topology.rack_of(node) not in failed_rack_set
    )
    return alive >= k


@dataclass(frozen=True)
class FailureScenario:
    """A concrete set of simultaneous failures."""

    failed_nodes: Tuple[NodeId, ...] = ()
    failed_racks: Tuple[RackId, ...] = ()


class FailureModel:
    """Exhaustive failure enumeration for availability verification.

    Used by tests and the availability example to *prove* (for small
    clusters) that a stripe layout meets its fault-tolerance contract, by
    enumerating all node subsets / rack subsets of a given size.
    """

    def __init__(self, topology: ClusterTopology) -> None:
        self.topology = topology

    def all_node_failures(self, count: int) -> Iterable[FailureScenario]:
        """Every scenario in which exactly ``count`` nodes fail."""
        for nodes in combinations(range(self.topology.num_nodes), count):
            yield FailureScenario(failed_nodes=nodes)

    def all_rack_failures(self, count: int) -> Iterable[FailureScenario]:
        """Every scenario in which exactly ``count`` racks fail."""
        for racks in combinations(range(self.topology.num_racks), count):
            yield FailureScenario(failed_racks=racks)

    def stripe_tolerates_node_failures(
        self, node_ids: Sequence[NodeId], k: int, count: int
    ) -> bool:
        """True when the stripe survives *every* ``count``-node failure."""
        relevant = sorted(set(node_ids))
        # Only failures hitting the stripe's own nodes matter; checking those
        # subsets is equivalent to checking all subsets of the whole cluster.
        max_hit = min(count, len(relevant))
        for hit in combinations(relevant, max_hit):
            if not stripe_survives(self.topology, node_ids, k, failed_nodes=hit):
                return False
        return True

    def stripe_tolerates_rack_failures(
        self, node_ids: Sequence[NodeId], k: int, count: int
    ) -> bool:
        """True when the stripe survives *every* ``count``-rack failure."""
        relevant = sorted({self.topology.rack_of(n) for n in node_ids})
        max_hit = min(count, len(relevant))
        for hit in combinations(relevant, max_hit):
            if not stripe_survives(self.topology, node_ids, k, failed_racks=hit):
                return False
        return True
