"""Poisson read-request streams.

The paper's first sentence about replication: it "improves read performance
by load-balancing read requests across multiple replicas".  This stream
issues block reads from random nodes at a Poisson rate, so experiments can
measure read latency under RR vs EAR directly in the DES (complementing the
analytic hotness index of Experiment C.2) and quantify how encoding-induced
replica loss affects read locality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cluster.block import BlockId
from repro.cluster.topology import NodeId
from repro.hdfs.client import CFSClient
from repro.sim.engine import Simulator
from repro.sim.sources import poisson_arrivals
from repro.workloads.seeding import experiment_rng


@dataclass(frozen=True)
class ReadResult:
    """Outcome of one block read."""

    block_id: BlockId
    reader_node: NodeId
    source_node: NodeId
    start_time: float
    latency: float

    def was_local(self) -> bool:
        """True when the read was served from the reader's own node."""
        return self.source_node == self.reader_node


class ReadStream:
    """Issues block reads with Poisson arrivals from random nodes.

    Args:
        sim: Simulation kernel.
        client: CFS client.
        rate: Mean requests/second.
        rng: Seeded random source; defaults to a fresh generator seeded
            with the experiment seed (never process entropy).
        block_pool: Blocks eligible to be read; resampled per request.
            When omitted, each request picks uniformly from all blocks
            currently known to the NameNode.
        reader_nodes: Pool of reading nodes; all DataNodes when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        client: CFSClient,
        rate: float,
        rng: Optional[random.Random] = None,
        block_pool: Optional[List[BlockId]] = None,
        reader_nodes: Optional[List[NodeId]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.client = client
        self.rate = rate
        self.rng = rng if rng is not None else experiment_rng()
        self.block_pool = block_pool
        self.reader_nodes = (
            list(client.namenode.topology.node_ids())
            if reader_nodes is None
            else list(reader_nodes)
        )
        if not self.reader_nodes:
            raise ValueError("reader pool cannot be empty")
        self.results: List[ReadResult] = []
        self._stopped = False

    def stop(self) -> None:
        """Stop issuing new requests (in-flight reads complete)."""
        self._stopped = True

    def run(
        self, limit: Optional[int] = None, duration: Optional[float] = None
    ) -> Generator:
        """The arrival process (run inside ``sim.process``)."""
        start = self.sim.now
        issued = 0
        for gap in poisson_arrivals(self.rng, self.rate, limit):
            yield self.sim.timeout(gap)
            if self._stopped:
                break
            if duration is not None and self.sim.now - start >= duration:
                break
            block_id = self._pick_block()
            if block_id is None:
                continue  # nothing to read yet
            reader = self.rng.choice(self.reader_nodes)
            self.sim.process(self._one_read(block_id, reader))
            issued += 1
        return issued

    def mean_latency(self) -> float:
        """Mean completed read latency.

        Raises:
            ValueError: With no completed reads.
        """
        if not self.results:
            raise ValueError("no reads completed")
        return sum(r.latency for r in self.results) / len(self.results)

    def local_fraction(self) -> float:
        """Share of reads served node-locally."""
        if not self.results:
            raise ValueError("no reads completed")
        return sum(1 for r in self.results if r.was_local()) / len(self.results)

    # ------------------------------------------------------------------
    def _pick_block(self) -> Optional[BlockId]:
        if self.block_pool is not None:
            return self.rng.choice(self.block_pool) if self.block_pool else None
        store = self.client.namenode.block_store
        if not len(store):
            return None
        blocks = [b.block_id for b in store.blocks()]
        return self.rng.choice(blocks)

    def _one_read(self, block_id: BlockId, reader: NodeId) -> Generator:
        start = self.sim.now
        source = yield from self.client.read_block(block_id, reader)
        self.results.append(
            ReadResult(
                block_id=block_id,
                reader_node=reader,
                source_node=source,
                start_time=start,
                latency=self.sim.now - start,
            )
        )
