"""Shared seeded-RNG default for workload generators.

Every workload stream takes an injected ``random.Random`` so experiment
drivers control the arrival processes exactly (DET001's contract).  When
a caller omits the RNG — exploratory scripts, doctests — the stream must
*still* be reproducible, so the default derives from one well-known
experiment seed rather than process entropy: two bare runs of the same
script replay byte-identical workloads (what keeps SWIM replays
comparable across machines).
"""

from __future__ import annotations

import random
from typing import Optional

#: The default seed used across the experiment drivers and examples.
EXPERIMENT_SEED = 0


def experiment_rng(seed: Optional[int] = None) -> random.Random:
    """A fresh ``random.Random`` seeded with ``seed`` (default: the
    experiment seed).  Never returns an unseeded generator."""
    return random.Random(EXPERIMENT_SEED if seed is None else seed)
