"""Background traffic: Poisson transfer streams and constant cross-traffic.

Experiment B.2's background stream issues Poisson requests (1 request/s),
each moving an exponentially sized payload (mean 64 MB) between two nodes,
with a 1:1 cross-rack to intra-rack mix.  Experiment A.1's Iperf UDP streams
are constant-rate flows between fixed node pairs; we model them by derating
the effective bandwidth of the NICs they occupy, exactly the effect the
paper describes ("a higher UDP sending rate implies less effective network
bandwidth").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology, NodeId
from repro.sim.engine import Simulator
from repro.sim.netsim import Network
from repro.sim.sources import exponential_sizes, poisson_arrivals
from repro.workloads.seeding import experiment_rng


class BackgroundTraffic:
    """Poisson node-to-node transfer stream (Experiment B.2).

    Args:
        sim: Simulation kernel.
        network: Link model.
        rate: Mean requests/second.
        rng: Seeded random source; defaults to a fresh generator seeded
            with the experiment seed.
        mean_size: Mean transfer size in bytes (exponentially distributed).
        cross_rack_fraction: Probability a request crosses racks (the paper
            uses a 1:1 mix, i.e. 0.5).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        rate: float,
        rng: Optional[random.Random] = None,
        mean_size: float = 64 * 1024 * 1024,
        cross_rack_fraction: float = 0.5,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not 0 <= cross_rack_fraction <= 1:
            raise ValueError("cross_rack_fraction must lie in [0, 1]")
        self.sim = sim
        self.network = network
        self.topology = network.topology
        self.rate = rate
        self.rng = rng if rng is not None else experiment_rng()
        self.mean_size = mean_size
        self.cross_rack_fraction = cross_rack_fraction
        self.completed: List[Tuple[NodeId, NodeId, float]] = []
        self._sizes = exponential_sizes(self.rng, mean_size)
        self._stopped = False

    def stop(self) -> None:
        """Stop issuing new requests (in-flight transfers complete)."""
        self._stopped = True

    def run(
        self, limit: Optional[int] = None, duration: Optional[float] = None
    ) -> Generator:
        """The arrival process (run inside ``sim.process``)."""
        start = self.sim.now
        issued = 0
        for gap in poisson_arrivals(self.rng, self.rate, limit):
            yield self.sim.timeout(gap)
            if self._stopped:
                break
            if duration is not None and self.sim.now - start >= duration:
                break
            src, dst = self._pick_pair()
            size = next(self._sizes)
            self.sim.process(self._one_transfer(src, dst, size))
            issued += 1
        return issued

    def _pick_pair(self) -> Tuple[NodeId, NodeId]:
        src = self.rng.randrange(self.topology.num_nodes)
        src_rack = self.topology.rack_of(src)
        if self.rng.random() < self.cross_rack_fraction:
            candidates = [
                n
                for n in self.topology.node_ids()
                if self.topology.rack_of(n) != src_rack
            ]
        else:
            candidates = [
                n
                for n in self.topology.nodes_in_rack(src_rack)
                if n != src
            ]
            if not candidates:  # single-node rack: fall back to cross-rack
                candidates = [n for n in self.topology.node_ids() if n != src]
        return src, self.rng.choice(candidates)

    def _one_transfer(self, src: NodeId, dst: NodeId, size: float) -> Generator:
        yield from self.network.transfer(
            src, dst, size, read_disk=False, write_disk=False
        )
        self.completed.append((src, dst, size))


@dataclass(frozen=True)
class UdpCrossTraffic:
    """Constant-rate cross-traffic between node pairs (Experiment A.1).

    The testbed groups the 12 slaves into six sender/receiver pairs and
    drives Iperf UDP at a configured rate.  ``apply`` derates the sender's
    egress and the receiver's ingress by that rate.

    Attributes:
        pairs: (sender, receiver) node pairs.
        rate: UDP sending rate in bytes/second per pair.
    """

    pairs: Tuple[Tuple[NodeId, NodeId], ...]
    rate: float

    def apply(self, network: Network) -> None:
        """Derate the NICs the UDP streams occupy.

        Raises:
            ValueError: If the rate meets or exceeds a NIC's bandwidth
                (the link would have no capacity left).
        """
        if self.rate < 0:
            raise ValueError("rate cannot be negative")
        if self.rate == 0:
            return
        for sender, receiver in self.pairs:
            up = network.node_up_bandwidth(sender) - self.rate
            down = network.node_down_bandwidth(receiver) - self.rate
            if up <= 0 or down <= 0:
                raise ValueError(
                    "UDP rate saturates a NIC; no bandwidth would remain"
                )
            network.set_node_bandwidth(sender, up=up)
            network.set_node_bandwidth(receiver, down=down)

    @classmethod
    def testbed_pairs(
        cls, topology: ClusterTopology, rate: float
    ) -> "UdpCrossTraffic":
        """Six disjoint pairs over the 12 testbed slaves (paper setup)."""
        nodes = list(topology.node_ids())
        if len(nodes) % 2:
            nodes = nodes[:-1]
        pairs = tuple(
            (nodes[i], nodes[i + 1]) for i in range(0, len(nodes), 2)
        )
        return cls(pairs=pairs, rate=rate)
