"""Workload generators: write streams, background traffic, SWIM MapReduce.

* :mod:`repro.workloads.writes` — Poisson block-write request streams
  (Experiments A.2 and B.2).
* :mod:`repro.workloads.background` — background transfer streams with a
  configurable cross-rack/intra-rack mix (Experiment B.2) and constant-rate
  cross-traffic (the Iperf UDP streams of Experiment A.1).
* :mod:`repro.workloads.swim` — SWIM-style synthetic MapReduce jobs with
  heavy-tailed input/shuffle/output sizes (Experiment A.3).
"""

from repro.workloads.background import BackgroundTraffic, UdpCrossTraffic
from repro.workloads.reads import ReadResult, ReadStream
from repro.workloads.seeding import EXPERIMENT_SEED, experiment_rng
from repro.workloads.swim import SwimJob, SwimWorkload, run_swim_job
from repro.workloads.writes import WriteStream

__all__ = [
    "BackgroundTraffic",
    "EXPERIMENT_SEED",
    "ReadResult",
    "ReadStream",
    "SwimJob",
    "SwimWorkload",
    "UdpCrossTraffic",
    "WriteStream",
    "experiment_rng",
    "run_swim_job",
]
