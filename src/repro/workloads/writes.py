"""Poisson write-request streams.

Experiment A.2 issues single-block (64 MB) writes as a Poisson process at
0.5 requests/s; Experiment B.2 uses 1 request/s (and sweeps the rate in
Figure 13(d)).  Each request runs the full replication pipeline through the
client, so writes contend with encoding and background traffic on the same
links — the contention EAR relieves.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.cluster.topology import NodeId
from repro.hdfs.client import CFSClient, WriteResult
from repro.sim.engine import Simulator
from repro.sim.sources import poisson_arrivals
from repro.workloads.seeding import experiment_rng


class WriteStream:
    """Generates block writes with Poisson arrivals from random nodes.

    Args:
        sim: Simulation kernel.
        client: CFS client issuing the writes.
        rate: Mean requests/second.
        rng: Seeded random source (arrivals and writer choice); defaults
            to a fresh generator seeded with the experiment seed.
        block_size: Bytes per write (client default when ``None``).
        writer_nodes: Pool of originating endpoints; every DataNode when
            omitted.

    The stream runs until stopped or until ``limit`` requests; completed
    writes are collected in :attr:`results`.
    """

    def __init__(
        self,
        sim: Simulator,
        client: CFSClient,
        rate: float,
        rng: Optional[random.Random] = None,
        block_size: Optional[int] = None,
        writer_nodes: Optional[List[NodeId]] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.client = client
        self.rate = rate
        self.rng = rng if rng is not None else experiment_rng()
        self.block_size = block_size
        self.writer_nodes = (
            list(client.namenode.topology.node_ids())
            if writer_nodes is None
            else list(writer_nodes)
        )
        if not self.writer_nodes:
            raise ValueError("writer pool cannot be empty")
        self.results: List[WriteResult] = []
        self._stopped = False

    def stop(self) -> None:
        """Stop issuing new requests (in-flight writes complete)."""
        self._stopped = True

    def run(self, limit: Optional[int] = None, duration: Optional[float] = None) -> Generator:
        """The arrival process (run inside ``sim.process``).

        Args:
            limit: Stop after this many requests.
            duration: Stop once this much simulated time has elapsed since
                the stream started.

        Each request is spawned as its own process so slow writes never
        delay later arrivals.
        """
        start = self.sim.now
        issued = 0
        for gap in poisson_arrivals(self.rng, self.rate, limit):
            yield self.sim.timeout(gap)
            if self._stopped:
                break
            if duration is not None and self.sim.now - start >= duration:
                break
            writer = self.rng.choice(self.writer_nodes)
            self.sim.process(self._one_write(writer))
            issued += 1
        return issued

    def replay(self, start_times: List[float]) -> Generator:
        """Issue writes at fixed times (the paper re-plays identical arrival
        times across its five runs)."""
        for start_time in sorted(start_times):
            delay = start_time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            writer = self.rng.choice(self.writer_nodes)
            self.sim.process(self._one_write(writer))
        return len(start_times)

    def _one_write(self, writer: NodeId) -> Generator:
        result = yield from self.client.write_block(
            size=self.block_size, writer_node=writer
        )
        self.results.append(result)
