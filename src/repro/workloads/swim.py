"""SWIM-style synthetic MapReduce workloads (Experiment A.3).

The paper replays 50 jobs synthesised by SWIM from a 600-node Facebook
production trace (2009).  The trace itself is not distributable, so this
module generates jobs with the trace's published *shape*: heavy-tailed
input/shuffle/output sizes where most jobs touch a block or two, a minority
are map-only (no shuffle), and a few jobs move tens of blocks.

A job runs in two phases on the simulated cluster:

1. **map** — one task per input block, scheduled with data locality
   (preferred nodes = the block's replica holders); each map reads its block
   (a local disk read when it landed on a replica) and applies a CPU cost;
2. **shuffle + reduce** — each reducer pulls its partition from every map's
   node, then writes its share of the output back to HDFS through the write
   pipeline, exercising the placement policy under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

from repro.cluster.block import BlockId
from repro.cluster.topology import NodeId
from repro.hdfs.client import CFSClient
from repro.hdfs.mapreduce import JobTracker, MapReduceJob, MapTask
from repro.sim.engine import Simulator
from repro.sim.netsim import Network
from repro.workloads.seeding import experiment_rng

#: Default CPU processing rate applied to map input (bytes/second).
DEFAULT_COMPUTE_RATE = 200e6


@dataclass
class SwimJob:
    """One synthetic job.

    Attributes:
        job_id: Identifier within the workload.
        input_blocks: HDFS blocks the maps read (written beforehand).
        shuffle_bytes: Total bytes moved from maps to reducers (0 for
            map-only jobs).
        output_bytes: Total bytes the reducers write back to HDFS.
        num_reducers: Reduce task count.
        submit_time: When the job enters the cluster.
    """

    job_id: int
    input_blocks: List[BlockId]
    shuffle_bytes: float
    output_bytes: float
    num_reducers: int
    submit_time: float

    @property
    def input_block_count(self) -> int:
        """Number of map tasks the job will run."""
        return len(self.input_blocks)


@dataclass(frozen=True)
class SwimJobShape:
    """Size description of a job before its input exists."""

    input_blocks: int
    shuffle_bytes: float
    output_bytes: float
    num_reducers: int
    submit_time: float


@dataclass(frozen=True)
class JobRecord:
    """Completion record of one executed job."""

    job_id: int
    submit_time: float
    finish_time: float

    @property
    def runtime(self) -> float:
        """Seconds from submission to the last reducer finishing."""
        return self.finish_time - self.submit_time


class SwimWorkload:
    """Generates and executes a SWIM-like job mix.

    Args:
        rng: Seeded random source; defaults to a fresh generator seeded
            with the experiment seed (keeps replays byte-identical).
        block_size: HDFS block size in bytes.
        mean_interarrival: Mean seconds between job submissions.
        map_only_fraction: Share of jobs with no shuffle/reduce phase
            (Facebook's trace is dominated by small map-only jobs).
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        block_size: int = 64 * 1024 * 1024,
        mean_interarrival: float = 20.0,
        map_only_fraction: float = 0.35,
    ) -> None:
        if mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if not 0 <= map_only_fraction <= 1:
            raise ValueError("map_only_fraction must lie in [0, 1]")
        self.rng = rng if rng is not None else experiment_rng()
        self.block_size = block_size
        self.mean_interarrival = mean_interarrival
        self.map_only_fraction = map_only_fraction

    # ------------------------------------------------------------------
    def generate_shapes(self, num_jobs: int) -> List[SwimJobShape]:
        """Draw job shapes with heavy-tailed sizes.

        Input block counts follow a discretised Pareto (most jobs 1-3
        blocks, occasional tens); shuffle and output scale off the input
        with lognormal ratios, as in SWIM's published Facebook profile.
        """
        shapes: List[SwimJobShape] = []
        clock = 0.0
        for __ in range(num_jobs):
            clock += self.rng.expovariate(1.0 / self.mean_interarrival)
            blocks = min(40, max(1, int(self.rng.paretovariate(1.4))))
            input_bytes = blocks * self.block_size
            if self.rng.random() < self.map_only_fraction:
                shuffle = 0.0
                output = input_bytes * min(1.0, self.rng.lognormvariate(-2.0, 1.0))
            else:
                shuffle = input_bytes * min(2.0, self.rng.lognormvariate(-0.7, 0.8))
                output = shuffle * min(1.5, self.rng.lognormvariate(-0.7, 0.8))
            reducers = max(1, min(8, round(shuffle / self.block_size)))
            shapes.append(
                SwimJobShape(
                    input_blocks=blocks,
                    shuffle_bytes=shuffle,
                    output_bytes=output,
                    num_reducers=reducers,
                    submit_time=clock,
                )
            )
        return shapes

    def materialise(
        self, shapes: Sequence[SwimJobShape], client: CFSClient
    ) -> Generator:
        """Write every job's input data to HDFS (run inside a process).

        Returns:
            The :class:`SwimJob` list (generator return value).
        """
        jobs: List[SwimJob] = []
        for job_id, shape in enumerate(shapes):
            blocks: List[BlockId] = []
            for __ in range(shape.input_blocks):
                result = yield from client.write_block(size=self.block_size)
                blocks.append(result.block.block_id)
            jobs.append(
                SwimJob(
                    job_id=job_id,
                    input_blocks=blocks,
                    shuffle_bytes=shape.shuffle_bytes,
                    output_bytes=shape.output_bytes,
                    num_reducers=shape.num_reducers,
                    submit_time=shape.submit_time,
                )
            )
        return jobs

    def run(
        self,
        sim: Simulator,
        jobs: Sequence[SwimJob],
        job_tracker: JobTracker,
        client: CFSClient,
        network: Network,
        compute_rate: float = DEFAULT_COMPUTE_RATE,
    ) -> Generator:
        """Submit every job at its arrival time; wait for all to finish.

        Returns:
            Per-job :class:`JobRecord` list (generator return value).
        """
        completions = []
        for job in sorted(jobs, key=lambda j: j.submit_time):
            delay = job.submit_time - sim.now
            if delay > 0:
                yield sim.timeout(delay)
            completions.append(
                sim.process(
                    run_swim_job(
                        sim, job, job_tracker, client, network, compute_rate
                    )
                )
            )
        records = yield sim.all_of(completions)
        return list(records)


def run_swim_job(
    sim: Simulator,
    job: SwimJob,
    job_tracker: JobTracker,
    client: CFSClient,
    network: Network,
    compute_rate: float = DEFAULT_COMPUTE_RATE,
) -> Generator:
    """Execute one job: map phase, then shuffle + reduce + output phase.

    Returns:
        A :class:`JobRecord` (generator return value).
    """
    if compute_rate <= 0:
        raise ValueError("compute_rate must be positive")
    submit = sim.now
    namenode = client.namenode

    # ------------------------------------------------------------- maps
    map_tasks: List[MapTask] = []
    for task_id, block_id in enumerate(job.input_blocks):
        replicas = namenode.block_locations(block_id)
        map_tasks.append(
            MapTask(
                task_id=task_id,
                work=_map_body(sim, client, block_id, compute_rate),
                preferred_nodes=tuple(replicas),
            )
        )
    map_results = yield from job_tracker.run_job(
        MapReduceJob(job_id=job_tracker.new_job_id(), tasks=map_tasks)
    )
    map_nodes: List[NodeId] = list(map_results)

    # --------------------------------------------- shuffle and reducers
    if job.shuffle_bytes > 0 or job.output_bytes > 0:
        reduce_tasks: List[MapTask] = []
        per_pair = (
            job.shuffle_bytes / (len(map_nodes) * job.num_reducers)
            if map_nodes and job.shuffle_bytes > 0
            else 0.0
        )
        out_share = job.output_bytes / job.num_reducers
        for task_id in range(job.num_reducers):
            reduce_tasks.append(
                MapTask(
                    task_id=task_id,
                    work=_reduce_body(
                        sim, client, network, map_nodes, per_pair, out_share
                    ),
                )
            )
        yield from job_tracker.run_job(
            MapReduceJob(job_id=job_tracker.new_job_id(), tasks=reduce_tasks)
        )
    return JobRecord(job.job_id, submit, sim.now)


def _map_body(sim: Simulator, client: CFSClient, block_id: BlockId, rate: float):
    def work(node: NodeId) -> Generator:
        yield from client.read_block(block_id, node)
        size = client.namenode.block_store.block(block_id).size
        yield sim.timeout(size / rate)
        return node

    return work


def _reduce_body(
    sim: Simulator,
    client: CFSClient,
    network: Network,
    map_nodes: List[NodeId],
    per_pair: float,
    out_share: float,
):
    def work(node: NodeId) -> Generator:
        if per_pair > 0:
            pulls = [
                sim.process(
                    network.transfer(
                        src, node, per_pair, read_disk=False, write_disk=False
                    )
                )
                for src in map_nodes
                if src != node
            ]
            if pulls:
                yield sim.all_of(pulls)
        remaining = out_share
        while remaining > 0:
            chunk = min(remaining, client.namenode.block_size)
            yield from client.write_block(size=int(max(1, chunk)), writer_node=node)
            remaining -= chunk
        return node

    return work
