"""Metrics for the pipelined transition strategy.

:class:`PipelineMetrics` tracks what the head-to-heads compare — hop
traffic split into intra- and cross-rack bytes, re-plans forced by
failures, fallbacks to the download-and-encode path — plus the per-node
GF attribution the bench layer needs: each hop's fused multiply-XOR work
(``gf.kernel_calls`` / ``gf.symbol_mults``) is billed to the node that
performed the fold, not to a single encoder node.  Integer totals are
mirrored into the process-wide :data:`~repro.sim.metrics.PERF` registry
under ``pipeline.*`` so bench op counts stay hermetic.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.topology import NodeId
from repro.sim.metrics import PERF, OpsDelta


class PipelineMetrics:
    """Counters for pipelined encodes (one instance per cluster)."""

    def __init__(self) -> None:
        self.stripes_pipelined = 0
        self.stripes_fallback = 0
        self.replans = 0
        self.hop_transfers = 0
        self.hop_bytes = 0.0
        self.cross_rack_hop_bytes = 0.0
        self.delivery_transfers = 0
        self.delivery_bytes = 0.0
        self.cross_rack_delivery_bytes = 0.0
        #: node -> {"gf.kernel_calls": ..., "gf.symbol_mults": ...}
        self.gf_by_node: Dict[NodeId, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    def record_stripe(self) -> None:
        """One stripe committed through the pipeline path."""
        self.stripes_pipelined += 1
        PERF.bump("pipeline.stripes")

    def record_fallback(self) -> None:
        """One stripe fell back to download-and-encode."""
        self.stripes_fallback += 1
        PERF.bump("pipeline.fallbacks")

    def record_replan(self) -> None:
        """A retry attempt routed the pipeline differently."""
        self.replans += 1
        PERF.bump("pipeline.replans")

    def record_hop_transfer(self, size: float, cross_rack: bool) -> None:
        """One partial-combination chunk moved hop-to-hop."""
        self.hop_transfers += 1
        self.hop_bytes += size
        if cross_rack:
            self.cross_rack_hop_bytes += size
        PERF.bump("pipeline.hop_transfers")

    def record_delivery(self, size: float, cross_rack: bool) -> None:
        """One parity chunk delivered from the tail to its node."""
        self.delivery_transfers += 1
        self.delivery_bytes += size
        if cross_rack:
            self.cross_rack_delivery_bytes += size
        PERF.bump("pipeline.delivery_transfers")

    def record_hop_gf(self, node: NodeId, ops: OpsDelta) -> None:
        """Bill one hop's GF fold to the node that performed it."""
        bucket = self.gf_by_node.setdefault(
            node, {"gf.kernel_calls": 0, "gf.symbol_mults": 0}
        )
        bucket["gf.kernel_calls"] += ops.get("gf.kernel_calls")
        bucket["gf.symbol_mults"] += ops.get("gf.symbol_mults")

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Flat printable snapshot (keys sorted for determinism)."""
        out: Dict[str, object] = {
            "cross_rack_delivery_bytes": self.cross_rack_delivery_bytes,
            "cross_rack_hop_bytes": self.cross_rack_hop_bytes,
            "delivery_bytes": self.delivery_bytes,
            "delivery_transfers": self.delivery_transfers,
            "hop_bytes": self.hop_bytes,
            "hop_transfers": self.hop_transfers,
            "replans": self.replans,
            "stripes_fallback": self.stripes_fallback,
            "stripes_pipelined": self.stripes_pipelined,
        }
        out["gf_nodes_billed"] = len(self.gf_by_node)
        out["gf_kernel_calls"] = sum(
            bucket["gf.kernel_calls"]
            for __, bucket in sorted(self.gf_by_node.items())
        )
        return out
