"""Strategy head-to-heads: RR vs EAR vs pipelined archival encoding.

The question this subsystem exists to answer: *how much archival window
and core-link traffic does hop-to-hop pipelining save over the paper's
download-and-encode operation, and does that hold when nodes die
mid-encode?*  Each contender is a (placement policy, transition
strategy) pair:

* ``rr``        — random placement, download-and-encode (the baseline CFS);
* ``ear``       — EAR placement, download-and-encode (the paper);
* ``pipeline``  — EAR placement, pipelined encoding (:mod:`repro.pipeline`).

One trial builds a storm cluster, optionally fails a replica-heavy node
five seconds into the encoding wave, runs the wave to completion, then
(when disturbed) drains repairs — reporting the encoding window, encode
throughput, total and cross-rack byte deltas of the wave, degraded-
window exposure, and the pipeline's re-plan/fallback counts.  For the
pipeline contender every encoded stripe's parity payloads are re-checked
against the whole-stripe codec (the byte-identity oracle).

``pipeline_trial`` is module-level and all-scalar so the grid rides the
PR5 :class:`~repro.parallel.executor.SweepExecutor`: parallel across
processes, fingerprint-cached, byte-identical to the sequential pass
under ``REPRO_PARALLEL_CHECK=1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.stripe import StripeState
from repro.erasure.codec import CodeParams
from repro.parallel.executor import make_executor
from repro.parallel.spec import TrialSpec
from repro.recovery.storm import (
    StormCluster,
    build_storm_cluster,
    encode_all,
    storm_fingerprint,
)

#: Contender name -> (placement policy, transition strategy).
CONTENDER_CONFIGS: Dict[str, Tuple[str, str]] = {
    "rr": ("rr", "download"),
    "ear": ("ear", "download"),
    "pipeline": ("ear", "pipeline"),
}

#: Contenders compared by default, in canonical order.
CONTENDERS: Tuple[str, ...] = ("rr", "ear", "pipeline")


def _loaded_node(sc: StormCluster) -> int:
    """The node holding the most replicas (deterministic tie-break)."""
    counts = sc.store.replica_count_per_node()
    return min(sorted(counts), key=lambda n: (-counts[n], n))


def _settle(sc: StormCluster, rounds: int = 8,
            round_time: float = 300.0) -> None:
    """Keep scrubbing until no damage or queued repair work remains."""
    sc.sim.run(until=sc.sim.now + 600.0)
    for __ in range(rounds):
        caught = sc.scrubber.scan_once()
        if not caught and sc.repair_queue.pending_count == 0:
            break
        sc.sim.run(until=sc.sim.now + round_time)


def pipeline_trial(
    seed: int = 0,
    contender: str = "pipeline",
    code_n: int = 6,
    code_k: int = 4,
    num_racks: int = 8,
    nodes_per_rack: int = 4,
    num_stripes: int = 6,
    block_size: int = 256_000,
    ear_c: int = 2,
    chunk_count: int = 4,
    disturb: bool = True,
) -> Dict[str, object]:
    """One strategy run as a sweep trial (module-level, picklable).

    With ``disturb`` the replica-heaviest node — almost certainly on
    some stripe's pipeline route — fails permanently one second into
    the encoding wave (mid-wave at these cluster sizes), exercising the
    abort → re-plan → fallback ladder; without it the trial measures the
    undisturbed encoding wave only.
    """
    try:
        policy, strategy = CONTENDER_CONFIGS[contender]
    except KeyError:
        raise ValueError(
            f"unknown contender {contender!r}; choose from "
            f"{list(CONTENDERS)}"
        ) from None
    sc = build_storm_cluster(
        policy=policy,
        seed=seed,
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        num_stripes=num_stripes,
        code=CodeParams(code_n, code_k),
        block_size=block_size,
        ear_c=ear_c,
        strategy=strategy,
        pipeline_chunks=chunk_count,
    )
    stats = sc.setup.network.stats
    t0 = sc.sim.now
    bytes0 = stats.bytes_total
    cross0 = stats.bytes_cross_rack

    if disturb:
        victim = _loaded_node(sc)
        sc.sim.process(sc.injector.fail_node_at(t0 + 1.0, victim))
        sc.recovery.record_storm_event("pipeline_disturb")

    encode_all(sc)
    stripe_ids = {s.stripe_id for s in sc.stripes}
    finish_times = [
        r.finish_time
        for r in sc.setup.encoder.records
        if r.stripe_id in stripe_ids
    ]
    encode_window = (max(finish_times) - t0) if finish_times else 0.0
    encoded_data = code_k * block_size * len(finish_times)
    throughput = encoded_data / encode_window if encode_window else 0.0
    total_bytes = stats.bytes_total - bytes0
    core_bytes = stats.bytes_cross_rack - cross0

    if disturb:
        _settle(sc)

    parity_verified = 0
    if strategy == "pipeline":
        plane = sc.setup.encoder.data_plane
        for stripe in sc.stripes:
            if stripe.state != StripeState.ENCODED:
                continue
            if not plane.verify_stripe(stripe):
                raise AssertionError(
                    f"stripe {stripe.stripe_id}: pipelined parity fails "
                    "the whole-stripe codec oracle"
                )
            parity_verified += 1

    pipeline_metrics = getattr(sc.setup.encoder, "metrics", None)
    unrecoverable = tuple(sc.repair_queue.unrecoverable) + tuple(
        block_id
        for rep in sc.injector.reports
        for block_id in rep.unrecoverable
    )
    stripes_encoded = len(finish_times)
    recovery = sc.recovery.summary(now=sc.sim.now)
    return {
        "contender": contender,
        "policy": policy,
        "strategy": strategy,
        "seed": seed,
        "disturbed": disturb,
        "stripes_encoded": stripes_encoded,
        "stripes_total": len(sc.stripes),
        "encode_window": repr(encode_window),
        "encode_mb_per_s": repr(throughput / 1e6),
        "total_bytes": repr(float(total_bytes)),
        "core_bytes": repr(float(core_bytes)),
        "parity_verified": parity_verified,
        "pipeline_fallbacks": (
            pipeline_metrics.stripes_fallback if pipeline_metrics else 0
        ),
        "pipeline_replans": (
            pipeline_metrics.replans if pipeline_metrics else 0
        ),
        "time_at_margin_zero": repr(
            float(recovery.get("time_at_margin_zero", 0.0))
        ),
        "unrecoverable": sorted(unrecoverable),
        "clean": (
            not unrecoverable
            and not sc.encode_errors
            and stripes_encoded == len(sc.stripes)
        ),
        "fingerprint": storm_fingerprint(sc),
    }


def head_to_head_specs(
    contenders: Sequence[str] = CONTENDERS,
    seeds: Sequence[int] = (0,),
    code_n: int = 6,
    code_k: int = 4,
    num_racks: int = 8,
    nodes_per_rack: int = 4,
    num_stripes: int = 6,
    ear_c: int = 2,
    chunk_count: int = 4,
    disturb: bool = True,
) -> List[TrialSpec]:
    """The trial grid: contenders × seeds."""
    specs: List[TrialSpec] = []
    for contender in contenders:
        for seed in seeds:
            specs.append(TrialSpec(
                fn=pipeline_trial,
                config={
                    "contender": contender,
                    "code_n": code_n,
                    "code_k": code_k,
                    "num_racks": num_racks,
                    "nodes_per_rack": nodes_per_rack,
                    "num_stripes": num_stripes,
                    "ear_c": ear_c,
                    "chunk_count": chunk_count,
                    "disturb": disturb,
                },
                seed=seed,
                tag=f"pipeline.headtohead.{contender}",
            ))
    return specs


def head_to_head(
    contenders: Sequence[str] = CONTENDERS,
    seeds: Sequence[int] = (0,),
    code_n: int = 6,
    code_k: int = 4,
    num_racks: int = 8,
    nodes_per_rack: int = 4,
    num_stripes: int = 6,
    ear_c: int = 2,
    chunk_count: int = 4,
    disturb: bool = True,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Run the grid, through the sweep executor when ``workers`` is given.

    ``workers=None`` runs sequentially in-process (no executor at all);
    ``workers=0`` uses the executor's in-process path (cache active);
    larger values fan trials out to worker processes.  Results always
    come back in spec order, so the two paths are comparable element by
    element.
    """
    specs = head_to_head_specs(
        contenders, seeds, code_n=code_n, code_k=code_k,
        num_racks=num_racks, nodes_per_rack=nodes_per_rack,
        num_stripes=num_stripes, ear_c=ear_c, chunk_count=chunk_count,
        disturb=disturb,
    )
    executor = make_executor(workers, cache_dir)
    if executor is None:
        return [spec.run() for spec in specs]
    return executor.map_trials(specs)


def head_to_head_rows(
    results: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Flatten head-to-head results into CLI table rows."""
    rows: List[Dict[str, object]] = []
    for result in results:
        rows.append({
            "contender": result["contender"],
            "policy": result["policy"],
            "strategy": result["strategy"],
            "seed": result["seed"],
            "clean": result["clean"],
            "encode_window": result["encode_window"],
            "encode_mb_per_s": result["encode_mb_per_s"],
            "core_bytes": result["core_bytes"],
            "replans": result["pipeline_replans"],
            "fallbacks": result["pipeline_fallbacks"],
            "time_at_margin_zero": result["time_at_margin_zero"],
            "fingerprint": str(result["fingerprint"])[:16],
        })
    return rows
