"""Pipelined archival encoding: a RapidRAID-style transition strategy.

Instead of downloading ``k`` replicated blocks to one encoder node (the
paper's Section II-A operation), the pipeline visits a replica holder of
each block in turn, folds that block into a running partial GF(2^8)
combination, and forwards the partial to the next hop — so parity
materialises *en route* and the only whole-stripe transfer left is the
final parity delivery.  Hops are grouped by rack so partial-combination
traffic stays on top-of-rack links; under EAR placement the whole
pipeline collapses into the core rack and crosses the core zero times.

Layers (each importable on its own):

* :mod:`repro.pipeline.gfstream` — :func:`pipelined_parity`, the chunked
  hop-by-hop GF fold over the PR8 streaming kernels, byte-identical to
  :meth:`~repro.erasure.codec.ErasureCodec.encode` by construction.
* :mod:`repro.pipeline.planner` — :func:`plan_pipeline`, the
  topology-aware hop ordering over the replica placement.
* :mod:`repro.pipeline.encoder` — :class:`PipelinedEncoder`, the
  simulated data plane: chunked hop transfers, abort → retry → re-plan →
  fallback ladder, journalled parity commit.
* :mod:`repro.pipeline.metrics` — :class:`PipelineMetrics`, per-hop
  traffic and GF-work attribution.
* :mod:`repro.pipeline.headtohead` — RR vs EAR vs pipelined comparison
  grids over the sweep executor.
"""

from repro.pipeline.encoder import PipelinedEncoder, PipelinedStripe
from repro.pipeline.gfstream import pipelined_parity
from repro.pipeline.headtohead import (
    CONTENDER_CONFIGS,
    CONTENDERS,
    head_to_head,
    head_to_head_rows,
    head_to_head_specs,
    pipeline_trial,
)
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.planner import (
    PipelineHop,
    PipelinePlan,
    plan_pipeline,
)

__all__ = [
    "CONTENDER_CONFIGS",
    "CONTENDERS",
    "PipelineHop",
    "PipelineMetrics",
    "PipelinePlan",
    "PipelinedEncoder",
    "PipelinedStripe",
    "head_to_head",
    "head_to_head_rows",
    "head_to_head_specs",
    "pipeline_trial",
    "pipelined_parity",
    "plan_pipeline",
]
