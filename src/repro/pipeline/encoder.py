"""The pipelined stripe encoder: hop-to-hop streaming over the DES model.

Instead of downloading ``k`` blocks to one encoder node (the paper's
Section II-A operation), the :class:`PipelinedEncoder` runs a
RapidRAID-style chain: each replica holder folds its block into the
running GF(2^8) partial combination and forwards it to the next hop in
chunks, so consecutive chunks of one stripe stream through different
stages concurrently.  The tail hop ends with the finished parity and
delivers it to the planned parity nodes; the commit — replica retention,
parity block minting, journal bracket — goes through exactly the same
``NameNode.record_encoding`` path the download encoder uses.

Failure ladder (when a :class:`~repro.faults.retry.RetryPolicy` is
attached):

1. any aborted hop or delivery transfer kills the in-flight attempt
   (partial work unwinds; nothing was committed);
2. the retry loop re-plans the pipeline against current liveness, so the
   next attempt routes around the dead node (a re-plan that changed the
   route is counted in :class:`~repro.pipeline.metrics.PipelineMetrics`);
3. when every attempt dies, the stripe falls back to the paper-style
   download-and-encode :class:`~repro.hdfs.encoder.StripeEncoder` —
   which carries its own retry loop — and the fallback is recorded.

Parity is only ever committed after every transfer of an attempt
succeeded, and payload synthesis is deterministic per block, so a
retried or fallen-back stripe commits byte-identical parity: the chaos
tests pin "never wrong, never partial".

The encoder is duck-type compatible with :class:`StripeEncoder` where
the RaidNode needs it (``encode_stripes`` / ``encode_stripe`` /
``records``) and *shares* the fallback's ``records`` list, so existing
throughput meters, fingerprints and reports see pipelined and fallback
stripes uniformly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.topology import NodeId
from repro.core.parity import EncodingPlanner
from repro.core.stripe import Stripe
from repro.erasure.codec import CodeParams
from repro.erasure.stream import StreamingDataPlane
from repro.faults.retry import RetryExhausted, RetryPolicy, with_retries
from repro.hdfs.encoder import EncodedStripe, StripeEncoder
from repro.hdfs.namenode import NameNode
from repro.pipeline.gfstream import pipelined_parity
from repro.pipeline.metrics import PipelineMetrics
from repro.pipeline.planner import PipelinePlan, plan_pipeline
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    OpsDelta,
    ResilienceMetrics,
    ThroughputMeter,
    TimeSeries,
)
from repro.sim.netsim import Network


@dataclass(frozen=True)
class PipelinedStripe:
    """Record of one stripe's journey through the pipeline path."""

    stripe_id: int
    tail_node: NodeId
    hop_nodes: Tuple[NodeId, ...]
    start_time: float
    finish_time: float
    cross_rack_hops: int
    cross_rack_deliveries: int
    chunks: int
    fallback: bool

    @property
    def duration(self) -> float:
        """Wall-clock seconds the stripe's encoding took."""
        return self.finish_time - self.start_time


class PipelinedEncoder:
    """Runs the pipelined encoding operation for stripes.

    Args:
        sim: Simulation kernel.
        network: Link/disk model (hop transfers ride the same links the
            download encoder uses).
        namenode: Metadata server; commits go through
            ``record_encoding`` unchanged.
        planner: The policy's encoding planner — produces the commit
            half of each pipeline plan.
        code: The ``(n, k)`` stripe geometry.
        fallback: The download-and-encode encoder used when the retry
            ladder exhausts; its ``records`` list is shared so both
            paths feed one timeline.
        rng: Random source for retry jitter (deterministic default).
        retry: Per-stripe retry policy; ``None`` means fail-fast.
        resilience: Optional fault metrics fed by the retry loop.
        metrics: Pipeline metrics collector (created when omitted).
        data_plane: Optional streaming data plane.  When given, parity
            payloads are computed with :func:`pipelined_parity` in hop
            order (byte-identical to the whole-stripe codec) and each
            hop's GF work is billed to the hop's node.
        chunk_count: Chunks each block is pipelined as; higher values
            overlap more stages at more per-transfer events.
        compute_bandwidth: Per-hop fold throughput in bytes/second;
            ``None`` makes computation free (network-bound, the paper's
            model).
        throughput: Optional meter fed with each stripe's data volume.
        timeline: Optional series receiving stripe completion times.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        planner: EncodingPlanner,
        code: CodeParams,
        fallback: StripeEncoder,
        rng: Optional[random.Random] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceMetrics] = None,
        metrics: Optional[PipelineMetrics] = None,
        data_plane: Optional[StreamingDataPlane] = None,
        chunk_count: int = 4,
        compute_bandwidth: Optional[float] = None,
        throughput: Optional[ThroughputMeter] = None,
        timeline: Optional[TimeSeries] = None,
    ) -> None:
        if chunk_count < 1:
            raise ValueError(f"chunk_count must be >= 1, got {chunk_count}")
        if compute_bandwidth is not None and compute_bandwidth <= 0:
            raise ValueError("compute bandwidth must be positive")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.planner = planner
        self.code = code
        self.fallback = fallback
        self.rng = rng if rng is not None else random.Random(0)
        self.retry = retry
        self.resilience = resilience
        self.metrics = metrics if metrics is not None else PipelineMetrics()
        self.data_plane = data_plane
        self.chunk_count = chunk_count
        self.compute_bandwidth = compute_bandwidth
        self.throughput = throughput
        self.timeline = timeline
        #: Shared with the fallback encoder: one unified stripe timeline.
        self.records: List[EncodedStripe] = fallback.records
        self.pipeline_records: List[PipelinedStripe] = []

    # ------------------------------------------------------------------
    def encode_stripe(
        self, stripe: Stripe, encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode one sealed stripe (generator; run inside a process).

        ``encoder_node`` — the map task's node — is advisory only: the
        pipeline route follows the replicas.  It is forwarded to the
        fallback encoder, which pins its download target with it.

        Returns:
            The :class:`~repro.hdfs.encoder.EncodedStripe` record.
        """
        if self.retry is None:
            plan = self._plan(stripe)
            record = yield from self._pipeline_once(stripe, plan)
            return record
        state = {"signature": None}
        try:
            record = yield from with_retries(
                self.sim,
                lambda __: self._pipeline_attempt(stripe, state),
                self.retry,
                self.rng,
                metrics=self.resilience,
                label=f"pipeline stripe {stripe.stripe_id}",
            )
            return record
        except RetryExhausted:
            self.metrics.record_fallback()
            start = self.sim.now
            record = yield from self.fallback.encode_stripe(
                stripe, encoder_node
            )
            self.pipeline_records.append(PipelinedStripe(
                stripe_id=stripe.stripe_id,
                tail_node=record.encoder_node,
                hop_nodes=(),
                start_time=start,
                finish_time=self.sim.now,
                cross_rack_hops=0,
                cross_rack_deliveries=record.cross_rack_uploads,
                chunks=0,
                fallback=True,
            ))
            return record

    def encode_stripes(
        self, stripes: List[Stripe], encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode several stripes back to back (one map task's work)."""
        records = []
        for stripe in stripes:
            record = yield from self.encode_stripe(stripe, encoder_node)
            records.append(record)
        return records

    # ------------------------------------------------------------------
    def _plan(self, stripe: Stripe, source_ok=None) -> PipelinePlan:
        return plan_pipeline(
            self.namenode.topology,
            self.namenode.block_store,
            stripe,
            self.planner,
            source_ok=source_ok,
        )

    def _pipeline_attempt(self, stripe: Stripe, state: dict) -> Generator:
        """One fault-aware attempt: re-plan against current liveness."""
        store = self.namenode.block_store

        def source_ok(block_id: int, node: NodeId) -> bool:
            return self.network.is_up(node) and not (
                store.is_corrupted(block_id, node)
            )

        plan = self._plan(stripe, source_ok=source_ok)
        signature = plan.signature()
        if state["signature"] is not None and signature != state["signature"]:
            self.metrics.record_replan()
        state["signature"] = signature
        record = yield from self._pipeline_once(stripe, plan)
        return record

    def _pipeline_once(
        self, stripe: Stripe, plan: PipelinePlan
    ) -> Generator:
        """Run one pipeline attempt to completion and commit the stripe.

        The chunked hop protocol: ``done[i][c]`` fires once hop ``i`` has
        folded chunk ``c``.  Hop ``i+1`` waits for it, pulls the partial
        combination across the wire, folds its own block's chunk and
        fires its event — so chunk ``c+1`` can occupy hop ``i`` while
        chunk ``c`` is in flight to hop ``i+1``.  Parity deliveries
        stream off the tail the same way.  A failed transfer anywhere
        fails the attempt as a whole; the ``cancelled`` flag stops the
        surviving stage processes at their next chunk boundary so a
        doomed attempt stops generating traffic.
        """
        sim = self.sim
        network = self.network
        start = sim.now
        store = self.namenode.block_store
        hops = plan.hops
        chunks = self.chunk_count
        block_size = self.namenode.block_size
        data_chunk = block_size / chunks
        # The running combination carries all n-k partial parity rows.
        partial_chunk = self.code.num_parity * block_size / chunks
        done = [[sim.event() for __ in range(chunks)] for __ in hops]
        cancelled = [False]

        def hop_stage(index: int) -> Generator:
            hop = hops[index]
            for c in range(chunks):
                if index > 0:
                    yield done[index - 1][c]
                    if cancelled[0]:
                        return
                    previous = hops[index - 1].node
                    if previous != hop.node:
                        yield from network.transfer(
                            previous, hop.node, partial_chunk,
                            read_disk=False, write_disk=False,
                        )
                        self.metrics.record_hop_transfer(
                            partial_chunk,
                            network.is_cross_rack(previous, hop.node),
                        )
                    if cancelled[0]:
                        return
                if network.disk is not None:
                    yield from network.disk_read(hop.node, data_chunk)
                if self.compute_bandwidth is not None:
                    yield sim.timeout(data_chunk / self.compute_bandwidth)
                done[index][c].succeed()

        def delivery_stage(parity_node: NodeId) -> Generator:
            tail = hops[-1].node
            for c in range(chunks):
                yield done[len(hops) - 1][c]
                if cancelled[0]:
                    return
                if parity_node != tail:
                    yield from network.transfer(
                        tail, parity_node, data_chunk,
                        read_disk=False, write_disk=False,
                    )
                    self.metrics.record_delivery(
                        data_chunk,
                        network.is_cross_rack(tail, parity_node),
                    )

        stages = [sim.process(hop_stage(i)) for i in range(len(hops))]
        stages += [
            sim.process(delivery_stage(node))
            for node in plan.commit.parity_nodes
        ]
        try:
            yield sim.all_of(stages)
        except BaseException:
            cancelled[0] = True
            raise

        # Every transfer succeeded: compute real parity bytes (billed per
        # hop), then commit through the same journal bracket the download
        # encoder uses.  Payload synthesis is deterministic per block, so
        # a retried attempt recomputes identical bytes (idempotent).
        parity_payloads = None
        if self.data_plane is not None:
            parity_payloads = self._pipelined_payloads(stripe, plan)
        data_bytes = sum(
            store.block(block_id).size for block_id in stripe.block_ids
        )
        parity_blocks = self.namenode.record_encoding(stripe, plan.commit)
        if self.data_plane is not None and parity_payloads is not None:
            self.data_plane.commit_parity(parity_blocks, parity_payloads)

        record = EncodedStripe(
            stripe_id=stripe.stripe_id,
            encoder_node=plan.tail_node,
            start_time=start,
            finish_time=sim.now,
            cross_rack_downloads=plan.cross_rack_hops,
            cross_rack_uploads=plan.cross_rack_deliveries,
        )
        self.records.append(record)
        self.pipeline_records.append(PipelinedStripe(
            stripe_id=stripe.stripe_id,
            tail_node=plan.tail_node,
            hop_nodes=tuple(hop.node for hop in hops),
            start_time=start,
            finish_time=sim.now,
            cross_rack_hops=plan.cross_rack_hops,
            cross_rack_deliveries=plan.cross_rack_deliveries,
            chunks=chunks,
            fallback=False,
        ))
        self.metrics.record_stripe()
        if self.throughput is not None:
            self.throughput.record(sim.now, data_bytes)
        if self.timeline is not None:
            self.timeline.record(sim.now, record.stripe_id)
        return record

    def _pipelined_payloads(
        self, stripe: Stripe, plan: PipelinePlan
    ) -> List[bytes]:
        """Real parity bytes in hop order, GF work billed per hop node."""
        assert self.data_plane is not None
        store = self.namenode.block_store
        sources = [
            self.data_plane.payload_for(
                block_id, store.block(block_id).size
            )
            for block_id in stripe.block_ids
        ]
        length = max((len(s) for s in sources), default=0)
        hop_nodes = [hop.node for hop in plan.hops]

        def bill(hop_index: int, column: int, ops: OpsDelta) -> None:
            del column
            self.metrics.record_hop_gf(hop_nodes[hop_index], ops)

        return pipelined_parity(
            sources,
            self.data_plane.codec,
            hop_order=[hop.column for hop in plan.hops],
            chunk_size=self.data_plane.chunk_size,
            backend=self.data_plane.backend,
            length=length,
            on_hop=bill,
        )
