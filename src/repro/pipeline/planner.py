"""Topology-aware pipeline planning over the replica placement.

A pipeline visits one replica holder per data block; the order decides
how much of the partial-combination traffic crosses rack boundaries.
:func:`plan_pipeline` groups the ``k`` columns by rack with a greedy
set cover (each chosen rack is one that covers the most still-unassigned
columns among its replica holders), chains the groups smallest-first so
the pipeline *ends* in the replica-densest rack, and orders columns in
stripe order inside a group.  Consequences:

* an EAR-placed stripe (every block has a core-rack replica) collapses
  to a single group — the entire pipeline runs inside the core rack and
  the partial combination never touches a core link;
* under RR the chain crosses racks only between groups — at most
  ``(#groups - 1)`` cross-rack hop transfers instead of up to ``k``
  cross-rack downloads;
* the tail (last hop) sits where the replicas concentrate, which is the
  same neighbourhood the commit plan prefers for parity, keeping the
  final parity deliveries short.

The commit half of the plan — which replicas to retain, where parity
lands — is delegated unchanged to the policy's
:class:`~repro.core.parity.EncodingPlanner` with the tail pinned as the
encoder node, so a pipelined stripe journals and retains exactly like a
download-encoded one.

Planning is a pure function of the (topology, placement, veto filter)
inputs: every tie breaks on sorted ids, no RNG involved, so a re-plan
after a failure differs only where the failure forced it to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.parity import EncodingPlan, EncodingPlanner, SourceFilter
from repro.core.policy import PlacementError
from repro.core.stripe import Stripe
from repro.sim.netsim import SourceUnavailable


@dataclass(frozen=True)
class PipelineHop:
    """One pipeline stage: a node folding its block into the combination.

    Attributes:
        column: Stripe column (0..k-1) this hop contributes.
        block_id: The data block whose replica the hop holds.
        node: The replica holder performing the fold.
    """

    column: int
    block_id: BlockId
    node: NodeId


@dataclass(frozen=True)
class PipelinePlan:
    """A complete per-stripe pipeline: hop chain plus commit plan.

    Attributes:
        stripe_id: The stripe being encoded.
        hops: The ``k`` stages in pipeline order.
        commit: The policy planner's retention/parity plan with the tail
            pinned as encoder node (what ``record_encoding`` applies).
        cross_rack_hops: Consecutive hop pairs in different racks — the
            partial-combination transfers charged to core links.
        cross_rack_deliveries: Parity nodes outside the tail's rack.
    """

    stripe_id: int
    hops: Tuple[PipelineHop, ...]
    commit: EncodingPlan
    cross_rack_hops: int
    cross_rack_deliveries: int

    @property
    def tail_node(self) -> NodeId:
        """The last hop's node — holds the finished parity."""
        return self.hops[-1].node

    def signature(self) -> Tuple[Tuple[int, NodeId], ...]:
        """Route identity, for detecting that a re-plan changed course."""
        return tuple((hop.column, hop.node) for hop in self.hops)


def _candidate_sources(
    store: BlockStore,
    stripe: Stripe,
    source_ok: Optional[SourceFilter],
) -> Dict[int, List[NodeId]]:
    """Usable replica holders per stripe column.

    Raises:
        PlacementError: When a block has no replicas at all (data loss).
        SourceUnavailable: When replicas exist but every one is vetoed —
            transient; retry loops outwait it.
    """
    candidates: Dict[int, List[NodeId]] = {}
    for column, block_id in enumerate(stripe.block_ids):
        nodes = store.replica_nodes(block_id)
        if not nodes:
            raise PlacementError(
                f"block {block_id} has no replicas to pipeline from"
            )
        if source_ok is not None:
            usable = [n for n in nodes if source_ok(block_id, n)]
            if not usable:
                first = sorted(nodes)[0]
                raise SourceUnavailable(first, first, first)
            nodes = usable
        candidates[column] = sorted(nodes)
    return candidates


def _rack_groups(
    topology: ClusterTopology,
    candidates: Dict[int, List[NodeId]],
) -> List[Tuple[RackId, List[int]]]:
    """Greedy rack set cover, chained smallest group first.

    Each round picks the rack whose replica holders cover the most
    still-unassigned columns (ties: lowest rack id).  The cover is then
    ordered ascending by group size (ties again on rack id) so the
    densest rack — a single group covering all ``k`` for EAR stripes —
    hosts the pipeline tail.
    """
    unassigned = set(candidates)
    groups: List[Tuple[RackId, List[int]]] = []
    while unassigned:
        coverage: Dict[RackId, List[int]] = {}
        for column in sorted(unassigned):
            for rack in sorted(
                {topology.rack_of(n) for n in candidates[column]}
            ):
                coverage.setdefault(rack, []).append(column)
        best = min(sorted(coverage), key=lambda r: (-len(coverage[r]), r))
        columns = coverage[best]
        groups.append((best, columns))
        unassigned.difference_update(columns)
    groups.sort(key=lambda group: (len(group[1]), group[0]))
    return groups


def _assign_nodes(
    topology: ClusterTopology,
    candidates: Dict[int, List[NodeId]],
    groups: List[Tuple[RackId, List[int]]],
    stripe: Stripe,
) -> List[PipelineHop]:
    """One node per column, preferring nodes not already in the chain.

    Within a group columns keep stripe order; each picks the lowest-id
    candidate in the group's rack that no earlier hop uses, falling back
    to the lowest-id in-rack candidate (a repeated node is legal — the
    hop-to-hop transfer between same-node stages is free).
    """
    hops: List[PipelineHop] = []
    used: set = set()
    for rack, columns in groups:
        for column in columns:
            in_rack = [
                n for n in candidates[column]
                if topology.rack_of(n) == rack
            ]
            fresh = [n for n in in_rack if n not in used]
            node = (fresh or in_rack)[0]
            used.add(node)
            hops.append(PipelineHop(
                column=column, block_id=stripe.block_ids[column], node=node,
            ))
    return hops


def plan_pipeline(
    topology: ClusterTopology,
    store: BlockStore,
    stripe: Stripe,
    planner: EncodingPlanner,
    source_ok: Optional[SourceFilter] = None,
) -> PipelinePlan:
    """Plan one stripe's encoding pipeline over its current replicas.

    Args:
        topology: Cluster layout.
        store: Current replica locations.
        stripe: A sealed stripe.
        planner: The policy's encoding planner; produces the commit half
            with the pipeline tail pinned as encoder node (foreign
            encoders allowed — the tail follows the replicas, not the
            policy's encoder preference).
        source_ok: Optional replica veto (down or corrupted copies);
            re-plans pass current liveness here to route around damage.

    Returns:
        The pipeline plan.

    Raises:
        PlacementError: When a block has no replicas left (data loss).
        SourceUnavailable: When every replica of some block is vetoed.
    """
    candidates = _candidate_sources(store, stripe, source_ok)
    groups = _rack_groups(topology, candidates)
    hops = _assign_nodes(topology, candidates, groups, stripe)
    tail = hops[-1].node
    commit = planner.plan(stripe, encoder_node=tail,
                          allow_foreign_encoder=True)
    cross_hops = sum(
        1
        for previous, current in zip(hops, hops[1:])
        if topology.rack_of(previous.node) != topology.rack_of(current.node)
    )
    tail_rack = topology.rack_of(tail)
    cross_deliveries = sum(
        1 for node in commit.parity_nodes
        if topology.rack_of(node) != tail_rack
    )
    return PipelinePlan(
        stripe_id=stripe.stripe_id,
        hops=tuple(hops),
        commit=commit,
        cross_rack_hops=cross_hops,
        cross_rack_deliveries=cross_deliveries,
    )
