"""Hop-ordered pipelined GF(2^8) parity accumulation.

The RapidRAID idea, reduced to its arithmetic core: parity is a linear
combination of the ``k`` data blocks, and XOR is commutative, so the
blocks may be folded into the running parity buffers in *any* order —
including the order the blocks' replica holders happen to sit along a
network pipeline.  Each hop contributes its own block's columns
(``parity[j] ^= G[k+j][column] * block``) and forwards the partial
combination; the final hop holds the finished parity.

:func:`pipelined_parity` is the data-plane half of that protocol: it
folds the ``k`` sources in an explicit ``hop_order`` using the same
:class:`~repro.erasure.stream._Accumulator` fused multiply-XOR kernels
as the whole-stripe streaming encoder (both ``REPRO_GF_BACKEND``
backends), so the result is byte-identical to
``codec.encode(blocks, length=length)`` for every permutation — the
property the differential tests pin.

The ``on_hop`` callback receives the :class:`~repro.sim.metrics.OpsDelta`
measured around each hop's fold, which is how the simulation bills
``gf.kernel_calls`` to the node that actually performed the work
(per-hop attribution instead of a single encoder node).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.erasure.stream import (
    DEFAULT_CHUNK_SIZE,
    ByteSource,
    ChunkReader,
    _Accumulator,
    resolve_backend,
)
from repro.sim.metrics import PERF, OpsDelta, measure_ops

#: Callback fired after each hop's fold: (hop_index, column, ops_delta).
HopCallback = Callable[[int, int, OpsDelta], None]


def pipelined_parity(
    sources: Sequence[ByteSource],
    codec,
    *,
    hop_order: Optional[Sequence[int]] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: Optional[str] = None,
    length: Optional[int] = None,
    on_hop: Optional[HopCallback] = None,
) -> List[bytes]:
    """Parity payloads for ``k`` block sources folded in pipeline order.

    The hop-ordered twin of
    :func:`~repro.erasure.stream.encode_blocks_streaming`: one
    accumulator holds the ``n - k`` running parity buffers, and each hop
    folds its block's chunks in turn.  Because GF addition is XOR, the
    rows are independent of ``hop_order`` — byte-identical to
    ``codec.encode(blocks, length=length)``.

    Args:
        sources: Exactly ``k`` byte sources, indexed by stripe column.
        codec: The stripe's codec (RS/Cauchy/LRC).
        hop_order: Permutation of ``range(k)`` giving the fold order
            (stripe order when omitted).
        chunk_size: Read granularity.
        backend: GF backend override (defaults to ``REPRO_GF_BACKEND``).
        length: Padded block length.  Required when any source is
            unsized; defaults to the longest sized source.
        on_hop: Optional per-hop attribution callback; receives the hop
            index, the column folded, and the GF ops that fold counted.

    Returns:
        ``n - k`` parity payloads of exactly ``length`` bytes each.
    """
    k = codec.params.k
    if len(sources) != k:
        raise ValueError(f"expected {k} block sources, got {len(sources)}")
    order = list(range(k)) if hop_order is None else list(hop_order)
    if sorted(order) != list(range(k)):
        raise ValueError(
            f"hop_order must be a permutation of range({k}), got {order}"
        )
    chosen_backend = resolve_backend(backend)
    if length is None:
        sized = [
            s for s in sources
            if isinstance(s, (bytes, bytearray, memoryview))
        ]
        if len(sized) != len(sources):
            raise ValueError(
                "length= is required when sources are not all sized "
                "bytes-like objects"
            )
        length = max((len(s) for s in sized), default=0)
    parity_coeffs = codec._generator[k:, :]
    accumulator = _Accumulator(parity_coeffs, length, chosen_backend)
    for hop_index, column in enumerate(order):
        with measure_ops() as measured:
            offset = 0
            for chunk in ChunkReader(sources[column], chunk_size):
                if offset + len(chunk) > length:
                    raise ValueError(
                        f"block {column} longer than padded length {length}"
                    )
                accumulator.accumulate(column, chunk, offset=offset)
                offset += len(chunk)
                PERF.bump("pipeline.chunks_in")
                PERF.bump("pipeline.bytes_in", len(chunk))
        PERF.bump("pipeline.hops")
        if on_hop is not None:
            on_hop(hop_index, column, measured)
    PERF.bump("pipeline.stripes_encoded")
    return accumulator.rows()
