"""repro — Encoding-Aware Replication (EAR) for clustered file systems.

A complete, from-scratch reproduction of *"Enabling Efficient and Reliable
Transition from Replication to Erasure Coding for Clustered File Systems"*
(Li, Hu, Lee — DSN 2015): the EAR placement algorithm, the random
replication baseline, byte-level Reed-Solomon/Cauchy erasure coding, a
discrete-event cluster simulator, an HDFS-style control path (NameNode,
RaidNode, MapReduce), and drivers regenerating every figure and table of
the paper's evaluation.

Quickstart::

    import random
    from repro import (ClusterTopology, CodeParams,
                       EncodingAwareReplication, plan_ear_encoding)
    from repro.cluster import BlockStore

    topo = ClusterTopology.large_scale()          # 20 racks x 20 nodes
    code = CodeParams(14, 10)                     # Facebook's (14, 10)
    ear = EncodingAwareReplication(topo, code, rng=random.Random(7))

    store = BlockStore(topo)
    for _ in range(100):
        block = store.create_block(64 * 2**20)
        decision = ear.place_block(block.block_id)
        store.add_replicas(block.block_id, decision.node_ids)

    stripe = ear.store.sealed_stripes()[0]
    plan = plan_ear_encoding(topo, store, stripe, code)
    assert plan.cross_rack_downloads == 0         # the EAR guarantee

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduction results.
"""

from repro.cluster.block import Block, BlockStore, Replica
from repro.cluster.topology import ClusterTopology, Node, Rack
from repro.core.ear import EncodingAwareReplication
from repro.core.parity import (
    EncodingPlan,
    plan_ear_encoding,
    plan_rr_encoding,
)
from repro.core.policy import PlacementPolicy, ReplicationScheme
from repro.core.preliminary import PreliminaryEAR
from repro.core.random_replication import RandomReplication
from repro.core.relocation import BlockMover, PlacementMonitor
from repro.core.stripe import PreEncodingStore, Stripe
from repro.erasure.codec import (
    CauchyRSCodec,
    CodeParams,
    ErasureCodec,
    ReedSolomonCodec,
    make_codec,
)

__version__ = "1.0.0"

__all__ = [
    "Block",
    "BlockMover",
    "BlockStore",
    "CauchyRSCodec",
    "ClusterTopology",
    "CodeParams",
    "EncodingAwareReplication",
    "EncodingPlan",
    "ErasureCodec",
    "Node",
    "PlacementMonitor",
    "PlacementPolicy",
    "PreEncodingStore",
    "PreliminaryEAR",
    "Rack",
    "RandomReplication",
    "ReedSolomonCodec",
    "Replica",
    "ReplicationScheme",
    "Stripe",
    "make_codec",
    "plan_ear_encoding",
    "plan_rr_encoding",
    "__version__",
]
