"""The recovery storm engine: degraded reads, recovery-aware placement,
correlated-failure drills, and the metrics that compare them.

Layers (each importable on its own):

* :mod:`repro.recovery.metrics` — :class:`RecoveryMetrics`, the shared
  collector for repair bandwidth, repair-time distribution, degraded
  reads and windows of vulnerability.
* :mod:`repro.recovery.placement` — :class:`RecoveryAwareReplication`,
  the spread-for-repair EAR variant (policy name ``"recovery"``).
* :mod:`repro.recovery.degraded` — :class:`DegradedReadPath`, the client
  read ladder (normal → inline decode → repair-queue escalation).
* :mod:`repro.recovery.storm` — the four seeded storm scenarios and
  their fingerprinted reports.
* :mod:`repro.recovery.headtohead` — policy × code comparison grids over
  the sweep executor.
"""

from repro.recovery.degraded import (
    DEGRADED,
    ESCALATED,
    NORMAL,
    DegradedReadPath,
    DegradedReadResult,
)
from repro.recovery.headtohead import (
    DEFAULT_CODES,
    DEFAULT_POLICIES,
    head_to_head,
    head_to_head_rows,
    head_to_head_specs,
    storm_trial,
)
from repro.recovery.metrics import RecoveryMetrics
from repro.recovery.placement import RecoveryAwareReplication
from repro.recovery.storm import (
    SCENARIO_RUNNERS,
    SCENARIOS,
    StormCluster,
    StormReport,
    build_storm_cluster,
    rack_loss,
    rolling_failures,
    run_storm,
    scrub_storm,
    single_node_loss,
    storm_fingerprint,
)

__all__ = [
    "DEGRADED",
    "ESCALATED",
    "NORMAL",
    "DEFAULT_CODES",
    "DEFAULT_POLICIES",
    "DegradedReadPath",
    "DegradedReadResult",
    "RecoveryAwareReplication",
    "RecoveryMetrics",
    "SCENARIO_RUNNERS",
    "SCENARIOS",
    "StormCluster",
    "StormReport",
    "build_storm_cluster",
    "head_to_head",
    "head_to_head_rows",
    "head_to_head_specs",
    "rack_loss",
    "rolling_failures",
    "run_storm",
    "scrub_storm",
    "single_node_loss",
    "storm_fingerprint",
    "storm_trial",
]
