"""Recovery storms: correlated-failure drills over encoded stripes.

A *recovery storm* is what a cluster lives through after correlated
damage: the repair queue floods, reconstruction traffic fights client
load for rack uplinks, and reads land on blocks whose only copy is gone.
This module packages four such storms as seeded, fingerprint-
deterministic scenarios, each runnable under any placement policy
("rr", "ear", "recovery") so their recovery behaviour can be compared
head-to-head:

* :func:`single_node_loss` — one node dies under a concurrent MapReduce
  read load; clients ride the degraded-read path while the prioritized
  queue rebuilds.
* :func:`rack_loss` — the busiest rack goes dark permanently; every
  stripe decodes at once and the placement policy decides how many
  survivor fetches contend for the same uplinks.
* :func:`scrub_storm` — latent corruption across many stripes surfaces
  in one scrub pass, flooding the queue with decode work.
* :func:`rolling_failures` — nodes keep dying *during* an in-progress
  encoding wave; encoding, re-replication and decode repairs interleave.

All randomness in a scenario derives from its single ``seed``; the
returned :class:`StormReport` carries a sha256 fingerprint over final
placements, repair outcomes, read results and recovery metrics, so two
runs with the same arguments must match bit-for-bit — including across
a mid-storm crash/recovery cycle when a journal is attached.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.policy import ReplicationScheme
from repro.core.relocation import BlockMover
from repro.core.stripe import StripeState
from repro.erasure.codec import CodeParams
from repro.experiments.runner import build_cluster, populate_until_sealed
from repro.faults.repair import RepairQueue
from repro.faults.retry import DEGRADED_READ_RETRY, RetryPolicy
from repro.faults.scrubber import Scrubber
from repro.hdfs.failures import FailureInjector
from repro.hdfs.mapreduce import MapReduceJob, MapTask
from repro.recovery.degraded import DegradedReadPath
from repro.recovery.metrics import RecoveryMetrics
from repro.sim.metrics import ResilienceMetrics

#: The scenario pack, in canonical order.
SCENARIOS = (
    "single_node_loss",
    "rack_loss",
    "scrub_storm",
    "rolling_failures",
)

#: Pipeline-grade retry policy used by every storm's repair machinery.
STORM_RETRY = RetryPolicy(
    max_attempts=8, base_delay=1.0, multiplier=2.0,
    max_delay=30.0, jitter=0.5,
)


# ----------------------------------------------------------------------
# Cluster assembly
# ----------------------------------------------------------------------
@dataclass
class StormCluster:
    """A fully wired cluster plus the recovery machinery for one storm."""

    setup: object
    repair_queue: RepairQueue
    scrubber: Scrubber
    injector: FailureInjector
    read_path: DegradedReadPath
    recovery: RecoveryMetrics
    resilience: ResilienceMetrics
    stripes: list
    blocks_total: int
    reader_rng: random.Random
    encode_errors: List[str] = field(default_factory=list)

    @property
    def sim(self):
        return self.setup.sim

    @property
    def store(self):
        return self.setup.namenode.block_store


def build_storm_cluster(
    policy: str = "ear",
    seed: int = 0,
    num_racks: int = 8,
    nodes_per_rack: int = 4,
    num_stripes: int = 8,
    code: Optional[CodeParams] = None,
    block_size: int = 256_000,
    bandwidth: float = 1e6,
    oversubscription: float = 4.0,
    ear_c: int = 2,
    scrub_interval: float = 10.0,
    repair_concurrency: int = 4,
    journal=None,
    strategy: str = "download",
    pipeline_chunks: int = 4,
    scheduler=None,
) -> StormCluster:
    """Assemble a cluster with the full recovery stack, from one seed.

    The ``ear_c`` cap feeds EAR's concentration (and the recovery-aware
    policy's *nominal* cap — its placement always spreads one block per
    rack).  With a ``journal`` every metadata mutation — including the
    repair queue's relocation requests — is write-ahead logged, so the
    storm survives a crash/recovery cycle.  ``repair_concurrency`` models
    the repair fleet width; at the default 4 a storm's reconstructions
    overlap, which is what exposes placement-induced uplink contention.
    ``oversubscription`` is the intra-to-cross-rack bandwidth ratio (4:1
    by default, the usual datacenter core oversubscription) — it is what
    makes shared rack uplinks, not destination disks, the storm's
    bottleneck.  ``strategy`` picks the transition strategy
    (``"download"`` or ``"pipeline"``; see
    :class:`~repro.experiments.config.StrategyName`).
    """
    code = CodeParams(6, 4) if code is None else code
    master = random.Random(seed)
    repair_seed = master.randrange(2**32)
    mover_seed = master.randrange(2**32)
    injector_seed = master.randrange(2**32)
    reader_seed = master.randrange(2**32)

    topology = ClusterTopology(
        nodes_per_rack=nodes_per_rack,
        num_racks=num_racks,
        intra_rack_bandwidth=bandwidth,
        cross_rack_bandwidth=bandwidth / oversubscription,
    )
    resilience = ResilienceMetrics()
    recovery = RecoveryMetrics()
    setup = build_cluster(
        policy, topology, code, ReplicationScheme(3, 2), seed,
        block_size=block_size, ear_c=ear_c,
        retry=STORM_RETRY, resilience=resilience, journal=journal,
        strategy=strategy, pipeline_chunks=pipeline_chunks,
        scheduler=scheduler,
    )
    populate_until_sealed(setup, num_stripes)
    stripes = setup.namenode.sealed_stripes()[:num_stripes]
    blocks_total = sum(1 for __ in setup.namenode.block_store.blocks())

    mover = BlockMover(topology, code, rng=random.Random(mover_seed))
    repair_queue = RepairQueue(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        rng=random.Random(repair_seed), retry=STORM_RETRY,
        resilience=resilience, mover=mover, recovery=recovery,
        concurrency=repair_concurrency,
    )
    scrubber = Scrubber(
        setup.sim, setup.network, setup.namenode, repair_queue,
        interval=scrub_interval, resilience=resilience, recovery=recovery,
    )
    injector = FailureInjector(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        rng=random.Random(injector_seed), retry=STORM_RETRY,
        repair_queue=repair_queue, fail_endpoints=True,
    )
    read_path = DegradedReadPath(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        repair_queue=repair_queue, retry=DEGRADED_READ_RETRY,
        rng=random.Random(reader_seed), metrics=recovery,
    )
    return StormCluster(
        setup=setup,
        repair_queue=repair_queue,
        scrubber=scrubber,
        injector=injector,
        read_path=read_path,
        recovery=recovery,
        resilience=resilience,
        stripes=stripes,
        blocks_total=blocks_total,
        reader_rng=random.Random(reader_seed + 1),
    )


def encode_all(sc: StormCluster, num_map_tasks: int = 6,
               horizon: float = 50_000.0) -> None:
    """Run the encoding wave over every sealed stripe, to completion."""
    sc.sim.process(_drive_encoding(sc, num_map_tasks))
    sc.sim.run(until=sc.sim.now + horizon)


def _drive_encoding(sc: StormCluster, num_map_tasks: int):
    try:
        yield from sc.setup.raidnode.run_encoding(
            sc.setup.job_tracker, sc.stripes, num_map_tasks=num_map_tasks
        )
    except Exception as exc:  # noqa: BLE001 — reported, not fatal
        sc.encode_errors.append(repr(exc))


# ----------------------------------------------------------------------
# Storm building blocks
# ----------------------------------------------------------------------
def _busiest_node(sc: StormCluster) -> NodeId:
    """The node holding the most replicas (deterministic tie-break)."""
    counts = sc.store.replica_count_per_node()
    return min(sorted(counts), key=lambda n: (-counts[n], n))


def _busiest_rack(sc: StormCluster) -> RackId:
    """The rack holding the most replicas (deterministic tie-break)."""
    counts = sc.store.replica_count_per_rack()
    return min(sorted(counts), key=lambda r: (-counts[r], r))


def _encoded_blocks_on(sc: StormCluster, nodes: Sequence[NodeId]) -> List[int]:
    """Encoded-stripe blocks whose every replica lives on ``nodes``."""
    doomed = set(nodes)
    encoded_members = {
        member
        for stripe in sc.stripes
        if stripe.state == StripeState.ENCODED
        for member in stripe.all_block_ids()
    }
    lost = [
        block.block_id
        for block in sc.store.blocks()
        if block.block_id in encoded_members
        and sc.store.replica_nodes(block.block_id)
        and set(sc.store.replica_nodes(block.block_id)) <= doomed
    ]
    return sorted(lost)


def _schedule_reads(
    sc: StormCluster,
    when: float,
    block_ids: Sequence[int],
    avoid_nodes: Sequence[NodeId] = (),
    stagger: float = 1.0,
) -> None:
    """Issue one client read per block, staggered, from seeded readers."""
    forbidden = set(avoid_nodes)
    candidates = [
        n for n in sorted(sc.setup.topology.node_ids()) if n not in forbidden
    ]
    for index, block_id in enumerate(block_ids):
        reader = sc.reader_rng.choice(candidates)
        sc.sim.process(
            _read_later(sc, when + index * stagger, block_id, reader)
        )


def _read_later(sc: StormCluster, when: float, block_id: int,
                reader: NodeId):
    delay = when - sc.sim.now
    if delay > 0:
        yield sc.sim.timeout(delay)
    yield from sc.read_path.read_block(block_id, reader)


def _build_read_load(sc: StormCluster, num_tasks: int,
                     rng: random.Random) -> MapReduceJob:
    """A MapReduce job whose maps each stream one random block."""
    data_blocks = sorted(
        b.block_id for b in sc.store.blocks() if not b.is_parity()
    )
    tasks = []
    for task_id in range(num_tasks):
        block_id = rng.choice(data_blocks)
        tasks.append(MapTask(task_id=task_id,
                             work=_load_task_body(sc, block_id)))
    return MapReduceJob(job_id=10_000, tasks=tasks)


def _load_task_body(sc: StormCluster, block_id: int):
    def body(node: NodeId):
        yield from sc.read_path.read_block(block_id, node)
    return body


def _drain(sc: StormCluster, horizon: float, rounds: int = 8,
           round_time: float = 300.0) -> None:
    """Run past ``horizon`` then keep scrubbing until no damage is left."""
    sc.sim.run(until=sc.sim.now + horizon)
    for __ in range(rounds):
        caught = sc.scrubber.scan_once()
        if not caught and sc.repair_queue.pending_count == 0:
            break
        sc.sim.run(until=sc.sim.now + round_time)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class StormReport:
    """Everything one storm run measured (deterministic per seed)."""

    scenario: str
    policy: str
    seed: int
    sim_time: float
    stripes_total: int
    stripes_encoded: int
    blocks_total: int
    repair_outcomes: Dict[str, int]
    unrecoverable: Tuple[int, ...]
    read_modes: Dict[str, int]
    placement_violations: int
    relocation_requests: int
    encode_errors: Tuple[str, ...]
    recovery_summary: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""

    @property
    def clean(self) -> bool:
        """True when the storm lost nothing and every stripe encoded."""
        return (
            not self.unrecoverable
            and not self.encode_errors
            and self.stripes_encoded == self.stripes_total
        )

    def summary(self) -> Dict[str, object]:
        """Flat printable snapshot (CLI table source)."""
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "sim_time": round(self.sim_time, 3),
            "stripes_encoded": f"{self.stripes_encoded}/{self.stripes_total}",
            "blocks_total": self.blocks_total,
            "unrecoverable": len(self.unrecoverable),
            "placement_violations": self.placement_violations,
            "relocation_requests": self.relocation_requests,
            "clean": self.clean,
            "fingerprint": self.fingerprint[:16],
        }
        for mode, count in sorted(self.read_modes.items()):
            out[f"reads_{mode}"] = count
        for key, value in sorted(self.repair_outcomes.items()):
            out[f"repairs_{key}"] = value
        for key, value in sorted(self.recovery_summary.items()):
            out[key] = round(value, 4) if isinstance(value, float) else value
        return out

    def as_trial_result(self) -> Dict[str, object]:
        """JSON-round-trippable form for sweep-executor trials."""
        return {
            "scenario": self.scenario,
            "policy": self.policy,
            "seed": self.seed,
            "sim_time": repr(self.sim_time),
            "clean": self.clean,
            "stripes_encoded": self.stripes_encoded,
            "unrecoverable": list(self.unrecoverable),
            "read_modes": dict(sorted(self.read_modes.items())),
            "repair_outcomes": dict(sorted(self.repair_outcomes.items())),
            "recovery": {
                key: repr(value)
                for key, value in sorted(self.recovery_summary.items())
            },
            "fingerprint": self.fingerprint,
        }


def storm_fingerprint(sc: StormCluster) -> str:
    """sha256 over final placements, repairs, reads, and recovery metrics."""
    store = sc.store
    payload = {
        "now": repr(sc.sim.now),
        "placements": {
            str(block.block_id): sorted(store.replica_nodes(block.block_id))
            for block in store.blocks()
        },
        "corrupted": [list(pair) for pair in store.corrupted_replicas()],
        "outcomes": dict(sorted(sc.repair_queue.outcomes.items())),
        "encoded": sorted(r.stripe_id for r in sc.setup.encoder.records),
        "resilience": {
            k: repr(v) for k, v in sorted(sc.resilience.summary().items())
        },
        "recovery": {
            k: repr(v)
            for k, v in sorted(sc.recovery.summary(now=sc.sim.now).items())
        },
        "reads": [
            [r.block_id, r.reader_node, r.mode, repr(r.latency)]
            for r in sc.read_path.results
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def finish_report(sc: StormCluster, scenario: str, policy: str,
                  seed: int) -> StormReport:
    """Collect the report once a storm has fully drained."""
    read_modes: Dict[str, int] = {}
    for result in sc.read_path.results:
        read_modes[result.mode] = read_modes.get(result.mode, 0) + 1
    stripe_ids = {s.stripe_id for s in sc.stripes}
    report = StormReport(
        scenario=scenario,
        policy=policy,
        seed=seed,
        sim_time=sc.sim.now,
        stripes_total=len(sc.stripes),
        stripes_encoded=sum(
            1 for r in sc.setup.encoder.records if r.stripe_id in stripe_ids
        ),
        blocks_total=sc.blocks_total,
        repair_outcomes=dict(sc.repair_queue.outcomes),
        unrecoverable=tuple(sc.repair_queue.unrecoverable)
        + tuple(
            block_id
            for rep in sc.injector.reports
            for block_id in rep.unrecoverable
        ),
        read_modes=read_modes,
        placement_violations=len(sc.injector.violations),
        relocation_requests=len(sc.repair_queue.relocation_requests),
        encode_errors=tuple(sc.encode_errors),
        recovery_summary=sc.recovery.summary(now=sc.sim.now),
    )
    report.fingerprint = storm_fingerprint(sc)
    return report


# ----------------------------------------------------------------------
# The scenario pack
# ----------------------------------------------------------------------
def single_node_loss(
    seed: int = 0,
    policy: str = "ear",
    num_reads: int = 4,
    num_load_tasks: int = 6,
    journal=None,
    **build_kwargs,
) -> StormReport:
    """One node dies under MapReduce load; clients read through the hole.

    The busiest node (most replicas) fails permanently at t+5 while a
    read-heavy MapReduce job streams blocks.  Reads against blocks whose
    only copy died are served by inline decode; the prioritized queue
    rebuilds everything in the background.
    """
    sc = build_storm_cluster(policy=policy, seed=seed, journal=journal,
                             **build_kwargs)
    encode_all(sc)
    victim = _busiest_node(sc)
    lost = _encoded_blocks_on(sc, [victim])
    t0 = sc.sim.now + 5.0

    load_rng = random.Random(seed + 7)
    job = _build_read_load(sc, num_load_tasks, load_rng)
    sc.setup.job_tracker.submit(job)
    sc.sim.process(sc.injector.fail_node_at(t0, victim))
    _schedule_reads(sc, t0 + 1.0, lost[:num_reads], avoid_nodes=[victim])
    sc.recovery.record_storm_event("node_loss")

    _drain(sc, horizon=600.0)
    return finish_report(sc, "single_node_loss", policy, seed)


def rack_loss(
    seed: int = 0,
    policy: str = "ear",
    num_reads: int = 4,
    journal=None,
    **build_kwargs,
) -> StormReport:
    """Correlated whole-rack loss: every stripe decodes at once.

    The busiest rack goes dark permanently at t+5.  How fast the cluster
    re-protects itself is decided by the placement: EAR's concentration
    (c=2) makes survivor fetches contend for shared rack uplinks, the
    recovery-aware spread decodes with one fetch per uplink.
    """
    sc = build_storm_cluster(policy=policy, seed=seed, journal=journal,
                             **build_kwargs)
    encode_all(sc)
    victim_rack = _busiest_rack(sc)
    doomed = sorted(sc.setup.topology.nodes_in_rack(victim_rack))
    lost = _encoded_blocks_on(sc, doomed)
    t0 = sc.sim.now + 5.0

    sc.sim.process(sc.injector.fail_rack_at(t0, victim_rack))
    _schedule_reads(sc, t0 + 1.0, lost[:num_reads], avoid_nodes=doomed)
    sc.recovery.record_storm_event("rack_loss")

    _drain(sc, horizon=1200.0)
    return finish_report(sc, "rack_loss", policy, seed)


def scrub_storm(
    seed: int = 0,
    policy: str = "ear",
    corrupt_per_stripe: int = 1,
    num_reads: int = 3,
    journal=None,
    **build_kwargs,
) -> StormReport:
    """Latent bit-rot across many stripes surfaces in one scrub pass.

    One retained replica per stripe rots silently after encoding; the
    next scrub pass detects them all at once and floods the repair queue
    with decode work.  A few client reads land on still-undetected
    corrupted blocks and decode around them inline.
    """
    build_kwargs.setdefault("scrub_interval", 10.0)
    sc = build_storm_cluster(policy=policy, seed=seed, journal=journal,
                             **build_kwargs)
    encode_all(sc)

    rot_rng = random.Random(seed + 13)
    corrupted: List[int] = []
    for stripe in sc.stripes:
        members = sorted(stripe.all_block_ids())
        victims = rot_rng.sample(members, min(corrupt_per_stripe,
                                              len(members)))
        for block_id in victims:
            replicas = sc.store.replica_nodes(block_id)
            if not replicas:
                continue
            sc.store.mark_corrupted(block_id, sorted(replicas)[0])
            sc.resilience.record_corruption_injected()
            corrupted.append(block_id)
    sc.recovery.record_storm_event("scrub_storm")

    # A few reads race the scrubber to the rotten blocks.
    _schedule_reads(sc, sc.sim.now + 1.0, sorted(corrupted)[:num_reads])
    sc.scrubber.start()
    _drain(sc, horizon=600.0)
    return finish_report(sc, "scrub_storm", policy, seed)


def rolling_failures(
    seed: int = 0,
    policy: str = "ear",
    num_failures: int = 3,
    failure_spacing: float = 15.0,
    num_reads: int = 3,
    journal=None,
    **build_kwargs,
) -> StormReport:
    """Nodes keep dying *during* the encoding wave.

    Failures land every ``failure_spacing`` seconds while stripes are
    still encoding, so re-replication of replicated blocks, decode
    repairs of already-encoded stripes, and the wave itself interleave
    on the same links.  Victims are drawn from distinct racks.
    """
    sc = build_storm_cluster(policy=policy, seed=seed, journal=journal,
                             **build_kwargs)
    victim_rng = random.Random(seed + 21)
    racks = sorted(sc.setup.topology.rack_ids())
    victim_racks = victim_rng.sample(racks, min(num_failures, len(racks)))
    victims = [
        victim_rng.choice(sorted(sc.setup.topology.nodes_in_rack(rack)))
        for rack in victim_racks
    ]

    sc.sim.process(_drive_encoding(sc, num_map_tasks=6))
    for index, victim in enumerate(victims):
        when = 5.0 + index * failure_spacing
        sc.sim.process(sc.injector.fail_node_at(when, victim))
        sc.recovery.record_storm_event("rolling_failure")

    sc.sim.run(until=5.0 + num_failures * failure_spacing + 100.0)
    lost = _encoded_blocks_on(sc, victims)
    if not lost:
        # Everything already rebuilt: read a few encoded blocks anyway so
        # the client path is exercised (they'll be served normally).
        lost = sorted(
            member for stripe in sc.stripes
            if stripe.state == StripeState.ENCODED
            for member in stripe.block_ids
        )
    _schedule_reads(sc, sc.sim.now + 1.0, lost[:num_reads],
                    avoid_nodes=victims)
    _drain(sc, horizon=600.0)
    return finish_report(sc, "rolling_failures", policy, seed)


#: Scenario name -> runner, for the CLI and the sweep trials.
SCENARIO_RUNNERS = {
    "single_node_loss": single_node_loss,
    "rack_loss": rack_loss,
    "scrub_storm": scrub_storm,
    "rolling_failures": rolling_failures,
}


def run_storm(scenario: str, seed: int = 0, policy: str = "ear",
              **kwargs) -> StormReport:
    """Dispatch one storm scenario by name."""
    try:
        runner = SCENARIO_RUNNERS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario!r}; choose from {SCENARIOS}"
        ) from None
    return runner(seed=seed, policy=policy, **kwargs)
