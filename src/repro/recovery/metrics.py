"""Recovery-path accounting: repair bandwidth, degraded reads, vulnerability.

The Rashmi et al. Facebook-cluster study found that *recovery* traffic —
not encoding traffic — dominates cross-rack network load once a cluster
runs erasure-coded storage at scale.  :class:`RecoveryMetrics` is the
single collector for that side of the system, threaded through the
repair queue, the scrubber, the chaos injector and the degraded-read
path:

* **per-rack repair bandwidth** — bytes pulled into each destination
  rack by reconstruction and re-replication;
* **repair-time distribution** — per-repair durations (count, mean,
  percentiles), beyond the single MTTR scalar of
  :class:`~repro.sim.metrics.ResilienceMetrics`;
* **degraded reads** — count, latency, and the cross-rack bytes a
  client paid to decode around a lost block;
* **window of vulnerability** — cumulative simulated time any stripe
  spent at margin 0 (one more failure loses data).

Everything is plain counters, lists and
:class:`~repro.sim.metrics.OutageWindow` objects, so experiment drivers
and fingerprints can consume it deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.metrics import PERF, Counter, OutageWindow, ResponseTimeStats


class RecoveryMetrics:
    """Collects the recovery storm engine's measurements.

    One instance is shared by every component of a drill; all methods are
    cheap enough to leave permanently enabled.  Counted events also feed
    the process-wide :data:`~repro.sim.metrics.PERF` registry under the
    ``recovery.*`` prefix so bench scenarios can gate on them.
    """

    def __init__(self) -> None:
        self.counters = Counter()
        #: (start_time, latency) samples of reads served by inline decode.
        self.degraded_read_stats = ResponseTimeStats()
        #: (start_time, duration) samples of completed repairs.
        self.repair_time_stats = ResponseTimeStats()
        #: Reconstruction ingress per destination rack, in bytes.
        self.repair_bytes_by_rack: Dict[int, float] = {}
        self.repair_bytes = 0.0
        self.cross_rack_repair_bytes = 0.0
        self.degraded_read_bytes = 0.0
        self.cross_rack_degraded_bytes = 0.0
        #: Closed + still-open margin-0 windows, in open order.
        self.vulnerability_windows: List[OutageWindow] = []
        self._open_vulnerability: Dict[str, OutageWindow] = {}

    # ------------------------------------------------------------------
    # Degraded reads (client path)
    # ------------------------------------------------------------------
    def record_degraded_read(
        self,
        start_time: float,
        latency: float,
        bytes_read: float,
        cross_rack_bytes: float,
    ) -> None:
        """One read served by fetching k survivors and decoding inline."""
        self.counters.add("degraded_reads")
        self.degraded_read_stats.record(start_time, latency)
        self.degraded_read_bytes += bytes_read
        self.cross_rack_degraded_bytes += cross_rack_bytes
        PERF.bump("recovery.degraded_reads")

    def record_escalation(self) -> None:
        """One degraded read that fell back to repair-queue escalation."""
        self.counters.add("escalations")
        PERF.bump("recovery.escalations")

    # ------------------------------------------------------------------
    # Repairs (repair queue)
    # ------------------------------------------------------------------
    def record_repair(self, start_time: float, duration: float) -> None:
        """One completed repair's start time and duration."""
        self.counters.add("repairs")
        self.repair_time_stats.record(start_time, duration)
        PERF.bump("recovery.repairs")

    def record_repair_traffic(
        self,
        dest_rack: Optional[int],
        bytes_read: float,
        cross_rack_bytes: float,
    ) -> None:
        """The reconstruction traffic of one successful repair attempt.

        Recorded separately from :meth:`record_repair` because traffic is
        known at the attempt that succeeds while the duration spans every
        retry of the repair.
        """
        self.repair_bytes += bytes_read
        self.cross_rack_repair_bytes += cross_rack_bytes
        if dest_rack is not None and bytes_read:
            self.repair_bytes_by_rack[dest_rack] = (
                self.repair_bytes_by_rack.get(dest_rack, 0.0) + bytes_read
            )

    def repair_time_distribution(self) -> Dict[str, float]:
        """Count/mean/median/p95/max of the repair durations seen so far."""
        stats = self.repair_time_stats
        if stats.count == 0:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "max": 0.0}
        return {
            "count": float(stats.count),
            "mean": stats.mean(),
            "p50": stats.percentile(50),
            "p95": stats.percentile(95),
            "max": max(stats.latencies()),
        }

    # ------------------------------------------------------------------
    # Window of vulnerability (margin 0: one more failure loses data)
    # ------------------------------------------------------------------
    def begin_vulnerability(self, key: str, now: float) -> None:
        """Open a margin-0 window for a stripe/block label.  Idempotent."""
        if key in self._open_vulnerability:
            return
        window = OutageWindow(key, now)
        self._open_vulnerability[key] = window
        self.vulnerability_windows.append(window)
        self.counters.add("vulnerability_windows")
        PERF.bump("recovery.vulnerability_windows")

    def end_vulnerability(self, key: str, now: float) -> None:
        """Close a margin-0 window (a repair restored slack).  Idempotent."""
        window = self._open_vulnerability.pop(key, None)
        if window is not None:
            window.end = now

    def time_at_margin_zero(self, now: Optional[float] = None) -> float:
        """Total simulated time spent at margin 0.

        Still-open windows count up to ``now`` when given (a drill's end
        time), and are excluded otherwise.
        """
        total = 0.0
        for window in self.vulnerability_windows:
            if window.end is not None:
                total += window.end - window.start
            elif now is not None:
                total += max(0.0, now - window.start)
        return total

    # ------------------------------------------------------------------
    # Storm bookkeeping (chaos injector, scrubber)
    # ------------------------------------------------------------------
    def record_storm_event(self, kind: str) -> None:
        """One chaos event fired during a recovery storm."""
        self.counters.add(f"storm_{kind}")

    def record_scrub_detection(self) -> None:
        """One corrupted replica surfaced by the scrubber."""
        self.counters.add("scrub_detections")

    # ------------------------------------------------------------------
    def per_rack_repair_bandwidth(
        self, elapsed: float
    ) -> Dict[int, float]:
        """Mean repair ingress per rack in bytes/second over ``elapsed``."""
        if elapsed <= 0:
            raise ValueError("elapsed must be positive")
        return {
            rack: volume / elapsed
            for rack, volume in sorted(self.repair_bytes_by_rack.items())
        }

    def summary(self, now: Optional[float] = None) -> Dict[str, float]:
        """A flat, deterministic snapshot for tables and fingerprints."""
        out = dict(sorted(self.counters.as_dict().items()))
        distribution = self.repair_time_distribution()
        for key in ("count", "mean", "p50", "p95", "max"):
            out[f"repair_time_{key}"] = distribution[key]
        out["repair_bytes"] = self.repair_bytes
        out["cross_rack_repair_bytes"] = self.cross_rack_repair_bytes
        out["degraded_read_bytes"] = self.degraded_read_bytes
        out["cross_rack_degraded_bytes"] = self.cross_rack_degraded_bytes
        if self.degraded_read_stats.count:
            out["degraded_read_mean_latency"] = (
                self.degraded_read_stats.mean()
            )
        else:
            out["degraded_read_mean_latency"] = 0.0
        out["racks_receiving_repairs"] = float(
            len(self.repair_bytes_by_rack)
        )
        out["time_at_margin_zero"] = self.time_at_margin_zero(now)
        return out
