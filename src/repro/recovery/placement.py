"""Recovery-aware placement: spread encoded stripes for repair parallelism.

EAR concentrates each stripe — primary replicas in a core rack, up to
``c`` retained blocks (and reserved parity slots) per rack — which
minimizes the *encoding* traffic the paper optimizes.  But concentration
is exactly wrong for *recovery*: when a rack dies, every stripe with two
blocks there must decode twice, and a reconstruction reading two
survivors from one rack serializes on that rack's uplink.  The D3 paper
(Xu et al., PAPERS.md) shows deterministic spread placements cut repair
time by integer factors for the same reason.

:class:`RecoveryAwareReplication` keeps EAR's machinery — core-rack
primaries (so encoding map tasks still read locally), flow-graph
validated layouts, incremental placement sessions — but pins the
post-encoding layout to **one block per rack** regardless of the
deployment's nominal cap, and disables the core-rack parity reservation
so parity spreads with the data.  The trade: stripes span more racks
(needs ``n`` racks instead of ``ceil(n/c)``) and parity uploads pay more
cross-rack bytes, bought back as parallel single-uplink reconstruction
reads and at most one lost block per stripe per rack failure.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cluster.topology import ClusterTopology
from repro.core.ear import EncodingAwareReplication
from repro.core.policy import ReplicationScheme, TWO_RACKS


class RecoveryAwareReplication(EncodingAwareReplication):
    """EAR variant that spreads encoded stripes one block per rack.

    Args:
        topology: Cluster layout; needs at least ``code.n`` racks (the
            spread constraint is a hard one-per-rack cap).
        code: The erasure code the stripes will be encoded with.
        scheme: Replication scheme used before encoding.
        rng: Random source for layout draws.
        store: Optional shared pre-encoding store.
        c: The *nominal* deployment cap, kept for reporting and for
            head-to-head comparability with EAR; placement always uses
            the stricter one-per-rack spread.
        num_target_racks: Optional cap on candidate target racks per
            stripe (as in EAR).

    The class inherits ``policy.c == 1``, so downstream consumers — the
    repair queue's replacement-node rule, the placement monitor — hold
    repaired stripes to the same spread invariant automatically.
    """

    name = "recovery"

    def __init__(
        self,
        topology: ClusterTopology,
        code,
        scheme: ReplicationScheme = TWO_RACKS,
        rng: Optional[random.Random] = None,
        store=None,
        c: int = 1,
        num_target_racks: Optional[int] = None,
    ) -> None:
        if c < 1:
            raise ValueError("nominal cap c must be at least 1")
        super().__init__(
            topology,
            code,
            scheme=scheme,
            rng=rng,
            store=store,
            c=1,
            num_target_racks=num_target_racks,
            reserve_core_for_parity=False,
        )
        #: The cap an equivalent EAR deployment would run with; the
        #: placement itself always enforces the spread (c=1).
        self.nominal_c = c
