"""Client-side degraded reads: decode around lost blocks, escalate cleanly.

When a read request lands on a block whose replicas are all gone (node
loss) or unreachable (outage), HDFS-RAID does not make the client wait
for the background repair pipeline.  The client fetches ``k`` surviving
blocks of the stripe, decodes the missing one in memory, and answers the
read — slower and heavier on the network than a normal read, but live.

:class:`DegradedReadPath` models that client, with the failure ladder a
real one climbs:

1. **normal** — a healthy, reachable replica exists; read it (preferring
   local, then rack-local, sources).
2. **degraded** — no reachable replica, but the block belongs to an
   encoded stripe: fetch ``k`` survivors under the bounded
   :data:`~repro.faults.retry.DEGRADED_READ_RETRY` policy, pay a
   deterministic decode-time penalty, and account the read's latency and
   cross-rack bytes against :class:`~repro.recovery.metrics.RecoveryMetrics`.
3. **escalated** — fewer than ``k`` survivors are reachable (or the
   bounded retries exhaust): hand the block to the repair queue and fail
   the read; the caller sees an :data:`ESCALATED` result instead of an
   unbounded stall.

Every random choice comes from an injected seeded rng, so drills that
issue degraded reads stay fingerprint-deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.block import BlockId
from repro.cluster.topology import NodeId
from repro.core.stripe import Stripe, StripeState
from repro.faults.retry import DEGRADED_READ_RETRY, RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.netsim import Network, TransferAborted

#: How the read was ultimately served.
NORMAL = "normal"
DEGRADED = "degraded"
ESCALATED = "escalated"

#: Default in-memory decode throughput, bytes/second.  GF(2^8)
#: reconstruction on one core moves on the order of a gigabyte a second
#: (cf. the batched-kernel bench), so decoding a (14,10) stripe of 64 MiB
#: blocks costs a visible-but-not-dominant fraction of a second.
DEFAULT_DECODE_BANDWIDTH = 1.0e9


@dataclass(frozen=True)
class DegradedReadResult:
    """Outcome of one client read through the degraded path.

    Attributes:
        block_id: The block the client asked for.
        reader_node: Where the data was needed.
        mode: :data:`NORMAL`, :data:`DEGRADED`, or :data:`ESCALATED`.
        latency: Simulated seconds from request to answer (for
            escalations: until the client gave up).
        bytes_read: Bytes the read pulled over the network or disk.
        cross_rack_bytes: Portion of ``bytes_read`` that crossed racks.
        survivors_fetched: Blocks downloaded to decode (0 unless
            degraded).
    """

    block_id: BlockId
    reader_node: NodeId
    mode: str
    latency: float
    bytes_read: float
    cross_rack_bytes: float
    survivors_fetched: int = 0

    @property
    def served(self) -> bool:
        """True when the client actually got the data."""
        return self.mode in (NORMAL, DEGRADED)


class DegradedReadPath:
    """The client read path over a cluster with encoded stripes.

    Args:
        sim: Simulation kernel.
        network: Link model and liveness oracle.
        namenode: Metadata server (block store + pre-encoding store).
        raidnode: Supplies the survivor-fetch machinery for decoding.
        repair_queue: Escalation target; optional — without one an
            escalated read is only recorded, not enqueued.
        retry: Bounded inline retry policy for the survivor fetch.
            Defaults to :data:`~repro.faults.retry.DEGRADED_READ_RETRY`.
        rng: Seeded random source (jitter draws).
        metrics: Optional :class:`~repro.recovery.metrics.RecoveryMetrics`.
        decode_bandwidth: Deterministic in-memory decode throughput used
            for the decode-time penalty, bytes/second.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode,
        raidnode,
        repair_queue=None,
        retry: RetryPolicy = DEGRADED_READ_RETRY,
        rng: Optional[random.Random] = None,
        metrics=None,
        decode_bandwidth: float = DEFAULT_DECODE_BANDWIDTH,
    ) -> None:
        if decode_bandwidth <= 0:
            raise ValueError("decode bandwidth must be positive")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.raidnode = raidnode
        self.repair_queue = repair_queue
        self.retry = retry
        self.rng = rng if rng is not None else random.Random(0)
        self.metrics = metrics
        self.decode_bandwidth = decode_bandwidth
        self.results: List[DegradedReadResult] = []

    # ------------------------------------------------------------------
    def read_block(self, block_id: BlockId, reader_node: NodeId) -> Generator:
        """Serve one read, climbing the normal → degraded → escalated ladder.

        Returns:
            A :class:`DegradedReadResult` (generator return value).
        """
        start = self.sim.now
        result = yield from self._read_normal(block_id, reader_node, start)
        if result is None:
            result = yield from self._read_degraded(
                block_id, reader_node, start
            )
        self.results.append(result)
        return result

    # ------------------------------------------------------------------
    # Rung 1: a plain replica read
    # ------------------------------------------------------------------
    def _read_normal(
        self, block_id: BlockId, reader_node: NodeId, start: float
    ) -> Generator:
        """Try reachable replicas nearest-first; None if all fail."""
        store = self.namenode.block_store
        size = store.block(block_id).size
        for source in self._live_sources(block_id, reader_node):
            try:
                if source == reader_node:
                    if self.network.disk is not None:
                        yield from self.network.disk_read(reader_node, size)
                else:
                    yield from self.network.transfer(
                        source, reader_node, size, write_disk=False
                    )
            except TransferAborted:
                continue  # the source died mid-read; try the next one
            cross = size if self.network.is_cross_rack(
                source, reader_node
            ) else 0.0
            if self.metrics is not None:
                self.metrics.counters.add("normal_reads")
            return DegradedReadResult(
                block_id=block_id,
                reader_node=reader_node,
                mode=NORMAL,
                latency=self.sim.now - start,
                bytes_read=float(size),
                cross_rack_bytes=cross,
            )
        return None

    def _live_sources(
        self, block_id: BlockId, reader_node: NodeId
    ) -> List[NodeId]:
        """Reachable healthy replicas, nearest-first, deterministic."""
        try:
            nodes = self.namenode.block_store.healthy_replica_nodes(block_id)
        except KeyError:
            return []
        live = [n for n in nodes if self.network.is_up(n)]

        def distance(node: NodeId) -> Tuple[int, NodeId]:
            if node == reader_node:
                return (0, node)
            if not self.network.is_cross_rack(node, reader_node):
                return (1, node)
            return (2, node)

        return sorted(live, key=distance)

    # ------------------------------------------------------------------
    # Rungs 2 and 3: inline decode, then escalation
    # ------------------------------------------------------------------
    def _read_degraded(
        self, block_id: BlockId, reader_node: NodeId, start: float
    ) -> Generator:
        stripe = self._stripe_of(block_id)
        if stripe is None or stripe.state != StripeState.ENCODED:
            # Not decodable: a replicated block with every copy gone is
            # the repair pipeline's problem, not the client's.
            result = self._escalate(block_id, reader_node, start)
            return result
        try:
            # The bounded client policy overrides the RaidNode's own
            # (pipeline-grade, 60 s backoff ceiling) retry policy for
            # this one read, so the inline wait stays capped.
            record = yield from self.raidnode.degraded_read(
                stripe, block_id, reader_node, retry=self.retry
            )
        except (RuntimeError, TransferAborted):
            # RuntimeError: under k survivors exist anywhere (true data
            # loss) — or RetryExhausted, the bounded inline budget ran
            # out.  TransferAborted: a transient fault with no retry
            # policy configured at all.  Either way the client stops
            # waiting and the repair queue takes over.
            result = self._escalate(block_id, reader_node, start)
            return result
        size = self.namenode.block_store.block(block_id).size
        yield self.sim.timeout(stripe.k * size / self.decode_bandwidth)
        latency = self.sim.now - start
        bytes_read = float(stripe.k * size)
        cross_bytes = float(record.cross_rack_reads * size)
        if self.metrics is not None:
            self.metrics.record_degraded_read(
                start, latency, bytes_read, cross_bytes
            )
        return DegradedReadResult(
            block_id=block_id,
            reader_node=reader_node,
            mode=DEGRADED,
            latency=latency,
            bytes_read=bytes_read,
            cross_rack_bytes=cross_bytes,
            survivors_fetched=stripe.k,
        )

    def _escalate(
        self, block_id: BlockId, reader_node: NodeId, start: float
    ) -> DegradedReadResult:
        if self.repair_queue is not None:
            self.repair_queue.enqueue(block_id)
        if self.metrics is not None:
            self.metrics.record_escalation()
        return DegradedReadResult(
            block_id=block_id,
            reader_node=reader_node,
            mode=ESCALATED,
            latency=self.sim.now - start,
            bytes_read=0.0,
            cross_rack_bytes=0.0,
        )

    # ------------------------------------------------------------------
    def _stripe_of(self, block_id: BlockId) -> Optional[Stripe]:
        """Resolve a block to its stripe (mirrors the repair queue)."""
        pre_store = self.namenode.pre_encoding_store
        if pre_store is None:
            return None
        stripe = pre_store.stripe_of_block(block_id)
        if stripe is not None:
            return stripe
        stripe_id = self.namenode.block_store.block(block_id).stripe_id
        if stripe_id is None:
            return None
        try:
            return pre_store.stripe(stripe_id)
        except KeyError:
            return None
