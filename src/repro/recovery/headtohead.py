"""Policy head-to-heads: the same storm under rr / ear / recovery placement.

The question the recovery engine exists to answer: *how much repair
speed does EAR's encoding-friendly concentration cost, and what does the
recovery-aware spread buy back?*  This module runs one storm scenario
across a policy × code grid as independent
:class:`~repro.parallel.spec.TrialSpec` trials, so the comparison rides
the PR5 sweep executor — parallel across processes, fingerprint-cached,
and differentially checked against the sequential oracle under
``REPRO_PARALLEL_CHECK=1``.

``storm_trial`` is the module-level trial callable (workers must be able
to unpickle it); its result is the storm report's JSON-round-trippable
form, so byte-identical results across ``--workers 0`` and ``--workers
4`` are part of the engine's acceptance contract.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.erasure.codec import CodeParams
from repro.parallel.executor import make_executor
from repro.parallel.spec import TrialSpec
from repro.recovery.storm import run_storm

#: (label, n, k) rows of the default head-to-head code grid: the paper's
#: (14,10) RS deployment and an LRC-shaped (16,12) geometry (12 data +
#: 2 local + 2 global parities modelled through the generic code path).
DEFAULT_CODES: Tuple[Tuple[str, int, int], ...] = (
    ("rs_14_10", 14, 10),
    ("lrc_16_12", 16, 12),
)

#: Placement policies compared by default.
DEFAULT_POLICIES: Tuple[str, ...] = ("rr", "ear", "recovery")


def storm_trial(
    seed: int = 0,
    scenario: str = "rack_loss",
    policy: str = "ear",
    code_label: str = "rs_14_10",
    code_n: int = 14,
    code_k: int = 10,
    num_racks: int = 18,
    nodes_per_rack: int = 4,
    num_stripes: int = 4,
    block_size: int = 256_000,
    ear_c: int = 2,
) -> Dict[str, object]:
    """One storm run as a sweep trial (module-level, picklable).

    The code is passed as ``(code_n, code_k)`` integers so the trial
    config stays canonically JSON-encodable; ``code_label`` carries the
    human name into the result (and the trial's cache identity).
    """
    report = run_storm(
        scenario,
        seed=seed,
        policy=policy,
        code=CodeParams(code_n, code_k),
        num_racks=num_racks,
        nodes_per_rack=nodes_per_rack,
        num_stripes=num_stripes,
        block_size=block_size,
        ear_c=ear_c,
    )
    result = report.as_trial_result()
    result["code"] = code_label
    return result


def head_to_head_specs(
    scenario: str = "rack_loss",
    policies: Sequence[str] = DEFAULT_POLICIES,
    codes: Sequence[Tuple[str, int, int]] = DEFAULT_CODES,
    seeds: Sequence[int] = (0,),
    num_racks: int = 18,
    nodes_per_rack: int = 4,
    num_stripes: int = 4,
    ear_c: int = 2,
) -> List[TrialSpec]:
    """The trial grid for one scenario: policies × codes × seeds."""
    specs: List[TrialSpec] = []
    for label, n, k in codes:
        for policy in policies:
            for seed in seeds:
                specs.append(TrialSpec(
                    fn=storm_trial,
                    config={
                        "scenario": scenario,
                        "policy": policy,
                        "code_label": label,
                        "code_n": n,
                        "code_k": k,
                        "num_racks": num_racks,
                        "nodes_per_rack": nodes_per_rack,
                        "num_stripes": num_stripes,
                        "ear_c": ear_c,
                    },
                    seed=seed,
                    tag=f"storm.{scenario}.{label}.{policy}",
                ))
    return specs


def head_to_head(
    scenario: str = "rack_loss",
    policies: Sequence[str] = DEFAULT_POLICIES,
    codes: Sequence[Tuple[str, int, int]] = DEFAULT_CODES,
    seeds: Sequence[int] = (0,),
    num_racks: int = 18,
    nodes_per_rack: int = 4,
    num_stripes: int = 4,
    ear_c: int = 2,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Run the grid, through the sweep executor when ``workers`` is given.

    ``workers=None`` runs sequentially in-process (no executor at all);
    ``workers=0`` uses the executor's in-process path (cache active);
    larger values fan trials out to worker processes.  Results always
    come back in spec order, so the two paths are comparable element
    by element.
    """
    specs = head_to_head_specs(
        scenario, policies, codes, seeds,
        num_racks=num_racks, nodes_per_rack=nodes_per_rack,
        num_stripes=num_stripes, ear_c=ear_c,
    )
    executor = make_executor(workers, cache_dir)
    if executor is None:
        return [spec.run() for spec in specs]
    return executor.map_trials(specs)


def head_to_head_rows(
    results: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Flatten head-to-head results into CLI table rows."""
    rows: List[Dict[str, object]] = []
    for result in results:
        recovery = result.get("recovery", {})
        rows.append({
            "scenario": result["scenario"],
            "code": result.get("code", "?"),
            "policy": result["policy"],
            "seed": result["seed"],
            "clean": result["clean"],
            "sim_time": result["sim_time"],
            "repair_time_mean": recovery.get("repair_time_mean", "0"),
            "repair_time_p95": recovery.get("repair_time_p95", "0"),
            "cross_rack_repair_bytes": recovery.get(
                "cross_rack_repair_bytes", "0"
            ),
            "time_at_margin_zero": recovery.get("time_at_margin_zero", "0"),
            "fingerprint": str(result["fingerprint"])[:16],
        })
    return rows
