"""Placement-policy interface and replica layout schemes.

A *replication scheme* describes how the ``r`` replicas of one block spread
over racks; a *placement policy* (RR, preliminary EAR, EAR) decides the
concrete racks and nodes.  The NameNode model
(:mod:`repro.hdfs.namenode`) records the policy's decisions in the
:class:`~repro.cluster.block.BlockStore`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId


class PlacementError(RuntimeError):
    """Raised when a policy cannot produce a valid layout."""


@dataclass(frozen=True)
class ReplicationScheme:
    """How one block's replicas spread across racks.

    Attributes:
        replicas: Total copies per block, ``r``.
        racks: Number of distinct racks the copies span.

    The first rack receives exactly one copy (the primary replica — the copy
    EAR pins to the core rack); the remaining ``r - 1`` copies are spread as
    evenly as possible over the other ``racks - 1`` racks.  HDFS's default
    3-way layout is ``ReplicationScheme(3, 2)``: one copy in the first rack,
    two copies on distinct nodes of a second rack.
    """

    replicas: int
    racks: int

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if not 1 <= self.racks <= self.replicas:
            raise ValueError(
                f"racks must lie in [1, replicas], got racks={self.racks}, "
                f"replicas={self.replicas}"
            )
        if self.replicas > 1 and self.racks < 2:
            raise ValueError("multi-replica schemes must span at least two racks")

    def rack_group_sizes(self) -> Tuple[int, ...]:
        """Copies per rack: primary rack first, then the remaining racks.

        Example:
            >>> ReplicationScheme(3, 2).rack_group_sizes()
            (1, 2)
            >>> ReplicationScheme(4, 4).rack_group_sizes()
            (1, 1, 1, 1)
        """
        if self.replicas == 1:
            return (1,)
        remaining_copies = self.replicas - 1
        remaining_racks = self.racks - 1
        base, extra = divmod(remaining_copies, remaining_racks)
        sizes = [base + 1] * extra + [base] * (remaining_racks - extra)
        return (1, *sizes)


#: HDFS's default 3-way layout: primary rack + two copies in a second rack.
TWO_RACKS = ReplicationScheme(3, 2)

#: One rack per replica (used in Experiment B.2(f)'s replica sweep).
DISTINCT_RACKS = ReplicationScheme(3, 3)


@dataclass(frozen=True)
class PlacementDecision:
    """The outcome of placing one block.

    Attributes:
        block_id: The placed block.
        node_ids: Chosen nodes; ``node_ids[0]`` holds the primary replica.
        core_rack: The stripe's core rack (EAR policies only).
        stripe_id: Stripe the block was assigned to, when known at placement
            time (EAR assigns eagerly; RR stripes are formed later by the
            RaidNode).
        attempts: Number of random layouts drawn before one satisfied the
            policy's constraints (1 for RR; Theorem 1 bounds EAR's value).
    """

    block_id: BlockId
    node_ids: Tuple[NodeId, ...]
    core_rack: Optional[RackId] = None
    stripe_id: Optional[int] = None
    attempts: int = 1


class PlacementPolicy(ABC):
    """Chooses replica locations for newly written blocks.

    Args:
        topology: The cluster to place into.
        scheme: Replica spread description (default: HDFS 3-way, two racks).
        rng: Random source; pass a seeded ``random.Random`` for
            reproducibility.
    """

    #: Short machine-readable policy name ("rr", "ear", ...).
    name = "abstract"

    def __init__(
        self,
        topology: ClusterTopology,
        scheme: ReplicationScheme = TWO_RACKS,
        rng: Optional[random.Random] = None,
    ) -> None:
        if topology.num_racks < scheme.racks:
            raise ValueError(
                f"scheme spans {scheme.racks} racks but cluster has only "
                f"{topology.num_racks}"
            )
        self.topology = topology
        self.scheme = scheme
        self.rng = rng if rng is not None else random.Random(0)

    @abstractmethod
    def place_block(
        self, block_id: BlockId, writer_node: Optional[NodeId] = None
    ) -> PlacementDecision:
        """Choose the replica nodes for a new block.

        Args:
            block_id: Identifier of the block being written.
            writer_node: Node issuing the write, when known.  HDFS places the
                first replica on the writer; policies may use this hint.

        Returns:
            The placement decision; callers record it in the block store.
        """

    # ------------------------------------------------------------------
    # Shared random-selection helpers
    # ------------------------------------------------------------------
    def _random_rack(
        self, exclude: Sequence[RackId] = (), min_nodes: int = 1
    ) -> RackId:
        """A uniformly random rack outside ``exclude`` with enough nodes.

        Heterogeneous clusters may contain racks too small to host a
        multi-copy replica group; those are never eligible for it.
        """
        excluded = set(exclude)
        candidates = [
            r
            for r in self.topology.rack_ids()
            if r not in excluded and len(self.topology.rack(r)) >= min_nodes
        ]
        if not candidates:
            raise PlacementError(
                f"no eligible rack with at least {min_nodes} node(s) remains"
            )
        return self.rng.choice(candidates)

    def _random_nodes_in_rack(
        self, rack_id: RackId, count: int, exclude: Sequence[NodeId] = ()
    ) -> List[NodeId]:
        """``count`` distinct random nodes of one rack, outside ``exclude``."""
        excluded = set(exclude)
        candidates = [
            n for n in self.topology.nodes_in_rack(rack_id) if n not in excluded
        ]
        if len(candidates) < count:
            raise PlacementError(
                f"rack {rack_id} has only {len(candidates)} eligible nodes, "
                f"need {count}"
            )
        return self.rng.sample(candidates, count)

    def _draw_layout(self, first_rack: RackId) -> List[NodeId]:
        """Draw one full random layout with the primary copy in ``first_rack``.

        Follows the scheme's rack group sizes: one copy on a random node of
        ``first_rack``; each further group lands on distinct random nodes of
        a distinct random rack.
        """
        sizes = self.scheme.rack_group_sizes()
        used_racks: List[RackId] = [first_rack]
        nodes: List[NodeId] = self._random_nodes_in_rack(first_rack, 1)
        for group_size in sizes[1:]:
            rack = self._random_rack(exclude=used_racks, min_nodes=group_size)
            used_racks.append(rack)
            nodes.extend(self._random_nodes_in_rack(rack, group_size))
        return nodes

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scheme={self.scheme})"
