"""Dinic's maximum-flow algorithm with incremental re-solving.

A from-scratch implementation used by :mod:`repro.core.flowgraph` to decide
whether a replica layout admits a maximum matching under the per-rack
capacity constraint (Section III-B).  The graphs involved are tiny (a few
dozen vertices), but the implementation is a complete, general max-flow
solver with BFS level graphs and DFS blocking flows.

Beyond the classic solve, the solver supports the *incremental* workflow of
EAR's redraw loop (Theorem 1): between attempts only the newest block's
edges change, so callers take a :meth:`Dinic.checkpoint` before adding the
candidate edges, augment from the previous residual state (``max_flow`` with
a ``limit``), and :meth:`Dinic.rollback` on rejection instead of rebuilding
and re-solving the whole graph.  Rollback is sound because a failed
augmentation attempt leaves every capacity untouched — Dinic only commits
capacity changes along complete source-to-sink paths.

Counted work (BFS level-graph builds, DFS augmentations) is reported into
:data:`repro.sim.metrics.PERF` so benchmarks and perf-regression tests can
assert on deterministic operation counts rather than wall time.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.sim.metrics import PERF


class Checkpoint(NamedTuple):
    """A restore point for :meth:`Dinic.rollback`.

    Only valid while no flow has been routed *through* edges added after the
    checkpoint (the incremental-redraw workflow guarantees this: a rejected
    attempt never changed any capacity).
    """

    num_edges: int
    num_vertices: int


class Dinic:
    """Max-flow solver on a directed graph with integer capacities.

    Vertices are arbitrary hashable labels; edges are added with
    :meth:`add_edge` and the flow is computed by :meth:`max_flow`.  After a
    solve, :meth:`flow_on` reports the flow routed over a given edge, which
    the flow-graph layer uses to extract the replica matching.

    Example:
        >>> g = Dinic()
        >>> g.add_edge("s", "a", 1)
        >>> g.add_edge("a", "t", 1)
        >>> g.max_flow("s", "t")
        1
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._labels: List[object] = []
        # Adjacency: for each vertex, list of edge ids.
        self._adj: List[List[int]] = []
        # Edge arrays: to-vertex, capacity remaining, original capacity.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._orig_cap: List[int] = []
        # Map (u, v) -> every forward edge id added, for flow_on queries.
        self._edge_ids: Dict[Tuple[object, object], List[int]] = {}
        # (u, v) key per forward edge, in insertion order, so rollback can
        # unwind _edge_ids without scanning the whole dict.
        self._edge_keys: List[Tuple[object, object]] = []

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def vertex(self, label: object) -> int:
        """Intern a vertex label, returning its internal id."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self._adj.append([])
        return self._index[label]

    def add_edge(self, u: object, v: object, capacity: int) -> None:
        """Add a directed edge ``u -> v`` with the given capacity.

        Adding the same (u, v) pair twice creates parallel edges; flow_on
        sums the flow over all of them.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self.vertex(u), self.vertex(v)
        self._edge_ids.setdefault((u, v), []).append(len(self._to))
        self._edge_keys.append((u, v))
        # Forward edge.
        self._adj[ui].append(len(self._to))
        self._to.append(vi)
        self._cap.append(capacity)
        self._orig_cap.append(capacity)
        # Residual edge.
        self._adj[vi].append(len(self._to))
        self._to.append(ui)
        self._cap.append(0)
        self._orig_cap.append(0)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices added so far."""
        return len(self._labels)

    # ------------------------------------------------------------------
    # Incremental editing
    # ------------------------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """A token that :meth:`rollback` restores the graph structure to."""
        return Checkpoint(len(self._to), len(self._labels))

    def rollback(self, token: Checkpoint) -> None:
        """Remove every edge and vertex added since ``token``.

        Raises:
            ValueError: If any edge added after the checkpoint carries flow
                (removing it would silently destroy routed flow; the caller
                should only roll back attempts whose augmentation failed).
        """
        if len(self._to) < token.num_edges or self.num_vertices < token.num_vertices:
            raise ValueError("checkpoint is newer than the current graph")
        for edge in range(token.num_edges, len(self._to), 2):
            if self._cap[edge] != self._orig_cap[edge]:
                raise ValueError(
                    "cannot roll back: an edge added after the checkpoint "
                    "carries flow"
                )
        # Edges are appended, and each vertex's adjacency list grows at its
        # tail, so removing the newest edges is popping from tails — walk
        # newest-first and each popped id must match.
        for edge in range(len(self._to) - 1, token.num_edges - 1, -1):
            owner = self._to[edge ^ 1]
            popped = self._adj[owner].pop()
            if popped != edge:
                raise AssertionError("adjacency tail does not match edge log")
        del self._to[token.num_edges:]
        del self._cap[token.num_edges:]
        del self._orig_cap[token.num_edges:]
        # Unwind the (u, v) -> edge-ids index.
        forward_kept = token.num_edges // 2
        for key in reversed(self._edge_keys[forward_kept:]):
            ids = self._edge_ids[key]
            ids.pop()
            if not ids:
                del self._edge_ids[key]
        del self._edge_keys[forward_kept:]
        # Drop vertices introduced after the checkpoint.
        for label in self._labels[token.num_vertices:]:
            del self._index[label]
        del self._labels[token.num_vertices:]
        del self._adj[token.num_vertices:]

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def max_flow(
        self, source: object, sink: object, limit: Optional[int] = None
    ) -> int:
        """Compute the maximum flow from ``source`` to ``sink``.

        Can be called repeatedly; each call continues from the current
        residual state, so calling twice without modifying the graph returns
        0 the second time.  Use a fresh instance (or :meth:`reset`) for a
        from-scratch solve.

        Args:
            source: Source vertex label.
            sink: Sink vertex label.
            limit: When given, stop as soon as this much *additional* flow
                has been routed in this call.  The incremental redraw loop
                passes 1: the structural bound (one unit per block) makes
                reaching the limit a proof of maximality, and stopping early
                skips the final no-more-paths BFS.

        Returns:
            The additional flow routed by this call.
        """
        if source not in self._index or sink not in self._index:
            return 0
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0
        while limit is None or total < limit:
            level = self._bfs_levels(s, t)
            if level is None:
                break
            iters = [0] * self.num_vertices
            while limit is None or total < limit:
                bound = float("inf") if limit is None else limit - total
                pushed = self._dfs(s, t, bound, level, iters)
                if pushed == 0:
                    break
                PERF.bump("maxflow.augmentations")
                total += pushed
        return total

    def reset(self) -> None:
        """Restore all edge capacities, discarding any routed flow."""
        self._cap = list(self._orig_cap)

    def flow_on(self, u: object, v: object) -> int:
        """Total flow routed over the edge(s) ``u -> v`` after a solve.

        Parallel (u, v) edges are summed; earlier revisions reported only
        the first one, silently under-counting parallel layouts.
        """
        edges = self._edge_ids.get((u, v))
        if edges is None:
            raise KeyError(f"no edge {u!r} -> {v!r}")
        return sum(self._orig_cap[edge] - self._cap[edge] for edge in edges)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        PERF.bump("maxflow.bfs_builds")
        level = [-1] * self.num_vertices
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                v = self._to[edge]
                if self._cap[edge] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] >= 0 else None

    def _dfs(self, u: int, t: int, limit, level: List[int], iters: List[int]) -> int:
        if u == t:
            return int(limit) if limit != float("inf") else self._huge()
        while iters[u] < len(self._adj[u]):
            edge = self._adj[u][iters[u]]
            v = self._to[edge]
            if self._cap[edge] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(
                    v, t, min(limit, self._cap[edge]), level, iters
                )
                if pushed > 0:
                    self._cap[edge] -= pushed
                    self._cap[edge ^ 1] += pushed
                    return pushed
            iters[u] += 1
        return 0

    def _huge(self) -> int:
        return sum(self._orig_cap) + 1


def bipartite_max_matching(
    left: List[object], right: List[object], edges: List[Tuple[object, object]]
) -> Dict[object, object]:
    """Maximum bipartite matching via max-flow (utility / test oracle).

    Args:
        left: Left-side vertex labels.
        right: Right-side vertex labels.
        edges: Admissible (left, right) pairs.

    Returns:
        A maximum matching as a dict ``left_label -> right_label``.
    """
    graph = Dinic()
    source, sink = ("__source__",), ("__sink__",)
    for u in left:
        graph.add_edge(source, ("L", u), 1)
    for v in right:
        graph.add_edge(("R", v), sink, 1)
    for u, v in edges:
        graph.add_edge(("L", u), ("R", v), 1)
    graph.max_flow(source, sink)
    matching: Dict[object, object] = {}
    for u, v in edges:
        if u not in matching and graph.flow_on(("L", u), ("R", v)) > 0:
            matching[u] = v
    return matching
