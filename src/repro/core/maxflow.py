"""Dinic's maximum-flow algorithm.

A from-scratch implementation used by :mod:`repro.core.flowgraph` to decide
whether a replica layout admits a maximum matching under the per-rack
capacity constraint (Section III-B).  The graphs involved are tiny (a few
dozen vertices), but the implementation is a complete, general max-flow
solver with BFS level graphs and DFS blocking flows.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple


class Dinic:
    """Max-flow solver on a directed graph with integer capacities.

    Vertices are arbitrary hashable labels; edges are added with
    :meth:`add_edge` and the flow is computed by :meth:`max_flow`.  After a
    solve, :meth:`flow_on` reports the flow routed over a given edge, which
    the flow-graph layer uses to extract the replica matching.

    Example:
        >>> g = Dinic()
        >>> g.add_edge("s", "a", 1)
        >>> g.add_edge("a", "t", 1)
        >>> g.max_flow("s", "t")
        1
    """

    def __init__(self) -> None:
        self._index: Dict[object, int] = {}
        self._labels: List[object] = []
        # Adjacency: for each vertex, list of edge ids.
        self._adj: List[List[int]] = []
        # Edge arrays: to-vertex, capacity remaining, original capacity.
        self._to: List[int] = []
        self._cap: List[int] = []
        self._orig_cap: List[int] = []
        # Map (u, v) -> first edge id added, for flow_on queries.
        self._edge_id: Dict[Tuple[object, object], int] = {}

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def vertex(self, label: object) -> int:
        """Intern a vertex label, returning its internal id."""
        if label not in self._index:
            self._index[label] = len(self._labels)
            self._labels.append(label)
            self._adj.append([])
        return self._index[label]

    def add_edge(self, u: object, v: object, capacity: int) -> None:
        """Add a directed edge ``u -> v`` with the given capacity.

        Adding the same (u, v) pair twice creates parallel edges; flow_on
        reports only the first.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        ui, vi = self.vertex(u), self.vertex(v)
        self._edge_id.setdefault((u, v), len(self._to))
        # Forward edge.
        self._adj[ui].append(len(self._to))
        self._to.append(vi)
        self._cap.append(capacity)
        self._orig_cap.append(capacity)
        # Residual edge.
        self._adj[vi].append(len(self._to))
        self._to.append(ui)
        self._cap.append(0)
        self._orig_cap.append(0)

    @property
    def num_vertices(self) -> int:
        """Number of distinct vertices added so far."""
        return len(self._labels)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def max_flow(self, source: object, sink: object) -> int:
        """Compute the maximum flow from ``source`` to ``sink``.

        Can be called repeatedly; each call continues from the current
        residual state, so calling twice without modifying the graph returns
        0 the second time.  Use a fresh instance (or :meth:`reset`) for a
        from-scratch solve.
        """
        if source not in self._index or sink not in self._index:
            return 0
        s, t = self._index[source], self._index[sink]
        if s == t:
            raise ValueError("source and sink must differ")
        total = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return total
            iters = [0] * self.num_vertices
            while True:
                pushed = self._dfs(s, t, float("inf"), level, iters)
                if pushed == 0:
                    break
                total += pushed

    def reset(self) -> None:
        """Restore all edge capacities, discarding any routed flow."""
        self._cap = list(self._orig_cap)

    def flow_on(self, u: object, v: object) -> int:
        """Flow routed over the (first) edge ``u -> v`` after a solve."""
        edge = self._edge_id.get((u, v))
        if edge is None:
            raise KeyError(f"no edge {u!r} -> {v!r}")
        return self._orig_cap[edge] - self._cap[edge]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * self.num_vertices
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._adj[u]:
                v = self._to[edge]
                if self._cap[edge] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[t] >= 0 else None

    def _dfs(self, u: int, t: int, limit, level: List[int], iters: List[int]) -> int:
        if u == t:
            return int(limit) if limit != float("inf") else self._huge()
        while iters[u] < len(self._adj[u]):
            edge = self._adj[u][iters[u]]
            v = self._to[edge]
            if self._cap[edge] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs(
                    v, t, min(limit, self._cap[edge]), level, iters
                )
                if pushed > 0:
                    self._cap[edge] -= pushed
                    self._cap[edge ^ 1] += pushed
                    return pushed
            iters[u] += 1
        return 0

    def _huge(self) -> int:
        return sum(self._orig_cap) + 1


def bipartite_max_matching(
    left: List[object], right: List[object], edges: List[Tuple[object, object]]
) -> Dict[object, object]:
    """Maximum bipartite matching via max-flow (utility / test oracle).

    Args:
        left: Left-side vertex labels.
        right: Right-side vertex labels.
        edges: Admissible (left, right) pairs.

    Returns:
        A maximum matching as a dict ``left_label -> right_label``.
    """
    graph = Dinic()
    source, sink = ("__source__",), ("__sink__",)
    for u in left:
        graph.add_edge(source, ("L", u), 1)
    for v in right:
        graph.add_edge(("R", v), sink, 1)
    for u, v in edges:
        graph.add_edge(("L", u), ("R", v), 1)
    graph.max_flow(source, sink)
    matching: Dict[object, object] = {}
    for u, v in edges:
        if u not in matching and graph.flow_on(("L", u), ("R", v)) > 0:
            matching[u] = v
    return matching
