"""Encoding-side placement: encoder choice, replica retention, parity layout.

For a sealed stripe, the encoding operation (Section II-A) is:

1. an encoder node downloads one replica of each of the ``k`` data blocks;
2. it computes and uploads the ``n - k`` parity blocks;
3. one replica of each data block is retained, the rest deleted.

This module plans all three for both policies and reports the resulting
cross-rack traffic, which is what the simulator charges to the network.

* Under **EAR** the encoder lives in the core rack (zero cross-rack
  downloads) and the retention plan comes from the Figure 4 flow graph, so
  rack-level fault tolerance holds with no relocation.  When ``c > 1`` the
  planner reserves up to ``c - 1`` core-rack slots for parity blocks, which
  converts that many cross-rack parity uploads into intra-rack ones — the
  effect behind Figure 13(e).
* Under **RR** the encoder is a random node; the planner retains replicas as
  favourably as possible (smallest feasible per-rack concentration) and
  spreads parity over unused racks, but the layout may still violate the
  rack fault-tolerance requirement — those stripes are later repaired by the
  :mod:`repro.core.relocation` machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.flowgraph import StripeFlowGraph
from repro.core.policy import PlacementError
from repro.core.stripe import Stripe
from repro.erasure.codec import CodeParams
from repro.sim.netsim import SourceUnavailable

#: Filter deciding whether one replica may serve as a download source
#: (used by retrying pipelines to skip down or corrupted copies).
SourceFilter = Callable[[BlockId, NodeId], bool]


@dataclass(frozen=True)
class EncodingPlan:
    """Complete plan for encoding one stripe.

    Attributes:
        stripe_id: The stripe being encoded.
        encoder_node: Node performing the encoding map task.
        retained: Data block -> node of its surviving replica.
        parity_nodes: One node per parity block, in stripe order.
        cross_rack_downloads: Data blocks fetched across racks (step 1).
        cross_rack_uploads: Parity blocks written across racks (step 2).
    """

    stripe_id: int
    encoder_node: NodeId
    retained: Dict[BlockId, NodeId]
    parity_nodes: Tuple[NodeId, ...]
    cross_rack_downloads: int
    cross_rack_uploads: int

    def all_nodes(self) -> List[NodeId]:
        """Nodes of the post-encoding stripe: retained data then parity."""
        return list(self.retained.values()) + list(self.parity_nodes)


def _download_sources(
    topology: ClusterTopology,
    block_store: BlockStore,
    stripe: Stripe,
    encoder_node: NodeId,
    source_ok: Optional[SourceFilter] = None,
) -> Dict[BlockId, NodeId]:
    """Choose where the encoder fetches each data block from.

    Prefers a copy on the encoder itself, then one in the encoder's rack,
    then any copy (a cross-rack download).  ``source_ok`` vetoes individual
    replicas (down endpoints, corrupted copies).

    Raises:
        PlacementError: When a block has no replicas at all (data loss).
        SourceUnavailable: When replicas exist but every one is vetoed —
            a transient condition retry loops are expected to outwait.
    """
    encoder_rack = topology.rack_of(encoder_node)
    sources: Dict[BlockId, NodeId] = {}
    for block_id in stripe.block_ids:
        nodes = block_store.replica_nodes(block_id)
        if not nodes:
            raise PlacementError(f"block {block_id} has no replicas to encode from")
        if source_ok is not None:
            usable = [n for n in nodes if source_ok(block_id, n)]
            if not usable:
                raise SourceUnavailable(nodes[0], encoder_node, nodes[0])
            nodes = tuple(usable)
        local = [n for n in nodes if n == encoder_node]
        same_rack = [n for n in nodes if topology.rack_of(n) == encoder_rack]
        sources[block_id] = (local or same_rack or list(nodes))[0]
    return sources


def download_plan(
    topology: ClusterTopology,
    block_store: BlockStore,
    stripe: Stripe,
    encoder_node: NodeId,
    source_ok: Optional[SourceFilter] = None,
) -> Dict[BlockId, NodeId]:
    """Public wrapper: block -> node the encoder downloads it from."""
    return _download_sources(
        topology, block_store, stripe, encoder_node, source_ok=source_ok
    )


def count_cross_rack_downloads(
    topology: ClusterTopology, sources: Dict[BlockId, NodeId], encoder_node: NodeId
) -> int:
    """Data blocks whose chosen source sits in another rack."""
    encoder_rack = topology.rack_of(encoder_node)
    return sum(
        1 for node in sources.values() if topology.rack_of(node) != encoder_rack
    )


# ----------------------------------------------------------------------
# EAR planning
# ----------------------------------------------------------------------
def plan_ear_encoding(
    topology: ClusterTopology,
    block_store: BlockStore,
    stripe: Stripe,
    code: CodeParams,
    c: int = 1,
    rng: Optional[random.Random] = None,
    reserve_core_for_parity: bool = True,
    encoder_node: Optional[NodeId] = None,
    allow_foreign_encoder: bool = False,
) -> EncodingPlan:
    """Plan encoding for an EAR-placed stripe.

    Args:
        topology: Cluster layout.
        block_store: Current replica locations.
        stripe: A sealed stripe with a core rack (and optional target racks).
        code: The ``(n, k)`` code.
        c: Per-rack block cap of the stripe after encoding.
        rng: Random source for node choices.
        reserve_core_for_parity: When True and ``c > 1``, try to keep up to
            ``min(c - 1, n - k)`` parity blocks in the core rack, turning
            those uploads intra-rack.  Falls back to smaller reservations
            (down to zero) whenever the retention matching would otherwise
            not exist.
        encoder_node: The node running the encoding map task; a random node
            of the core rack when omitted.  Must belong to the core rack —
            the paper's third HDFS modification pins encode maps there.
        allow_foreign_encoder: Permit an encoder outside the core rack (it
            then pays cross-rack downloads).  Exists for the pinning
            ablation; the paper's EAR never does this.

    Returns:
        The encoding plan.  ``cross_rack_downloads`` is always 0 by
        construction (the EAR guarantee).

    Raises:
        PlacementError: If no retention plan exists even with no
            reservation — i.e. the stripe was not EAR-placed.
    """
    rng = rng if rng is not None else random.Random(0)
    if stripe.core_rack is None:
        raise PlacementError("EAR encoding requires a stripe with a core rack")
    layout = {bid: block_store.replica_nodes(bid) for bid in stripe.block_ids}

    max_reserve = min(c - 1, code.num_parity) if reserve_core_for_parity else 0
    matching: Optional[Dict[BlockId, NodeId]] = None
    degraded = False
    reserve = 0
    for reserve in range(max_reserve, -1, -1):
        graph = StripeFlowGraph(
            topology,
            c,
            stripe.target_racks,
            capacity_overrides={stripe.core_rack: c - reserve},
        )
        matching = graph.find_matching(layout)
        if matching is not None:
            break
    if matching is None:
        # EAR placement guarantees a matching exists — unless failures have
        # since removed replicas.  Degrade to best-effort retention (like
        # RR): match what the flow allows, keep arbitrary survivors for the
        # rest, and let the PlacementMonitor flag any violation.
        degraded = True
        matching = StripeFlowGraph(topology, c).find_partial_matching(layout)
        for block_id, nodes in layout.items():
            if block_id in matching:
                continue
            if not nodes:
                raise PlacementError(
                    f"block {block_id} of stripe {stripe.stripe_id} has no "
                    "replicas left to encode from"
                )
            matching[block_id] = rng.choice(list(nodes))

    if encoder_node is None:
        encoder_node = rng.choice(list(topology.nodes_in_rack(stripe.core_rack)))
    elif (
        topology.rack_of(encoder_node) != stripe.core_rack
        and not allow_foreign_encoder
    ):
        raise PlacementError(
            f"encoder node {encoder_node} is outside core rack "
            f"{stripe.core_rack}"
        )
    sources = _download_sources(topology, block_store, stripe, encoder_node)
    downloads = count_cross_rack_downloads(topology, sources, encoder_node)

    parity_nodes = _place_parity(
        topology=topology,
        stripe=stripe,
        code=code,
        c=c,
        retained=matching,
        rng=rng,
        prefer_racks=[stripe.core_rack],
        admissible_racks=stripe.target_racks if not degraded else None,
        allow_overflow=degraded,
    )
    encoder_rack = topology.rack_of(encoder_node)
    uploads = sum(
        1 for node in parity_nodes if topology.rack_of(node) != encoder_rack
    )
    return EncodingPlan(
        stripe_id=stripe.stripe_id,
        encoder_node=encoder_node,
        retained=matching,
        parity_nodes=tuple(parity_nodes),
        cross_rack_downloads=downloads,
        cross_rack_uploads=uploads,
    )


# ----------------------------------------------------------------------
# RR planning
# ----------------------------------------------------------------------
def plan_rr_encoding(
    topology: ClusterTopology,
    block_store: BlockStore,
    stripe: Stripe,
    code: CodeParams,
    rng: Optional[random.Random] = None,
    encoder_node: Optional[NodeId] = None,
) -> EncodingPlan:
    """Plan encoding for an RR-placed stripe.

    The encoder is a uniformly random node (Section II-A: "The CFS randomly
    selects a node to perform the encoding operation").  Retention aims for
    the *most spread* feasible plan: the planner finds the smallest per-rack
    cap ``c*`` for which a matching exists and uses that matching, which is
    the most favourable treatment RR can receive (the paper's example shows
    even the best retention can violate fault tolerance).  Parity blocks go
    to randomly chosen racks not yet holding stripe blocks, falling back to
    least-loaded racks when fewer than ``n - k`` empty racks remain.
    """
    rng = rng if rng is not None else random.Random(0)
    layout = {bid: block_store.replica_nodes(bid) for bid in stripe.block_ids}
    if encoder_node is None:
        encoder_node = rng.randrange(topology.num_nodes)

    matching: Optional[Dict[BlockId, NodeId]] = None
    for cap in range(1, len(layout) + 1):
        graph = StripeFlowGraph(topology, cap)
        matching = graph.find_matching(layout)
        if matching is not None:
            break
    if matching is None:
        # Even ignoring racks, the blocks cannot occupy distinct nodes (RR
        # gives no such guarantee).  Retain what a maximum matching can and
        # fall back to arbitrary replicas for the rest — real HDFS keeps the
        # data regardless and lets the PlacementMonitor flag the stripe.
        matching = StripeFlowGraph(topology, len(layout)).find_partial_matching(
            layout
        )
        for block_id, nodes in layout.items():
            if block_id in matching:
                continue
            if not nodes:
                raise PlacementError(
                    f"block {block_id} of stripe {stripe.stripe_id} has no "
                    "replicas"
                )
            matching[block_id] = rng.choice(list(nodes))

    sources = _download_sources(topology, block_store, stripe, encoder_node)
    downloads = count_cross_rack_downloads(topology, sources, encoder_node)

    parity_nodes = _place_parity(
        topology=topology,
        stripe=stripe,
        code=code,
        c=1,
        retained=matching,
        rng=rng,
        prefer_racks=[],
        admissible_racks=None,
        allow_overflow=True,
    )
    encoder_rack = topology.rack_of(encoder_node)
    uploads = sum(
        1 for node in parity_nodes if topology.rack_of(node) != encoder_rack
    )
    return EncodingPlan(
        stripe_id=stripe.stripe_id,
        encoder_node=encoder_node,
        retained=matching,
        parity_nodes=tuple(parity_nodes),
        cross_rack_downloads=downloads,
        cross_rack_uploads=uploads,
    )


# ----------------------------------------------------------------------
# Shared parity placement
# ----------------------------------------------------------------------
def _place_parity(
    topology: ClusterTopology,
    stripe: Stripe,
    code: CodeParams,
    c: int,
    retained: Dict[BlockId, NodeId],
    rng: random.Random,
    prefer_racks: Sequence[RackId],
    admissible_racks: Optional[Sequence[RackId]],
    allow_overflow: bool = False,
) -> List[NodeId]:
    """Choose one node per parity block.

    Preference order: ``prefer_racks`` first (the EAR core rack), then racks
    already below the cap, chosen uniformly at random.  All chosen nodes are
    distinct from each other and from the retained data nodes (the stripe
    must occupy ``n`` distinct nodes for node-level fault tolerance).

    Args:
        allow_overflow: When True (RR), racks above the cap may be used once
            no compliant rack remains — RR has no feasibility guarantee and
            relocation will repair the stripe later.

    Raises:
        PlacementError: When no compliant rack remains and overflow is not
            allowed.
    """
    usage: Dict[RackId, int] = {}
    for node in retained.values():
        rack = topology.rack_of(node)
        usage[rack] = usage.get(rack, 0) + 1
    used_nodes: Set[NodeId] = set(retained.values())

    if admissible_racks is None:
        admissible = list(topology.rack_ids())
    else:
        admissible = list(admissible_racks)

    chosen: List[NodeId] = []
    for __ in range(code.num_parity):
        rack = _pick_parity_rack(
            topology, admissible, usage, c, prefer_racks, used_nodes, rng,
            allow_overflow,
        )
        candidates = [
            n for n in topology.nodes_in_rack(rack) if n not in used_nodes
        ]
        node = rng.choice(candidates)
        used_nodes.add(node)
        usage[rack] = usage.get(rack, 0) + 1
        chosen.append(node)
    return chosen


class EncodingPlanner:
    """Policy-agnostic interface for producing :class:`EncodingPlan` objects.

    Subclasses bind the policy-specific planning function with its
    parameters so the encoding pipeline (map tasks, encoding processes) can
    plan stripes uniformly.
    """

    def plan(
        self,
        stripe: Stripe,
        encoder_node: Optional[NodeId] = None,
        allow_foreign_encoder: Optional[bool] = None,
    ) -> EncodingPlan:
        """Plan one sealed stripe; ``encoder_node`` pins the map's node.

        ``allow_foreign_encoder`` overrides the planner's default for this
        one stripe — graceful degradation uses it to accept a cross-rack
        encoder when an EAR stripe's core rack is entirely down.
        """
        raise NotImplementedError

    def pick_encoder_node(self, stripe: Stripe) -> NodeId:
        """Choose the node that should encode the stripe."""
        raise NotImplementedError

    def eligible_encoder_nodes(self, stripe: Stripe) -> List[NodeId]:
        """Nodes allowed to run the stripe's encoding map task."""
        raise NotImplementedError


class EARPlanner(EncodingPlanner):
    """Planner for EAR-placed stripes (core-rack encoders, flow matching)."""

    def __init__(
        self,
        topology: ClusterTopology,
        block_store: BlockStore,
        code: CodeParams,
        c: int = 1,
        rng: Optional[random.Random] = None,
        reserve_core_for_parity: bool = True,
        allow_foreign_encoder: bool = False,
    ) -> None:
        self.topology = topology
        self.block_store = block_store
        self.code = code
        self.c = c
        self.rng = rng if rng is not None else random.Random(0)
        self.reserve_core_for_parity = reserve_core_for_parity
        self.allow_foreign_encoder = allow_foreign_encoder

    def plan(
        self,
        stripe: Stripe,
        encoder_node: Optional[NodeId] = None,
        allow_foreign_encoder: Optional[bool] = None,
    ) -> EncodingPlan:
        if allow_foreign_encoder is None:
            allow_foreign_encoder = self.allow_foreign_encoder
        return plan_ear_encoding(
            self.topology,
            self.block_store,
            stripe,
            self.code,
            c=self.c,
            rng=self.rng,
            reserve_core_for_parity=self.reserve_core_for_parity,
            encoder_node=encoder_node,
            allow_foreign_encoder=allow_foreign_encoder,
        )

    def pick_encoder_node(self, stripe: Stripe) -> NodeId:
        if stripe.core_rack is None:
            raise PlacementError("EAR stripes carry a core rack")
        return self.rng.choice(list(self.topology.nodes_in_rack(stripe.core_rack)))

    def eligible_encoder_nodes(self, stripe: Stripe) -> List[NodeId]:
        if stripe.core_rack is None:
            raise PlacementError("EAR stripes carry a core rack")
        return list(self.topology.nodes_in_rack(stripe.core_rack))


class RRPlanner(EncodingPlanner):
    """Planner for RR-placed stripes (random encoders, best-effort spread)."""

    def __init__(
        self,
        topology: ClusterTopology,
        block_store: BlockStore,
        code: CodeParams,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.topology = topology
        self.block_store = block_store
        self.code = code
        self.rng = rng if rng is not None else random.Random(0)

    def plan(
        self,
        stripe: Stripe,
        encoder_node: Optional[NodeId] = None,
        allow_foreign_encoder: Optional[bool] = None,
    ) -> EncodingPlan:
        # RR encoders are random nodes already; "foreign" is meaningless.
        return plan_rr_encoding(
            self.topology,
            self.block_store,
            stripe,
            self.code,
            rng=self.rng,
            encoder_node=encoder_node,
        )

    def pick_encoder_node(self, stripe: Stripe) -> NodeId:
        return self.rng.randrange(self.topology.num_nodes)

    def eligible_encoder_nodes(self, stripe: Stripe) -> List[NodeId]:
        return list(self.topology.node_ids())


def _pick_parity_rack(
    topology: ClusterTopology,
    admissible: Sequence[RackId],
    usage: Dict[RackId, int],
    c: int,
    prefer_racks: Sequence[RackId],
    used_nodes: Set[NodeId],
    rng: random.Random,
    allow_overflow: bool,
) -> RackId:
    def has_free_node(rack: RackId) -> bool:
        return any(n not in used_nodes for n in topology.nodes_in_rack(rack))

    for rack in prefer_racks:
        if rack in admissible and usage.get(rack, 0) < c and has_free_node(rack):
            return rack
    compliant = [
        r for r in admissible if usage.get(r, 0) < c and has_free_node(r)
    ]
    if compliant:
        # Among compliant racks prefer entirely empty ones: this is the
        # paper's "put n-k parity blocks in n-k other racks" behaviour at
        # c = 1 and keeps the stripe's rack count minimal otherwise.
        empty = [r for r in compliant if usage.get(r, 0) == 0]
        return rng.choice(empty or compliant)
    if allow_overflow:
        overflow = [r for r in admissible if has_free_node(r)]
        if overflow:
            least = min(usage.get(r, 0) for r in overflow)
            return rng.choice([r for r in overflow if usage.get(r, 0) == least])
    raise PlacementError("no rack can accept another parity block")
