"""Placement core: the paper's primary contribution.

* :mod:`repro.core.maxflow` — Dinic's max-flow algorithm (from scratch).
* :mod:`repro.core.flowgraph` — the block/node/rack flow graph of Figure 4,
  used to test whether a replica layout admits a post-encoding placement
  that satisfies rack-level fault tolerance (max matching with at most ``c``
  stripe blocks per rack).
* :mod:`repro.core.policy` — the ``PlacementPolicy`` interface and the
  replication scheme descriptions (HDFS default two-rack layout, one rack
  per replica, ...).
* :mod:`repro.core.random_replication` — random replication (RR), HDFS's
  default policy and the paper's baseline.
* :mod:`repro.core.preliminary` — the preliminary EAR of Section III-A
  (core rack only, no availability validation); exists to reproduce the
  Figure 3 violation analysis.
* :mod:`repro.core.ear` — complete encoding-aware replication (EAR) with
  flow-graph validation, parameter ``c``, and target racks.
* :mod:`repro.core.stripe` — stripe bookkeeping and the pre-encoding store.
* :mod:`repro.core.parity` — parity block placement after encoding.
* :mod:`repro.core.relocation` — PlacementMonitor / BlockMover equivalents.
"""

from repro.core.ear import EncodingAwareReplication
from repro.core.flowgraph import StripeFlowGraph
from repro.core.maxflow import Dinic
from repro.core.policy import (
    PlacementPolicy,
    ReplicationScheme,
    TWO_RACKS,
    DISTINCT_RACKS,
)
from repro.core.preliminary import PreliminaryEAR
from repro.core.random_replication import RandomReplication
from repro.core.relocation import BlockMover, PlacementMonitor, RelocationPlan
from repro.core.stripe import PreEncodingStore, Stripe, StripeState

__all__ = [
    "BlockMover",
    "Dinic",
    "DISTINCT_RACKS",
    "EncodingAwareReplication",
    "PlacementMonitor",
    "PlacementPolicy",
    "PreEncodingStore",
    "PreliminaryEAR",
    "RandomReplication",
    "RelocationPlan",
    "ReplicationScheme",
    "Stripe",
    "StripeFlowGraph",
    "StripeState",
    "TWO_RACKS",
]
