"""Encoding-aware replication (EAR) — the paper's primary contribution.

EAR jointly places the replicas of the ``k`` data blocks of each future
stripe (Section III):

1. The primary replica of every block lands in the stripe's *core rack*, so
   an encoder running there performs zero cross-rack downloads.
2. The remaining replicas are drawn randomly (as RR would draw them), but a
   layout for the ``i``-th block is accepted only if the stripe's flow graph
   (Figure 4) then has max flow ``i`` — guaranteeing that after encoding a
   retention plan exists with at most ``c`` blocks per rack, i.e. rack-level
   fault tolerance holds without relocation.  Theorem 1 bounds the expected
   number of redraws.
3. Optionally (Section III-D), a stripe is confined to ``R'`` *target racks*
   (``R' >= ceil(n / c)``) to trade rack-failure tolerance for lower
   cross-rack recovery traffic.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.cluster.block import BlockId
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.flowgraph import StripeFlowGraph, StripeFlowSession
from repro.sim.metrics import PERF
from repro.core.policy import (
    PlacementDecision,
    PlacementError,
    PlacementPolicy,
    ReplicationScheme,
    TWO_RACKS,
)
from repro.core.stripe import PreEncodingStore, Stripe
from repro.erasure.codec import CodeParams

#: Default bound on layout redraws for one block.  Theorem 1 shows the
#: expected number is tiny (< 2 in the paper's configurations); the cap only
#: guards against misconfiguration.
DEFAULT_MAX_ATTEMPTS = 10_000


class EncodingAwareReplication(PlacementPolicy):
    """Complete EAR (Sections III-A through III-D).

    Args:
        topology: The cluster to place into.
        code: The ``(n, k)`` erasure code the stripes will be encoded with.
        scheme: Replica spread per block (default HDFS 3-way / two racks).
        rng: Seeded random source.
        store: Pre-encoding store to fill; created internally when omitted.
        c: Maximum blocks of one stripe per rack after encoding.  The stripe
            then tolerates ``floor((n - k) / c)`` rack failures.
        num_target_racks: When set, each stripe is confined to this many
            racks (core rack included); must be at least ``ceil(n / c)``.
        max_attempts: Safety cap on layout redraws per block.
        bias_target_racks: When True and target racks are in use, draw the
            non-primary replicas from the target racks directly instead of
            redrawing cluster-wide until one lands there.  Placement is then
            no longer uniform over all racks (an efficiency ablation; the
            faithful default is False).
        reserve_core_for_parity: When True and ``c > 1``, the placement flow
            graph caps the core rack at ``c - min(c - 1, n - k)`` data
            blocks, reserving the remainder for parity blocks at encoding
            time.  Keeping parity in the core rack turns those uploads
            intra-rack — the "keep more data/parity blocks in one rack"
            behaviour behind Figure 13(e).  No effect at ``c = 1``.
        use_incremental: When True (the default) each stripe keeps one
            incremental :class:`StripeFlowSession` alive across every
            redraw, augmenting the previous max-flow solution instead of
            rebuilding and re-solving the whole graph per attempt.  The
            accept/reject decisions — and therefore the placements for a
            given seed — are identical either way; only the counted work
            differs.  False restores the from-scratch solve (kept as the
            differential-test oracle).

    Example:
        >>> topo = ClusterTopology.large_scale()
        >>> ear = EncodingAwareReplication(topo, CodeParams(14, 10),
        ...                                rng=random.Random(7))
        >>> decision = ear.place_block(block_id=0)
        >>> len(decision.node_ids)
        3
    """

    name = "ear"

    def __init__(
        self,
        topology: ClusterTopology,
        code: CodeParams,
        scheme: ReplicationScheme = TWO_RACKS,
        rng: Optional[random.Random] = None,
        store: Optional[PreEncodingStore] = None,
        c: int = 1,
        num_target_racks: Optional[int] = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        bias_target_racks: bool = False,
        reserve_core_for_parity: bool = True,
        use_incremental: bool = True,
    ) -> None:
        super().__init__(topology, scheme, rng)
        if c <= 0:
            raise ValueError("c must be positive")
        min_racks = code.min_racks(c)
        if num_target_racks is not None:
            if num_target_racks < min_racks:
                raise ValueError(
                    f"num_target_racks={num_target_racks} cannot hold a stripe "
                    f"of n={code.n} blocks with c={c}; need at least {min_racks}"
                )
            if num_target_racks > topology.num_racks:
                raise ValueError("num_target_racks exceeds the cluster's racks")
        elif topology.num_racks < min_racks:
            raise ValueError(
                f"R={topology.num_racks} racks cannot hold a stripe of "
                f"n={code.n} blocks with c={c}; need R >= {min_racks}"
            )
        if max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        self.code = code
        self.c = c
        self.num_target_racks = num_target_racks
        self.max_attempts = max_attempts
        self.bias_target_racks = bias_target_racks
        self.core_reserve = (
            min(c - 1, code.num_parity) if reserve_core_for_parity else 0
        )
        # The admissible racks must still hold all k data blocks with the
        # core rack partially reserved for parity.
        admissible = (
            num_target_racks if num_target_racks is not None
            else topology.num_racks
        )
        data_capacity = (c - self.core_reserve) + (admissible - 1) * c
        if data_capacity < code.k:
            raise ValueError(
                f"{admissible} admissible racks at c={c} (core reserved down "
                f"to {c - self.core_reserve}) cannot hold k={code.k} data "
                "blocks"
            )
        self.store = store if store is not None else PreEncodingStore(code.k)
        if self.store.k != code.k:
            raise ValueError("store's k disagrees with the code's k")

        self.use_incremental = use_incremental
        self._open_by_rack: Dict[RackId, int] = {}
        self._sessions: Dict[int, StripeFlowSession] = {}
        self._layouts: Dict[int, Dict[BlockId, List[NodeId]]] = defaultdict(dict)
        # attempts[i] collects the redraw counts observed for the i-th block
        # of a stripe (1-indexed), for validating Theorem 1.
        self._attempts_by_index: Dict[int, List[int]] = defaultdict(list)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def place_block(
        self, block_id: BlockId, writer_node: Optional[NodeId] = None
    ) -> PlacementDecision:
        """Place one block, redrawing until the flow-graph constraint holds.

        Raises:
            PlacementError: If no qualifying layout is found within
                ``max_attempts`` redraws (indicates a misconfigured cluster,
                e.g. too few racks for the chosen ``c``).
        """
        if writer_node is not None:
            core_rack = self.topology.rack_of(writer_node)
        else:
            core_rack = self._random_rack()
        stripe = self._open_stripe_for(core_rack)
        layout = self._layouts[stripe.stripe_id]
        index = len(stripe.block_ids) + 1  # this block is the i-th of its stripe
        session: Optional[StripeFlowSession] = None
        flow_graph: Optional[StripeFlowGraph] = None
        if self.use_incremental:
            session = self._sessions.get(stripe.stripe_id)
            if session is None:
                session = self.flow_graph_for(stripe).session()
                self._sessions[stripe.stripe_id] = session
        else:
            flow_graph = self.flow_graph_for(stripe)

        for attempt in range(1, self.max_attempts + 1):
            node_ids = self._draw_candidate(core_rack, stripe)
            PERF.bump("ear.redraw_attempts")
            if session is not None:
                if session.try_place(block_id, node_ids):
                    break
            else:
                candidate = dict(layout)
                candidate[block_id] = node_ids
                if flow_graph.max_matching_size(candidate) == index:
                    break
        else:
            raise PlacementError(
                f"no qualifying layout for block {block_id} (stripe "
                f"{stripe.stripe_id}, index {index}) within "
                f"{self.max_attempts} attempts"
            )

        layout[block_id] = node_ids
        self._attempts_by_index[index].append(attempt)
        self.store.add_block(stripe.stripe_id, block_id)
        if stripe.is_full():
            del self._open_by_rack[core_rack]
            self._sessions.pop(stripe.stripe_id, None)
        return PlacementDecision(
            block_id=block_id,
            node_ids=tuple(node_ids),
            core_rack=core_rack,
            stripe_id=stripe.stripe_id,
            attempts=attempt,
        )

    # ------------------------------------------------------------------
    # Introspection used by the encoding pipeline and analyses
    # ------------------------------------------------------------------
    def stripe_layout(self, stripe: Stripe) -> Dict[BlockId, List[NodeId]]:
        """Replica layout (block -> nodes) recorded for a stripe."""
        return {
            bid: list(nodes)
            for bid, nodes in self._layouts[stripe.stripe_id].items()
        }

    def flow_graph_for(self, stripe: Stripe) -> StripeFlowGraph:
        """The flow graph (with this policy's ``c``, the stripe's targets,
        and the core rack's parity reservation)."""
        overrides = (
            {stripe.core_rack: self.c - self.core_reserve}
            if self.core_reserve and stripe.core_rack is not None
            else None
        )
        return StripeFlowGraph(
            self.topology, self.c, stripe.target_racks,
            capacity_overrides=overrides,
        )

    def retention_plan(self, stripe: Stripe) -> Dict[BlockId, NodeId]:
        """Which replica of each data block survives encoding.

        The plan always exists for EAR-placed stripes because every accepted
        layout kept the max flow equal to the block count.
        """
        matching = self.flow_graph_for(stripe).find_matching(
            self._layouts[stripe.stripe_id]
        )
        if matching is None:
            raise PlacementError(
                f"stripe {stripe.stripe_id} has no retention plan; "
                "its layout was not produced by this policy"
            )
        return matching

    def attempts_by_index(self) -> Dict[int, List[int]]:
        """Observed redraw counts per block index (Theorem 1 validation)."""
        return {i: list(v) for i, v in self._attempts_by_index.items()}

    def mean_attempts(self, index: int) -> float:
        """Mean observed redraws for the ``index``-th block of a stripe."""
        values = self._attempts_by_index.get(index)
        if not values:
            raise KeyError(f"no placements recorded for block index {index}")
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open_stripe_for(self, core_rack: RackId) -> Stripe:
        stripe_id = self._open_by_rack.get(core_rack)
        if stripe_id is not None:
            return self.store.stripe(stripe_id)
        target_racks = self._choose_target_racks(core_rack)
        stripe = self.store.new_stripe(core_rack=core_rack, target_racks=target_racks)
        self._open_by_rack[core_rack] = stripe.stripe_id
        return stripe

    def _choose_target_racks(
        self, core_rack: RackId
    ) -> Optional[Tuple[RackId, ...]]:
        if self.num_target_racks is None:
            return None
        others = [r for r in self.topology.rack_ids() if r != core_rack]
        chosen = self.rng.sample(others, self.num_target_racks - 1)
        return tuple(sorted([core_rack, *chosen]))

    def _draw_candidate(self, core_rack: RackId, stripe: Stripe) -> List[NodeId]:
        if not self.bias_target_racks or stripe.target_racks is None:
            return self._draw_layout(core_rack)
        # Biased variant: pick the non-primary racks among the targets only.
        sizes = self.scheme.rack_group_sizes()
        used: List[RackId] = [core_rack]
        nodes = self._random_nodes_in_rack(core_rack, 1)
        candidates = [r for r in stripe.target_racks if r != core_rack]
        for group_size in sizes[1:]:
            remaining = [
                r
                for r in candidates
                if r not in used and len(self.topology.rack(r)) >= group_size
            ]
            if not remaining:
                raise PlacementError("too few target racks for the scheme")
            rack = self.rng.choice(remaining)
            used.append(rack)
            nodes.extend(self._random_nodes_in_rack(rack, group_size))
        return nodes
