"""Stripe bookkeeping and the pre-encoding store.

The paper's HDFS integration adds a *pre-encoding store* to the NameNode
(Section IV-B) that keeps, for each future stripe, the list of data block
identifiers that will be encoded together.  EAR fills it eagerly (a stripe is
sealed when its core rack accumulates ``k`` data blocks); under RR the
RaidNode simply groups every ``k`` data blocks in metadata order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.block import BlockId
from repro.cluster.topology import RackId
from repro.journal.records import NewStripe, SealStripe, StripeAddBlock


class StripeState:
    """Lifecycle of a stripe."""

    OPEN = "open"          # still accumulating data blocks
    SEALED = "sealed"      # k data blocks collected, eligible for encoding
    ENCODED = "encoded"    # parity written, redundant replicas deleted


@dataclass
class Stripe:
    """A group of ``k`` data blocks that are (or will be) encoded together.

    Attributes:
        stripe_id: Unique identifier.
        k: Data blocks per stripe.
        block_ids: The data blocks collected so far, in arrival order.
        core_rack: The rack holding one replica of every data block (EAR);
            ``None`` under RR.
        target_racks: Racks the post-encoding stripe must stay within
            (Section III-D), or ``None`` when every rack is admissible.
        state: One of :class:`StripeState`.
        parity_block_ids: Parity blocks, populated once encoded.
    """

    stripe_id: int
    k: int
    block_ids: List[BlockId] = field(default_factory=list)
    core_rack: Optional[RackId] = None
    target_racks: Optional[Tuple[RackId, ...]] = None
    state: str = StripeState.OPEN
    parity_block_ids: List[BlockId] = field(default_factory=list)

    def is_full(self) -> bool:
        """True when the stripe holds ``k`` data blocks."""
        return len(self.block_ids) >= self.k

    def add_block(self, block_id: BlockId) -> None:
        """Append a data block to an open stripe.

        Raises:
            ValueError: If the stripe is not open or already full.
        """
        if self.state != StripeState.OPEN:
            raise ValueError(f"stripe {self.stripe_id} is {self.state}, not open")
        if self.is_full():
            raise ValueError(f"stripe {self.stripe_id} already holds k={self.k} blocks")
        if block_id in self.block_ids:
            raise ValueError(f"block {block_id} already in stripe {self.stripe_id}")
        self.block_ids.append(block_id)

    def seal(self) -> None:
        """Mark the stripe eligible for encoding.

        Raises:
            ValueError: Unless the stripe is open and holds exactly k blocks.
        """
        if self.state != StripeState.OPEN:
            raise ValueError(f"stripe {self.stripe_id} is {self.state}, not open")
        if len(self.block_ids) != self.k:
            raise ValueError(
                f"stripe {self.stripe_id} holds {len(self.block_ids)} blocks, "
                f"needs exactly k={self.k} to seal"
            )
        self.state = StripeState.SEALED

    def mark_encoded(self, parity_block_ids: Sequence[BlockId]) -> None:
        """Record the parity blocks and flip the stripe to encoded."""
        if self.state != StripeState.SEALED:
            raise ValueError(f"stripe {self.stripe_id} is {self.state}, not sealed")
        self.parity_block_ids = list(parity_block_ids)
        self.state = StripeState.ENCODED

    def all_block_ids(self) -> List[BlockId]:
        """Data blocks followed by parity blocks (stripe order)."""
        return list(self.block_ids) + list(self.parity_block_ids)


class PreEncodingStore:
    """NameNode-side registry of stripes awaiting (or past) encoding.

    Args:
        k: Data blocks per stripe.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k
        self.journal = None
        self._stripes: Dict[int, Stripe] = {}
        self._next_id = 0
        self._block_to_stripe: Dict[BlockId, int] = {}

    # ------------------------------------------------------------------
    @property
    def next_stripe_id(self) -> int:
        """The id the next opened stripe will receive."""
        return self._next_id

    def new_stripe(
        self,
        core_rack: Optional[RackId] = None,
        target_racks: Optional[Sequence[RackId]] = None,
    ) -> Stripe:
        """Open a fresh stripe."""
        stripe = Stripe(
            stripe_id=self._next_id,
            k=self.k,
            core_rack=core_rack,
            target_racks=None if target_racks is None else tuple(target_racks),
        )
        if self.journal is not None:
            self.journal.append(NewStripe(
                stripe_id=stripe.stripe_id,
                k=self.k,
                core_rack=core_rack,
                target_racks=stripe.target_racks,
            ))
        self._next_id = stripe.stripe_id + 1
        self._stripes[stripe.stripe_id] = stripe
        return stripe

    def restore_stripe(self, stripe: Stripe) -> Stripe:
        """Re-register a stripe with its original id (recovery only)."""
        if stripe.stripe_id in self._stripes:
            raise ValueError(f"stripe {stripe.stripe_id} already registered")
        self._stripes[stripe.stripe_id] = stripe
        for block_id in stripe.block_ids:
            self._block_to_stripe[block_id] = stripe.stripe_id
        self._next_id = max(self._next_id, stripe.stripe_id + 1)
        return stripe

    def resume_ids(self, next_id: int) -> None:
        """Fast-forward the id counter (recovery/checkpoint load only)."""
        self._next_id = max(self._next_id, next_id)

    def add_block(self, stripe_id: int, block_id: BlockId, seal_when_full: bool = True) -> Stripe:
        """Add a block to a stripe; seal automatically when it reaches k."""
        stripe = self.stripe(stripe_id)
        if self.journal is not None:
            # Pre-validate so the record is journaled only for a
            # mutation that will actually apply (write-ahead invariant).
            if stripe.state != StripeState.OPEN:
                raise ValueError(
                    f"stripe {stripe_id} is {stripe.state}, not open"
                )
            if stripe.is_full():
                raise ValueError(
                    f"stripe {stripe_id} already holds k={stripe.k} blocks"
                )
            if block_id in stripe.block_ids:
                raise ValueError(
                    f"block {block_id} already in stripe {stripe_id}"
                )
            self.journal.append(StripeAddBlock(
                stripe_id=stripe_id, block_id=block_id,
                seal_when_full=seal_when_full,
            ))
        stripe.add_block(block_id)
        self._block_to_stripe[block_id] = stripe_id
        if seal_when_full and stripe.is_full():
            stripe.seal()
        return stripe

    def seal(self, stripe_id: int) -> Stripe:
        """Explicitly seal a full stripe (the journaled sealing path).

        :meth:`add_block` auto-seals through its ``seal_when_full``
        flag, which replay reproduces from the ``StripeAddBlock``
        record; callers that defer sealing (``seal_when_full=False``)
        must seal through this method so a ``SealStripe`` record lands
        in the journal before the state flips — ``stripe.seal()``
        called directly on the dataclass bypasses the write-ahead
        invariant and is invisible to recovery.

        Raises:
            ValueError: Unless the stripe is open and holds exactly k
                blocks (mirrors :meth:`Stripe.seal`).
        """
        stripe = self.stripe(stripe_id)
        if self.journal is not None:
            # Pre-validate so the record is journaled only for a
            # mutation that will actually apply (write-ahead invariant).
            if stripe.state != StripeState.OPEN:
                raise ValueError(
                    f"stripe {stripe_id} is {stripe.state}, not open"
                )
            if len(stripe.block_ids) != stripe.k:
                raise ValueError(
                    f"stripe {stripe_id} holds {len(stripe.block_ids)} "
                    f"blocks, needs exactly k={stripe.k} to seal"
                )
            self.journal.append(SealStripe(stripe_id=stripe_id))
        stripe.seal()
        return stripe

    def stripe(self, stripe_id: int) -> Stripe:
        """Look up a stripe by id."""
        try:
            return self._stripes[stripe_id]
        except KeyError:
            raise KeyError(f"unknown stripe id {stripe_id}") from None

    def stripe_of_block(self, block_id: BlockId) -> Optional[Stripe]:
        """The stripe a block belongs to, if any."""
        stripe_id = self._block_to_stripe.get(block_id)
        return None if stripe_id is None else self._stripes[stripe_id]

    # ------------------------------------------------------------------
    def stripes(self, state: Optional[str] = None) -> List[Stripe]:
        """All stripes, optionally filtered by state."""
        found = list(self._stripes.values())
        if state is not None:
            found = [s for s in found if s.state == state]
        return found

    def sealed_stripes(self) -> List[Stripe]:
        """Stripes ready for the encoding operation."""
        return self.stripes(StripeState.SEALED)

    def open_stripes(self) -> List[Stripe]:
        """Stripes still accumulating blocks."""
        return self.stripes(StripeState.OPEN)

    def encoded_stripes(self) -> List[Stripe]:
        """Stripes whose encoding has completed."""
        return self.stripes(StripeState.ENCODED)

    def __len__(self) -> int:
        return len(self._stripes)

    def __iter__(self) -> Iterator[Stripe]:
        return iter(list(self._stripes.values()))
