"""Random replication (RR) — HDFS's default policy, the paper's baseline.

RR places every block independently: the primary replica lands on a random
node of a random rack and the remaining copies follow the replication scheme
(by default, two more copies on distinct nodes of one other random rack).
Because blocks are placed independently of the stripes they will later join,
the encoding operation must fetch most data blocks across racks
(Section II-B) and the surviving replicas usually violate rack-level fault
tolerance, forcing relocation.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.cluster.block import BlockId
from repro.cluster.topology import ClusterTopology, NodeId
from repro.core.policy import (
    PlacementDecision,
    PlacementPolicy,
    ReplicationScheme,
    TWO_RACKS,
)
from repro.core.stripe import PreEncodingStore


class RandomReplication(PlacementPolicy):
    """HDFS default placement: independent, uniformly random replica layout.

    Args:
        topology: The cluster to place into.
        scheme: Replica spread (default HDFS 3-way / two racks).
        rng: Seeded random source for reproducibility.
        store: Optional pre-encoding store.  When given, consecutive data
            blocks are grouped into stripes of ``k`` in write order, which is
            exactly how the RaidNode forms stripes under RR ("groups every k
            data blocks into stripes", Section IV-A).
    """

    name = "rr"

    def __init__(
        self,
        topology: ClusterTopology,
        scheme: ReplicationScheme = TWO_RACKS,
        rng: Optional[random.Random] = None,
        store: Optional[PreEncodingStore] = None,
    ) -> None:
        super().__init__(topology, scheme, rng)
        self.store = store
        self._open_stripe_id: Optional[int] = None

    def place_block(
        self, block_id: BlockId, writer_node: Optional[NodeId] = None
    ) -> PlacementDecision:
        """Place one block on randomly chosen racks and nodes.

        The ``writer_node`` hint pins the primary replica's rack (HDFS writes
        the first copy locally); otherwise the primary rack is uniform.
        """
        if writer_node is not None:
            first_rack = self.topology.rack_of(writer_node)
        else:
            first_rack = self._random_rack()
        node_ids = self._draw_layout(first_rack)
        stripe_id = self._assign_stripe(block_id) if self.store is not None else None
        return PlacementDecision(
            block_id=block_id,
            node_ids=tuple(node_ids),
            core_rack=None,
            stripe_id=stripe_id,
            attempts=1,
        )

    def _assign_stripe(self, block_id: BlockId) -> int:
        """Group every k consecutive data blocks into one stripe."""
        assert self.store is not None
        if self._open_stripe_id is None:
            self._open_stripe_id = self.store.new_stripe().stripe_id
        stripe = self.store.add_block(self._open_stripe_id, block_id)
        if stripe.is_full():
            self._open_stripe_id = None
        return stripe.stripe_id
