"""The stripe flow graph of Figure 4: blocks -> nodes -> racks -> sink.

Given the replica layout of the (partial) stripe, the graph decides whether
the layout admits a *retention plan*: one replica kept per block, at most one
block per node, at most ``c`` blocks of the stripe per rack, and (optionally)
all retained replicas inside a chosen set of target racks (Section III-D).

Construction, following Section III-B exactly:

* source ``S`` -> each block vertex, capacity 1 (each block keeps one copy);
* block vertex -> node vertex for every replica of the block, capacity 1;
* node vertex -> its rack vertex, capacity 1 (≤ 1 stripe block per node);
* rack vertex -> sink ``T``, capacity ``c`` (≤ c stripe blocks per rack),
  with non-target racks omitted entirely in the target-rack variant.

The layout is *feasible* iff the max flow equals the number of blocks; the
retained replica of each block is the block->node edge carrying flow.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.maxflow import Dinic

_SOURCE = ("S",)
_SINK = ("T",)


class StripeFlowSession:
    """Incremental feasibility checking for one stripe's redraw loop.

    EAR redraws the layout of the newest block until the flow graph's max
    flow equals the block count (Section III-B); between attempts only that
    block's edges change.  A session therefore keeps **one** :class:`Dinic`
    solver alive across every attempt of the stripe: accepted blocks' edges
    and their routed flow stay in place, a candidate's edges are added under
    a checkpoint, the solver augments from the previous residual state (at
    most one extra unit can exist, since each block contributes one unit of
    source capacity), and a rejected candidate is rolled back.

    The accept/reject decision is provably identical to the from-scratch
    :meth:`StripeFlowGraph.max_matching_size` test: the pre-attempt flow is
    feasible for the candidate graph, Dinic run to completion from any
    feasible flow reaches the (unique) max-flow value, and reaching
    ``accepted_blocks + 1`` is maximal by the source-side cut.  What changes
    is the counted work — one BFS level-graph build per attempt instead of a
    full re-solve.

    Example:
        >>> topo = ClusterTopology(nodes_per_rack=2, num_racks=4)
        >>> session = StripeFlowGraph(topo, c=1).session()
        >>> session.try_place(0, (0, 1))    # both replicas in rack 0
        True
        >>> session.try_place(1, (1,))      # would need rack 0 twice (c=1)
        False
        >>> session.num_placed
        1
    """

    def __init__(self, graph: "StripeFlowGraph") -> None:
        self.graph = graph
        self._solver = Dinic()
        self._solver.vertex(_SOURCE)
        self._solver.vertex(_SINK)
        self._flow = 0
        self._layout: Dict[object, List[NodeId]] = {}
        self._nodes_added: Set[NodeId] = set()
        self._racks_added: Set[RackId] = set()

    @property
    def num_placed(self) -> int:
        """Blocks accepted so far (equals the routed flow)."""
        return self._flow

    def layout(self) -> Dict[object, List[NodeId]]:
        """The accepted layout (block -> replica nodes)."""
        return {block: list(nodes) for block, nodes in self._layout.items()}

    def try_place(self, block: object, node_ids: Sequence[NodeId]) -> bool:
        """Tentatively add one block's replica layout.

        Adds the candidate's edges, augments the retained flow by at most
        one unit, and keeps the edges iff the flow then covers every block
        (the Section III-B acceptance test).  On rejection the graph is
        rolled back to its pre-attempt state, so the caller can redraw.

        Args:
            block: Block label; must not have been accepted already.
            node_ids: The candidate replica nodes for the block.

        Returns:
            True when the block was accepted (edges and flow retained).
        """
        if block in self._layout:
            raise ValueError(f"block {block!r} was already placed")
        token = self._solver.checkpoint()
        nodes_new: List[NodeId] = []
        racks_new: List[RackId] = []
        self._solver.add_edge(_SOURCE, ("B", block), 1)
        for node_id in node_ids:
            rack_id = self.graph.topology.rack_of(node_id)
            if not self.graph._rack_admissible(rack_id):
                continue
            self._solver.add_edge(("B", block), ("N", node_id), 1)
            if node_id not in self._nodes_added:
                self._nodes_added.add(node_id)
                nodes_new.append(node_id)
                self._solver.add_edge(("N", node_id), ("R", rack_id), 1)
            if rack_id not in self._racks_added:
                self._racks_added.add(rack_id)
                racks_new.append(rack_id)
                self._solver.add_edge(
                    ("R", rack_id), _SINK, self.graph.rack_capacity(rack_id)
                )
        gained = self._solver.max_flow(_SOURCE, _SINK, limit=1)
        if gained == 1:
            self._flow += 1
            self._layout[block] = list(node_ids)
            return True
        # A failed augmentation changed no capacity, so the candidate's
        # edges carry no flow and rollback restores the pre-attempt graph.
        self._solver.rollback(token)
        for node_id in nodes_new:
            self._nodes_added.discard(node_id)
        for rack_id in racks_new:
            self._racks_added.discard(rack_id)
        return False


class StripeFlowGraph:
    """Feasibility test and matching extraction for one stripe's replicas.

    Args:
        topology: Cluster layout (to map nodes to racks).
        c: Maximum blocks of the stripe a single rack may hold after
            encoding.
        target_racks: Optional restriction of retained replicas to this rack
            set (Section III-D); ``None`` admits every rack.
        capacity_overrides: Optional per-rack capacities replacing ``c`` for
            specific racks.  The encoding planner uses this to reserve part
            of the core rack's capacity for parity blocks (keeping
            data/parity in one rack to cut cross-rack uploads, the behaviour
            Figure 13(e) exploits when ``c > 1``).

    Example:
        >>> topo = ClusterTopology(nodes_per_rack=2, num_racks=4)
        >>> graph = StripeFlowGraph(topo, c=1)
        >>> layout = {0: (0, 2), 1: (1, 4)}   # block -> replica nodes
        >>> graph.max_matching_size(layout)
        2
    """

    def __init__(
        self,
        topology: ClusterTopology,
        c: int = 1,
        target_racks: Optional[Sequence[RackId]] = None,
        capacity_overrides: Optional[Dict[RackId, int]] = None,
    ) -> None:
        if c <= 0:
            raise ValueError("c must be positive")
        self.topology = topology
        self.c = c
        self.target_racks: Optional[Set[RackId]] = (
            None if target_racks is None else set(target_racks)
        )
        if self.target_racks is not None:
            for rack in self.target_racks:
                topology.rack(rack)
        self.capacity_overrides: Dict[RackId, int] = dict(capacity_overrides or {})
        for rack, capacity in self.capacity_overrides.items():
            topology.rack(rack)
            if capacity < 0:
                raise ValueError(f"capacity override for rack {rack} is negative")

    # ------------------------------------------------------------------
    def _rack_admissible(self, rack_id: RackId) -> bool:
        return self.target_racks is None or rack_id in self.target_racks

    def rack_capacity(self, rack_id: RackId) -> int:
        """Blocks of this stripe the rack may retain (``c`` unless overridden)."""
        return self.capacity_overrides.get(rack_id, self.c)

    def _build(self, layout: Dict[object, Sequence[NodeId]]) -> Dinic:
        graph = Dinic()
        racks_added: Set[RackId] = set()
        nodes_added: Set[NodeId] = set()
        for block, node_ids in layout.items():
            graph.add_edge(_SOURCE, ("B", block), 1)
            for node_id in node_ids:
                rack_id = self.topology.rack_of(node_id)
                if not self._rack_admissible(rack_id):
                    # Replicas outside target racks cannot be retained:
                    # Section III-D removes their rack->sink edges; we simply
                    # omit the whole path.
                    continue
                graph.add_edge(("B", block), ("N", node_id), 1)
                if node_id not in nodes_added:
                    nodes_added.add(node_id)
                    graph.add_edge(("N", node_id), ("R", rack_id), 1)
                if rack_id not in racks_added:
                    racks_added.add(rack_id)
                    graph.add_edge(("R", rack_id), _SINK, self.rack_capacity(rack_id))
        return graph

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def session(self) -> StripeFlowSession:
        """A fresh incremental session reusing one solver across redraws."""
        return StripeFlowSession(self)

    def max_matching_size(self, layout: Dict[object, Sequence[NodeId]]) -> int:
        """Size of the maximum matching for the given replica layout.

        Args:
            layout: Mapping block -> node ids of its replicas.

        Returns:
            The max flow of the Figure 4(b) graph; the layout is feasible iff
            this equals ``len(layout)``.
        """
        if not layout:
            return 0
        graph = self._build(layout)
        return graph.max_flow(_SOURCE, _SINK)

    def is_feasible(self, layout: Dict[object, Sequence[NodeId]]) -> bool:
        """True when every block can retain a replica within the constraints."""
        return self.max_matching_size(layout) == len(layout)

    def find_matching(
        self, layout: Dict[object, Sequence[NodeId]]
    ) -> Optional[Dict[object, NodeId]]:
        """Extract a retention plan: which replica each block keeps.

        Returns:
            Mapping block -> retained node, or ``None`` when the layout is
            infeasible (max flow below the block count).
        """
        if not layout:
            return {}
        graph = self._build(layout)
        flow = graph.max_flow(_SOURCE, _SINK)
        if flow != len(layout):
            return None
        matching: Dict[object, NodeId] = {}
        for block, node_ids in layout.items():
            for node_id in node_ids:
                rack_id = self.topology.rack_of(node_id)
                if not self._rack_admissible(rack_id):
                    continue
                if graph.flow_on(("B", block), ("N", node_id)) > 0:
                    matching[block] = node_id
                    break
        if len(matching) != len(layout):
            raise AssertionError("max flow equals block count but matching is partial")
        return matching

    def find_partial_matching(
        self, layout: Dict[object, Sequence[NodeId]]
    ) -> Dict[object, NodeId]:
        """Best-effort retention: match as many blocks as the flow allows.

        Unlike :meth:`find_matching` this never returns ``None``; blocks the
        max flow could not serve are simply absent from the result.  Used
        for RR stripes, whose layouts carry no feasibility guarantee.
        """
        if not layout:
            return {}
        graph = self._build(layout)
        graph.max_flow(_SOURCE, _SINK)
        matching: Dict[object, NodeId] = {}
        for block, node_ids in layout.items():
            for node_id in node_ids:
                if not self._rack_admissible(self.topology.rack_of(node_id)):
                    continue
                if graph.flow_on(("B", block), ("N", node_id)) > 0:
                    matching[block] = node_id
                    break
        return matching

    def rack_usage(self, matching: Dict[object, NodeId]) -> Dict[RackId, int]:
        """Blocks retained per rack under a retention plan."""
        usage: Dict[RackId, int] = {}
        for node_id in matching.values():
            rack_id = self.topology.rack_of(node_id)
            usage[rack_id] = usage.get(rack_id, 0) + 1
        return usage

    def validate_matching(
        self, layout: Dict[object, Sequence[NodeId]], matching: Dict[object, NodeId]
    ) -> None:
        """Assert that a retention plan satisfies every constraint.

        Raises:
            ValueError: Describing the first violated constraint.
        """
        if set(matching) != set(layout):
            raise ValueError("matching must cover exactly the layout's blocks")
        used_nodes: Set[NodeId] = set()
        for block, node_id in matching.items():
            if node_id not in layout[block]:
                raise ValueError(
                    f"block {block} retained on node {node_id} without a replica"
                )
            if node_id in used_nodes:
                raise ValueError(f"node {node_id} retains more than one block")
            used_nodes.add(node_id)
            rack_id = self.topology.rack_of(node_id)
            if not self._rack_admissible(rack_id):
                raise ValueError(f"rack {rack_id} is not a target rack")
        for rack_id, used in self.rack_usage(matching).items():
            capacity = self.rack_capacity(rack_id)
            if used > capacity:
                raise ValueError(
                    f"rack {rack_id} retains {used} blocks, exceeding its "
                    f"capacity {capacity}"
                )
