"""The preliminary EAR of Section III-A.

Preliminary EAR only ensures the *performance* goal: every data block of a
stripe keeps its first replica in the stripe's core rack, so an encoder in
the core rack downloads nothing across racks.  The remaining replicas are
placed exactly as RR places them — and therein lies the availability flaw the
paper analyses: with high probability (Equation 1, Figure 3) the surviving
replicas cannot satisfy rack-level fault tolerance without relocation.

This policy exists to reproduce that analysis; production use should prefer
:class:`repro.core.ear.EncodingAwareReplication`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.block import BlockId
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.policy import (
    PlacementDecision,
    PlacementPolicy,
    ReplicationScheme,
    TWO_RACKS,
)
from repro.core.stripe import PreEncodingStore, Stripe


class PreliminaryEAR(PlacementPolicy):
    """Core-rack placement without availability validation (Section III-A).

    Args:
        topology: The cluster to place into.
        k: Data blocks per stripe (stripes seal at this size).
        scheme: Replica spread (default HDFS 3-way / two racks).
        rng: Seeded random source.
        store: Pre-encoding store to fill; created internally when omitted.
    """

    name = "preliminary-ear"

    def __init__(
        self,
        topology: ClusterTopology,
        k: int,
        scheme: ReplicationScheme = TWO_RACKS,
        rng: Optional[random.Random] = None,
        store: Optional[PreEncodingStore] = None,
    ) -> None:
        super().__init__(topology, scheme, rng)
        self.store = store if store is not None else PreEncodingStore(k)
        if self.store.k != k:
            raise ValueError("store's k disagrees with the policy's k")
        self.k = k
        # One open stripe per core rack at a time (Section III-A: "each rack
        # in the CFS can be viewed as a core rack for a stripe").
        self._open_by_rack: Dict[RackId, int] = {}
        # block -> replica nodes, kept so analyses can inspect layouts.
        self._layouts: Dict[BlockId, List[NodeId]] = {}

    def place_block(
        self, block_id: BlockId, writer_node: Optional[NodeId] = None
    ) -> PlacementDecision:
        """Place the primary replica in the core rack, the rest as RR."""
        if writer_node is not None:
            core_rack = self.topology.rack_of(writer_node)
        else:
            core_rack = self._random_rack()
        stripe = self._open_stripe_for(core_rack)
        node_ids = self._draw_layout(core_rack)
        self._layouts[block_id] = list(node_ids)
        self.store.add_block(stripe.stripe_id, block_id)
        if stripe.is_full():
            del self._open_by_rack[core_rack]
        return PlacementDecision(
            block_id=block_id,
            node_ids=tuple(node_ids),
            core_rack=core_rack,
            stripe_id=stripe.stripe_id,
            attempts=1,
        )

    def layout_of(self, block_id: BlockId) -> List[NodeId]:
        """Replica nodes chosen for a block (as placed; ignores later moves)."""
        return list(self._layouts[block_id])

    def stripe_layout(self, stripe: Stripe) -> Dict[BlockId, List[NodeId]]:
        """Replica layout of every data block in a stripe."""
        return {bid: self.layout_of(bid) for bid in stripe.block_ids}

    def _open_stripe_for(self, core_rack: RackId) -> Stripe:
        stripe_id = self._open_by_rack.get(core_rack)
        if stripe_id is None:
            stripe = self.store.new_stripe(core_rack=core_rack)
            self._open_by_rack[core_rack] = stripe.stripe_id
            return stripe
        return self.store.stripe(stripe_id)
