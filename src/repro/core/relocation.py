"""Post-encoding availability repair: PlacementMonitor and BlockMover.

Facebook's HDFS periodically checks every erasure-coded stripe against the
rack-level fault-tolerance requirement (the ``PlacementMonitor`` module) and
relocates blocks when the requirement is violated (the ``BlockMover``
module) — Section II-B.  Relocation is exactly what EAR avoids: it costs
cross-rack traffic and leaves a vulnerability window until it completes.

This module reproduces both components so the simulator and the analyses can
quantify RR's relocation burden.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.failure import stripe_rack_fault_tolerance
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.policy import PlacementError
from repro.core.stripe import Stripe
from repro.erasure.codec import CodeParams


@dataclass(frozen=True)
class BlockMove:
    """One relocation: a block's single copy moves between nodes."""

    block_id: BlockId
    src_node: NodeId
    dst_node: NodeId

    def is_cross_rack(self, topology: ClusterTopology) -> bool:
        """True when the move crosses the network core."""
        return topology.is_cross_rack(self.src_node, self.dst_node)


@dataclass(frozen=True)
class RelocationPlan:
    """The moves required to restore a stripe's rack fault tolerance.

    Attributes:
        stripe_id: The violating stripe.
        moves: Relocations, in execution order.
        cross_rack_moves: How many moves cross the core (each costs a block's
            worth of scarce cross-rack bandwidth).
    """

    stripe_id: int
    moves: Tuple[BlockMove, ...]
    cross_rack_moves: int

    @property
    def is_empty(self) -> bool:
        """True when the stripe already satisfies the requirement."""
        return not self.moves


class PlacementMonitor:
    """Detects encoded stripes violating rack-level fault tolerance.

    Args:
        topology: Cluster layout.
        code: The ``(n, k)`` code protecting the stripes.
        required_rack_failures: Rack failures each stripe must survive
            (``n - k`` in Facebook's deployment).
    """

    def __init__(
        self,
        topology: ClusterTopology,
        code: CodeParams,
        required_rack_failures: Optional[int] = None,
    ) -> None:
        self.topology = topology
        self.code = code
        self.required_rack_failures = (
            code.num_parity if required_rack_failures is None
            else required_rack_failures
        )
        if not 0 <= self.required_rack_failures <= code.num_parity:
            raise ValueError(
                "required rack failures must lie in [0, n - k]"
            )

    def stripe_nodes(self, block_store: BlockStore, stripe: Stripe) -> List[NodeId]:
        """The node of every (single-copy) block of an encoded stripe.

        Raises:
            PlacementError: If any block still has several replicas — the
                monitor only inspects encoded stripes.
        """
        nodes: List[NodeId] = []
        for block_id in stripe.all_block_ids():
            replicas = block_store.replica_nodes(block_id)
            if len(replicas) != 1:
                raise PlacementError(
                    f"block {block_id} of stripe {stripe.stripe_id} has "
                    f"{len(replicas)} replicas; encode first"
                )
            nodes.append(replicas[0])
        return nodes

    def is_violating(self, block_store: BlockStore, stripe: Stripe) -> bool:
        """True when the stripe tolerates fewer rack failures than required."""
        nodes = self.stripe_nodes(block_store, stripe)
        tolerance = stripe_rack_fault_tolerance(self.topology, nodes, self.code.k)
        return tolerance < self.required_rack_failures

    def scan(
        self, block_store: BlockStore, stripes: Sequence[Stripe]
    ) -> List[Stripe]:
        """All stripes among ``stripes`` that need relocation."""
        return [s for s in stripes if self.is_violating(block_store, s)]


class BlockMover:
    """Plans and executes the relocations repairing a violating stripe.

    The mover empties over-full racks: while some rack holds more blocks
    than the per-rack cap implied by the requirement, it moves one block
    from the fullest rack to a random node of a rack below the cap.

    Args:
        topology: Cluster layout.
        code: The stripe's code parameters.
        required_rack_failures: Rack failures each stripe must survive.
        rng: Random source for destination choices.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        code: CodeParams,
        required_rack_failures: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.topology = topology
        self.code = code
        self.required_rack_failures = (
            code.num_parity if required_rack_failures is None
            else required_rack_failures
        )
        self.rng = rng if rng is not None else random.Random(0)
        self.monitor = PlacementMonitor(topology, code, self.required_rack_failures)

    def rack_cap(self) -> int:
        """Largest per-rack block count meeting the requirement.

        Surviving ``t`` rack failures requires every ``t`` racks to hold at
        most ``n - k`` blocks in total; with an even adversary the binding
        constraint is ``cap = floor((n - k) / t)`` blocks per rack (and any
        spread when ``t = 0``).
        """
        if self.required_rack_failures == 0:
            return self.code.n
        return max(1, self.code.num_parity // self.required_rack_failures)

    def plan(self, block_store: BlockStore, stripe: Stripe) -> RelocationPlan:
        """Compute (without executing) the moves repairing ``stripe``."""
        nodes = self.monitor.stripe_nodes(block_store, stripe)
        block_ids = stripe.all_block_ids()
        cap = self.rack_cap()

        rack_members: Dict[RackId, List[int]] = {}
        for index, node in enumerate(nodes):
            rack_members.setdefault(self.topology.rack_of(node), []).append(index)

        occupied: Set[NodeId] = set(nodes)
        moves: List[BlockMove] = []
        while True:
            over = {
                rack: members
                for rack, members in rack_members.items()
                if len(members) > cap
            }
            if not over:
                break
            rack, members = max(over.items(), key=lambda item: len(item[1]))
            index = members[-1]
            dst_rack = self._destination_rack(rack_members, cap, exclude=rack)
            candidates = [
                n
                for n in self.topology.nodes_in_rack(dst_rack)
                if n not in occupied
            ]
            if not candidates:
                raise PlacementError(
                    f"rack {dst_rack} has no free node for relocation"
                )
            dst_node = self.rng.choice(candidates)
            moves.append(BlockMove(block_ids[index], nodes[index], dst_node))
            occupied.discard(nodes[index])
            occupied.add(dst_node)
            members.pop()
            nodes[index] = dst_node
            rack_members.setdefault(dst_rack, []).append(index)

        cross = sum(1 for m in moves if m.is_cross_rack(self.topology))
        return RelocationPlan(stripe.stripe_id, tuple(moves), cross)

    def execute(self, block_store: BlockStore, plan: RelocationPlan) -> None:
        """Apply a relocation plan to the block store."""
        for move in plan.moves:
            block_store.move_replica(move.block_id, move.src_node, move.dst_node)

    def repair(self, block_store: BlockStore, stripe: Stripe) -> RelocationPlan:
        """Plan and immediately execute the repair of one stripe."""
        plan = self.plan(block_store, stripe)
        self.execute(block_store, plan)
        return plan

    def _destination_rack(
        self,
        rack_members: Dict[RackId, List[int]],
        cap: int,
        exclude: RackId,
    ) -> RackId:
        below = [
            rack
            for rack in self.topology.rack_ids()
            if rack != exclude and len(rack_members.get(rack, [])) < cap
        ]
        if not below:
            raise PlacementError(
                "no rack below the cap remains; requirement is unsatisfiable"
            )
        empty = [r for r in below if not rack_members.get(r)]
        return self.rng.choice(empty or below)
