"""Orchestration: run scenarios, collect wall time + counted work, write
the ``BENCH_<tag>.json`` report.

Wall time comes from ``time.perf_counter`` (machine-dependent, recorded
but never asserted on); counted work comes from a
:func:`repro.sim.metrics.measure_ops` snapshot around each scenario and is
deterministic for a fixed ``--seed``.  Each scenario gets its own RNG
derived from ``(master seed, scenario name)`` via CRC-32 — stable across
processes and interpreter hash randomisation, and independent of the order
scenarios run in.
"""

from __future__ import annotations

import json
import random
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.discover import discover_figure_scenarios
from repro.bench.scenarios import Scenario, builtin_scenarios
from repro.bench.schema import SCHEMA_VERSION, validate_report
from repro.sim.metrics import measure_ops


@dataclass
class BenchResult:
    """Outcome of one :func:`run_bench` invocation."""

    path: Path
    report: Dict
    failures: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every scenario ran to completion."""
        return not self.failures


def _scenario_seed(master_seed: int, name: str) -> int:
    return zlib.crc32(name.encode("utf-8")) ^ (master_seed & 0xFFFFFFFF)


def _strip_wall(entry: Dict) -> Dict:
    """Drop machine-dependent fields before differential comparison.

    ``wall_time_s`` is always volatile; scenario metrics prefixed
    ``wall_`` (timings and ratios of timings) are volatile by convention.
    """
    trimmed = dict(entry)
    trimmed.pop("wall_time_s", None)
    metrics = trimmed.get("metrics")
    if isinstance(metrics, dict):
        trimmed["metrics"] = {
            key: value
            for key, value in metrics.items()
            if not key.startswith("wall_")
        }
    return trimmed


def run_scenario_by_name(
    name: str,
    smoke: bool = False,
    bench_dir: Optional[str] = None,
    seed: int = 0,
) -> Dict:
    """Rebuild the scenario registry in this process and run one scenario.

    Scenario callables are closures and cannot cross a process boundary;
    workers receive only the scenario *name* plus the registry inputs
    (``smoke``, ``bench_dir``) and reconstruct the identical scenario
    locally.  ``seed`` is the master seed — the per-scenario RNG derivation
    matches :func:`_run_scenario` exactly.
    """
    for scenario in builtin_scenarios(smoke):
        if scenario.name == name:
            return _run_scenario(scenario, seed)
    discovered, __ = discover_figure_scenarios(
        Path(bench_dir) if bench_dir is not None else None
    )
    for scenario in discovered:
        if scenario.name == name:
            return _run_scenario(scenario, seed)
    raise KeyError(f"no such scenario: {name!r}")


def _run_scenario(scenario: Scenario, master_seed: int) -> Dict:
    from repro.erasure import reset_memo_caches

    # Hermetic measurement: without this, a scenario's op counts depend on
    # whether an earlier scenario in the same process already built the
    # GF matrices it uses — and therefore on worker placement.
    reset_memo_caches()
    rng = random.Random(_scenario_seed(master_seed, scenario.name))
    error: Optional[str] = None
    metrics: Dict[str, float] = {}
    start = time.perf_counter()
    with measure_ops() as measured:
        try:
            derived = scenario.fn(rng)
        except Exception as exc:  # recorded per-scenario, run continues
            error = f"{type(exc).__name__}: {exc}"
        else:
            if derived:
                metrics = {key: float(value) for key, value in derived.items()}
    wall = time.perf_counter() - start
    return {
        "name": scenario.name,
        "group": scenario.group,
        "params": dict(scenario.params),
        "wall_time_s": wall,
        "ops": measured.ops,
        "metrics": metrics,
        "error": error,
    }


def run_bench(
    tag: str,
    smoke: bool = False,
    seed: int = 0,
    out_dir: str = ".",
    name_filter: Optional[str] = None,
    include_figures: Optional[bool] = None,
    bench_dir: Optional[Path] = None,
    scenarios: Optional[Sequence[Scenario]] = None,
    echo: Optional[Callable[[str], None]] = None,
    workers: int = 0,
) -> BenchResult:
    """Run the benchmark suite and write ``BENCH_<tag>.json``.

    Args:
        tag: Report label; the output file is ``BENCH_<tag>.json``.
        smoke: Shrink scenario sizes for a CI gate and (by default) skip
            the discovered figure benchmarks.
        seed: Master seed every scenario's RNG derives from.
        out_dir: Directory the report is written into.
        name_filter: When set, only scenarios whose name contains this
            substring run.
        include_figures: Force figure-benchmark discovery on/off; the
            default is ``not smoke``.
        bench_dir: Override the ``benchmarks/`` directory (tests).
        scenarios: Explicit scenario list, replacing registry + discovery.
            Explicit scenarios always run sequentially — their callables
            are closures and cannot cross a process boundary.
        echo: Per-scenario progress sink (e.g. ``print``); quiet when None.
        workers: Shard scenarios across this many worker processes; ``0``
            runs in-process.  Every entry except ``wall_time_s`` is
            identical either way (scenario RNGs derive from the master
            seed and the scenario name, never from run order).

    Returns:
        A :class:`BenchResult`; ``failures`` lists scenarios whose ``error``
        field is set, ``skipped`` lists bench tests discovery could not
        adapt.
    """
    say = echo if echo is not None else (lambda message: None)
    skipped: List[str] = []
    if scenarios is None:
        selected = list(builtin_scenarios(smoke))
        figures = include_figures if include_figures is not None else not smoke
        if figures:
            discovered, skipped = discover_figure_scenarios(bench_dir)
            selected.extend(discovered)
    else:
        selected = list(scenarios)
    if name_filter:
        selected = [s for s in selected if name_filter in s.name]

    if workers > 0 and scenarios is None:
        from repro.parallel.executor import SweepExecutor
        from repro.parallel.spec import TrialSpec

        specs = [
            TrialSpec(
                fn=run_scenario_by_name,
                config={
                    "name": scenario.name,
                    "smoke": smoke,
                    "bench_dir": (
                        str(bench_dir) if bench_dir is not None else None
                    ),
                },
                seed=seed,
                tag=f"bench.{scenario.name}",
                cacheable=False,  # wall times go stale; never cache these
                normalize=_strip_wall,
            )
            for scenario in selected
        ]
        entries = SweepExecutor(workers=workers).map_trials(specs)
    else:
        entries = [_run_scenario(scenario, seed) for scenario in selected]

    failures: List[str] = []
    for entry in entries:
        if entry["error"] is not None:
            failures.append(entry["name"])
            say(f"FAIL {entry['name']}: {entry['error']}")
        else:
            ops = sum(entry["ops"].values())
            say(
                f"ok   {entry['name']}  "
                f"wall={entry['wall_time_s']:.4f}s ops={ops:.0f}"
            )
    for name in skipped:
        say(f"skip {name} (signature not adaptable)")

    report = {
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "seed": seed,
        "smoke": smoke,
        "scenarios": entries,
    }
    validate_report(report)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{tag}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    say(f"wrote {path} ({len(entries)} scenarios, {len(failures)} failed)")
    return BenchResult(path=path, report=report, failures=failures, skipped=skipped)
