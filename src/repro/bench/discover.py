"""Discover the paper-figure benchmarks in ``benchmarks/bench_*.py``.

Those files are pytest-benchmark suites; outside pytest we substitute a
stub for the ``benchmark`` fixture that simply calls the measured function
once — the harness supplies its own wall-time clock and counted-work
snapshot around the whole scenario, so pytest-benchmark's statistics layer
is not needed (and must not be imported).

Only test functions whose sole parameter is ``benchmark`` are adapted;
anything with extra fixtures is reported in the skip list so the runner
can say what was not covered (no silent truncation).
"""

from __future__ import annotations

import contextlib
import importlib
import inspect
import io
import random
import sys
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.bench.scenarios import Scenario

#: Default location of the pytest-benchmark suites, relative to the repo
#: root (this file lives at ``src/repro/bench/discover.py``).
DEFAULT_BENCH_DIR = Path(__file__).resolve().parents[3] / "benchmarks"


class _StubBenchmark:
    """Replacement for the pytest-benchmark fixture: run once, no stats."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(
        self, fn, args=(), kwargs=None, rounds=1, iterations=1, warmup_rounds=0
    ):
        return fn(*args, **(kwargs or {}))


def _scenario_name(stem: str, function_name: str) -> str:
    short = stem[len("bench_"):] if stem.startswith("bench_") else stem
    test = (
        function_name[len("test_"):]
        if function_name.startswith("test_")
        else function_name
    )
    if test == short or test.startswith(short):
        return f"figure.{test}"
    return f"figure.{short}.{test}"


def _adapt(function: Callable) -> Callable[[random.Random], None]:
    def run(rng: random.Random):
        # Figure benchmarks seed themselves (reprolint DET001 enforces it)
        # and print paper-style tables; swallow the prose — the report
        # records wall time and counted work, not the tables.  A test may
        # return a metrics dict (e.g. a wall-clock split between internal
        # contenders); anything else is discarded.
        with contextlib.redirect_stdout(io.StringIO()):
            result = function(_StubBenchmark())
        return result if isinstance(result, dict) else None

    return run


def discover_figure_scenarios(
    bench_dir: Optional[Path] = None,
) -> Tuple[List[Scenario], List[str]]:
    """Adapt every eligible bench test into a ``figure`` scenario.

    Returns:
        ``(scenarios, skipped)`` where ``skipped`` names the test functions
        that could not be adapted (unexpected fixture signature).
    """
    bench_dir = Path(bench_dir) if bench_dir is not None else DEFAULT_BENCH_DIR
    scenarios: List[Scenario] = []
    skipped: List[str] = []
    if not bench_dir.is_dir():
        return scenarios, skipped
    # The bench files import helpers package-relatively (`from .conftest
    # import ...`), so they must be imported as `<package>.<module>` with
    # the package's parent directory importable.
    parent = str(bench_dir.parent)
    if parent not in sys.path:
        sys.path.insert(0, parent)
    package = bench_dir.name
    for path in sorted(bench_dir.glob("bench_*.py")):
        module = importlib.import_module(f"{package}.{path.stem}")
        for name, function in sorted(vars(module).items()):
            if not name.startswith("test_") or not callable(function):
                continue
            parameters = list(inspect.signature(function).parameters)
            if parameters != ["benchmark"]:
                skipped.append(f"{path.stem}.{name}")
                continue
            scenarios.append(
                Scenario(
                    name=_scenario_name(path.stem, name),
                    group="figure",
                    params={"module": path.stem, "function": name},
                    fn=_adapt(function),
                )
            )
    return scenarios, skipped
