"""The ``BENCH_<tag>.json`` schema and its (dependency-free) validator.

The report format is intentionally flat and append-only: new counters and
derived metrics may appear under ``ops`` / ``metrics`` without a version
bump; removing or re-typing a field bumps :data:`SCHEMA_VERSION`.

Top-level document::

    {
      "schema_version": 1,
      "tag": "pr3",                  # perf-trajectory label (file suffix)
      "seed": 0,                     # master seed every scenario derives from
      "smoke": false,                # tiny-config mode (CI gate)
      "scenarios": [ <scenario>, ... ]
    }

Scenario::

    {
      "name": "micro.rs_encode",     # unique within the report
      "group": "micro" | "figure",   # built-in vs discovered bench_*.py
      "params": {...},               # scenario-defined sizes/knobs
      "wall_time_s": 0.0123,         # measured, machine-dependent
      "ops": {"gf.symbol_mults": 163840, ...},   # counted work, deterministic
      "metrics": {"events_per_sec": 1.2e6, ...}, # derived numbers (optional)
      "error": null | "<repr of the failure>"
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

#: Bumped whenever a field is removed or its meaning/type changes.
SCHEMA_VERSION = 1

_GROUPS = ("micro", "figure")


class BenchSchemaError(ValueError):
    """Raised when a BENCH report does not conform to the schema."""

    def __init__(self, errors: List[str]) -> None:
        super().__init__("; ".join(errors))
        self.errors = errors


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def schema_errors(report: object) -> List[str]:
    """Every schema violation in ``report`` (empty when valid)."""
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    if report.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}"
        )
    if not isinstance(report.get("tag"), str) or not report.get("tag"):
        errors.append("tag must be a non-empty string")
    if not isinstance(report.get("seed"), int) or isinstance(report.get("seed"), bool):
        errors.append("seed must be an integer")
    if not isinstance(report.get("smoke"), bool):
        errors.append("smoke must be a boolean")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list):
        errors.append("scenarios must be a list")
        return errors
    seen: set = set()
    for position, scenario in enumerate(scenarios):
        where = f"scenarios[{position}]"
        if not isinstance(scenario, dict):
            errors.append(f"{where} must be an object")
            continue
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}.name must be a non-empty string")
        elif name in seen:
            errors.append(f"{where}.name {name!r} is duplicated")
        else:
            seen.add(name)
        if scenario.get("group") not in _GROUPS:
            errors.append(f"{where}.group must be one of {_GROUPS}")
        if not isinstance(scenario.get("params"), dict):
            errors.append(f"{where}.params must be an object")
        wall = scenario.get("wall_time_s")
        if not _is_number(wall) or wall < 0:
            errors.append(f"{where}.wall_time_s must be a non-negative number")
        ops = scenario.get("ops")
        if not isinstance(ops, dict):
            errors.append(f"{where}.ops must be an object")
        else:
            for key, value in ops.items():
                if not isinstance(key, str) or not _is_number(value):
                    errors.append(f"{where}.ops[{key!r}] must map str -> number")
                    break
        metrics = scenario.get("metrics")
        if not isinstance(metrics, dict) or not all(
            isinstance(key, str) and _is_number(value)
            for key, value in metrics.items()
        ):
            errors.append(f"{where}.metrics must map str -> number")
        error = scenario.get("error")
        if error is not None and not isinstance(error, str):
            errors.append(f"{where}.error must be null or a string")
    return errors


def validate_report(report: object) -> None:
    """Raise :class:`BenchSchemaError` when the report violates the schema."""
    errors = schema_errors(report)
    if errors:
        raise BenchSchemaError(errors)


def validate_file(path: str) -> Dict:
    """Load and validate a BENCH json file, returning the parsed report."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    validate_report(report)
    return report
