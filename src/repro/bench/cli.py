"""Argument wiring for the ``repro bench`` subcommand."""

from __future__ import annotations

import argparse


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro bench`` options to an argparse parser."""
    parser.add_argument(
        "--tag",
        default="dev",
        help="report label; output file is BENCH_<tag>.json (default: dev)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scenario sizes and no figure benchmarks (CI gate)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed every scenario derives from (default: 0)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory to write the report into (default: .)",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTRING",
        help="run only scenarios whose name contains SUBSTRING",
    )
    figures = parser.add_mutually_exclusive_group()
    figures.add_argument(
        "--figures",
        dest="include_figures",
        action="store_true",
        default=None,
        help="force discovery of benchmarks/bench_*.py even with --smoke",
    )
    figures.add_argument(
        "--no-figures",
        dest="include_figures",
        action="store_false",
        help="skip the discovered figure benchmarks",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="shard scenarios across N worker processes (default: 0, "
        "in-process; results identical modulo wall_time_s)",
    )
    sub = parser.add_subparsers(dest="bench_command", metavar="")
    compare = sub.add_parser(
        "compare",
        help="gate a new BENCH_<tag>.json against a baseline report",
    )
    compare.add_argument("old", help="baseline BENCH_<tag>.json")
    compare.add_argument("new", help="candidate BENCH_<tag>.json")
    compare.add_argument(
        "--max-regress",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed wall-time regression in percent (default: 10)",
    )
    compare.add_argument(
        "--ops-only",
        action="store_true",
        help="compare op counts only; ignore wall times (cross-machine CI)",
    )
    compare.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="NAME",
        help="exclude scenario NAME from the comparison (repeatable; for "
        "documented op-attribution changes)",
    )
    compare.set_defaults(func=cmd_bench_compare)


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the seeded benchmark suite and write BENCH_<tag>.json."""
    from repro.bench.runner import run_bench

    result = run_bench(
        tag=args.tag,
        smoke=args.smoke,
        seed=args.seed,
        out_dir=args.out_dir,
        name_filter=args.name_filter,
        include_figures=args.include_figures,
        echo=print,
        workers=args.workers,
    )
    return 0 if result.ok else 1


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Compare two bench reports; non-zero exit on regression."""
    from repro.bench.compare import compare_reports, load_report

    result = compare_reports(
        load_report(args.old),
        load_report(args.new),
        max_regress=args.max_regress,
        ops_only=args.ops_only,
        ignore=args.ignore,
    )
    for note in result.notes:
        print(f"note {note}")
    for failure in result.failures:
        print(f"FAIL {failure}")
    verdict = "ok" if result.ok else "REGRESSED"
    print(
        f"{verdict}: {result.compared} scenarios compared, "
        f"{len(result.failures)} failures, {len(result.notes)} notes"
    )
    return 0 if result.ok else 1
