"""Argument wiring for the ``repro bench`` subcommand."""

from __future__ import annotations

import argparse


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro bench`` options to an argparse parser."""
    parser.add_argument(
        "--tag",
        default="dev",
        help="report label; output file is BENCH_<tag>.json (default: dev)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scenario sizes and no figure benchmarks (CI gate)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed every scenario derives from (default: 0)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="directory to write the report into (default: .)",
    )
    parser.add_argument(
        "--filter",
        dest="name_filter",
        default=None,
        metavar="SUBSTRING",
        help="run only scenarios whose name contains SUBSTRING",
    )
    figures = parser.add_mutually_exclusive_group()
    figures.add_argument(
        "--figures",
        dest="include_figures",
        action="store_true",
        default=None,
        help="force discovery of benchmarks/bench_*.py even with --smoke",
    )
    figures.add_argument(
        "--no-figures",
        dest="include_figures",
        action="store_false",
        help="skip the discovered figure benchmarks",
    )


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the seeded benchmark suite and write BENCH_<tag>.json."""
    from repro.bench.runner import run_bench

    result = run_bench(
        tag=args.tag,
        smoke=args.smoke,
        seed=args.seed,
        out_dir=args.out_dir,
        name_filter=args.name_filter,
        include_figures=args.include_figures,
        echo=print,
    )
    return 0 if result.ok else 1
