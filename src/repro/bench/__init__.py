"""Seeded, deterministic benchmark harness — the repo's perf trajectory.

``repro bench`` runs a registry of micro-benchmarks over the library's hot
paths (GF(2^8) kernels, stripe encode/decode, Dinic max-flow, EAR redraws,
the DES kernel) plus — unless ``--smoke`` — the paper-figure benchmarks
discovered from ``benchmarks/bench_*.py``, and writes a schema-versioned
``BENCH_<tag>.json``.

Every scenario records two kinds of numbers:

* **wall time** (``wall_time_s``) — machine-dependent, for humans comparing
  runs on one box; never asserted on.
* **counted work** (``ops``) — deterministic operation counts drained from
  :data:`repro.sim.metrics.PERF` (GF multiplies, BFS level-graph builds,
  DFS augmentations, redraw attempts, processed events).  CI and the
  perf-regression tests (`tests/bench/test_budgets.py`) assert on these,
  so a regression in counted work fails deterministically on any machine.

* :mod:`repro.bench.schema` — the BENCH json schema and its validator.
* :mod:`repro.bench.scenarios` — the built-in micro-benchmark registry.
* :mod:`repro.bench.discover` — adapter running ``benchmarks/bench_*.py``.
* :mod:`repro.bench.runner` — orchestration and report writing.
* :mod:`repro.bench.cli` — the ``repro bench`` subcommand.
"""

from repro.bench.runner import run_bench
from repro.bench.schema import (
    SCHEMA_VERSION,
    BenchSchemaError,
    validate_report,
)
from repro.bench.scenarios import Scenario, builtin_scenarios

__all__ = [
    "BenchSchemaError",
    "SCHEMA_VERSION",
    "Scenario",
    "builtin_scenarios",
    "run_bench",
    "validate_report",
]
