"""Built-in micro-benchmark scenarios over the library's hot paths.

Each scenario is a named, seeded callable; the runner executes it under a
wall-time clock and a :data:`repro.sim.metrics.PERF` snapshot, so a scenario
only has to *do the work* — counted operations are collected for free by the
instrumented kernels.  Scenarios may also return derived ``metrics``
(ratios, checksums, split op-counts from internal differential runs).

Differential scenarios (``*_vs_*`` / ``*_identity``) run the optimized and
the historical code path on identical inputs and **assert equality inline**,
so every ``repro bench`` invocation re-proves that the fast paths did not
buy speed with wrongness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.sim.metrics import measure_ops


@dataclass(frozen=True)
class Scenario:
    """One named benchmark unit.

    Attributes:
        name: Unique dotted name (``micro.rs_encode``).
        group: ``"micro"`` for built-ins, ``"figure"`` for discovered
            ``benchmarks/bench_*.py`` tests.
        params: The sizes/knobs the scenario ran with (recorded verbatim).
        fn: The workload; receives a seeded RNG, returns derived metrics
            (or ``None``).
    """

    name: str
    group: str
    params: Dict[str, object] = field(default_factory=dict)
    fn: Callable[[random.Random], Optional[Dict[str, float]]] = lambda rng: None


def _random_blocks(rng: random.Random, count: int, size: int) -> List[bytes]:
    return [
        bytes(rng.randrange(256) for __ in range(size)) for __ in range(count)
    ]


def _random_array(rng: random.Random, size: int) -> np.ndarray:
    return np.frombuffer(
        bytes(rng.randrange(256) for __ in range(size)), dtype=np.uint8
    ).copy()


# ----------------------------------------------------------------------
# GF(2^8) kernels
# ----------------------------------------------------------------------
def _gf_mul_bulk(size: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.galois import GF256

        a = _random_array(rng, size)
        b = _random_array(rng, size)
        out = GF256.mul_bulk(a, b)
        return {"checksum": float(int(np.bitwise_xor.reduce(out)))}

    return run


def _gf_mul_array(size: int, scalars: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.galois import GF256

        data = _random_array(rng, size)
        checksum = 0
        for __ in range(scalars):
            out = GF256.mul_array(rng.randrange(256), data)
            checksum ^= int(np.bitwise_xor.reduce(out))
        return {"checksum": float(checksum)}

    return run


def _gf_mul_scalar_loop(pairs: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.galois import GF256

        checksum = 0
        for __ in range(pairs):
            checksum ^= GF256.mul(rng.randrange(256), rng.randrange(256))
        return {"checksum": float(checksum)}

    return run


# ----------------------------------------------------------------------
# Stripe codecs
# ----------------------------------------------------------------------
def _rs_encode(n: int, k: int, block: int, stripes: int, scheme: str):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.codec import make_codec

        codec = make_codec(n, k, scheme)
        encoded = 0
        for __ in range(stripes):
            parity = codec.encode(_random_blocks(rng, k, block))
            encoded += len(parity)
        return {"parity_blocks": float(encoded)}

    return run


def _rs_encode_vs_scalar(n: int, k: int, block: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure import matrix as gfm
        from repro.erasure.codec import make_codec

        codec = make_codec(n, k)
        data = _random_blocks(rng, k, block)
        with measure_ops() as batched:
            parity = codec.encode(data)
        shards = codec._stack(data, expected=k)
        with measure_ops() as scalar:
            reference = gfm.apply_to_shards_scalar(
                codec._generator[k:, :], shards
            )
        if [row.tobytes() for row in reference] != parity:
            raise AssertionError("batched encode diverged from scalar oracle")
        calls_batched = batched.get("gf.kernel_calls")
        calls_scalar = scalar.get("gf.kernel_calls")
        return {
            "gf_calls_batched": float(calls_batched),
            "gf_calls_scalar": float(calls_scalar),
            "gf_call_ratio": calls_scalar / max(1, calls_batched),
        }

    return run


def _rs_decode_roundtrip(n: int, k: int, block: int, scheme: str):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.codec import make_codec

        codec = make_codec(n, k, scheme)
        data = _random_blocks(rng, k, block)
        stripe = list(data) + codec.encode(data)
        alive = sorted(rng.sample(range(n), k))
        decoded = codec.decode({index: stripe[index] for index in alive})
        if decoded != data:
            raise AssertionError("decode did not recover the data blocks")
        return {"survivors": float(len(alive))}

    return run


def _rs_decode_matrix_cache(n: int, k: int, block: int, repeats: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.codec import make_codec

        codec = make_codec(n, k)
        alive = sorted(rng.sample(range(n), k))
        with measure_ops() as measured:
            for __ in range(repeats):
                data = _random_blocks(rng, k, block)
                stripe = list(data) + codec.encode(data)
                decoded = codec.decode({i: stripe[i] for i in alive})
                if decoded != data:
                    raise AssertionError("cached decode returned wrong bytes")
        return {
            "cache_hits": float(measured.get("codec.decode_matrix_hits")),
            "cache_misses": float(measured.get("codec.decode_matrix_misses")),
        }

    return run


def _lrc_encode(k: int, groups: int, global_parities: int, block: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.lrc import LocalReconstructionCodec, LRCParams

        codec = LocalReconstructionCodec(LRCParams(k, groups, global_parities))
        parity = codec.encode(_random_blocks(rng, k, block))
        return {"parity_blocks": float(len(parity))}

    return run


def _lrc_local_repair(k: int, groups: int, global_parities: int, block: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.erasure.lrc import LocalReconstructionCodec, LRCParams

        params = LRCParams(k, groups, global_parities)
        codec = LocalReconstructionCodec(params)
        data = _random_blocks(rng, k, block)
        stripe = list(data) + codec.encode(data)
        lost = rng.randrange(k)
        available = {i: stripe[i] for i in range(params.n) if i != lost}
        rebuilt, read = codec.repair(lost, available)
        if rebuilt != data[lost]:
            raise AssertionError("local repair returned wrong bytes")
        return {"blocks_read": float(len(read))}

    return run


# ----------------------------------------------------------------------
# Streaming data plane
# ----------------------------------------------------------------------
def _stream_encode_throughput(
    payload_bytes: int, chunk_sizes: List[int], speedup_chunk: int,
    n: int, k: int,
):
    """Streaming encode MB/s per chunk size, plus the numpy-vs-scalar gap.

    Throughput over the payload is measured with the numpy backend at each
    chunk size; the backend comparison encodes one full stripe of
    ``k * speedup_chunk`` bytes with both backends, asserts byte-identity
    (the scalar path is the oracle), and reports the wall-clock speedup.
    Non-``wall_`` metrics (chunk/stripe counts) are exact.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.erasure.stream import stream_encode

        payload = rng.randbytes(payload_bytes)
        metrics: Dict[str, float] = {"payload_bytes": float(payload_bytes)}
        for chunk_size in chunk_sizes:
            start = time.perf_counter()
            encoded = stream_encode(
                payload, n=n, k=k, chunk_size=chunk_size, backend="numpy"
            )
            elapsed = time.perf_counter() - start
            mb = payload_bytes / float(1 << 20)
            metrics[f"wall_mb_per_s_numpy_c{chunk_size}"] = mb / max(
                elapsed, 1e-9
            )
            metrics[f"stripes_c{chunk_size}"] = float(
                encoded.meta.num_stripes
            )
        stripe_payload = rng.randbytes(k * speedup_chunk)
        start = time.perf_counter()
        fast = stream_encode(
            stripe_payload, n=n, k=k, chunk_size=speedup_chunk,
            backend="numpy",
        )
        wall_numpy = time.perf_counter() - start
        start = time.perf_counter()
        oracle = stream_encode(
            stripe_payload, n=n, k=k, chunk_size=speedup_chunk,
            backend="scalar",
        )
        wall_scalar = time.perf_counter() - start
        if fast.shards != oracle.shards:
            raise AssertionError(
                "numpy streaming encode diverged from the scalar oracle"
            )
        metrics["speedup_chunk_bytes"] = float(speedup_chunk)
        metrics["wall_numpy_s"] = wall_numpy
        metrics["wall_scalar_s"] = wall_scalar
        metrics["wall_speedup_numpy_vs_scalar"] = wall_scalar / max(
            wall_numpy, 1e-9
        )
        return metrics

    return run


def _stream_decode_throughput(
    payload_bytes: int, chunk_sizes: List[int], n: int, k: int
):
    """Streaming decode MB/s per chunk size after dropping ``n - k`` shards.

    Each pass encodes the payload, discards the ``n - k`` lowest-index
    shards (the worst case: every survivor row needs the inverted decode
    matrix), stream-decodes from the survivors, and asserts the payload
    round-trips.  A scalar-backend decode of the smallest-chunk stream
    double-checks backend identity on the decode path.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.erasure.stream import stream_decode, stream_encode

        payload = rng.randbytes(payload_bytes)
        lost = list(range(n - k))
        metrics: Dict[str, float] = {"payload_bytes": float(payload_bytes)}
        for chunk_size in chunk_sizes:
            encoded = stream_encode(
                payload, n=n, k=k, chunk_size=chunk_size, backend="numpy"
            )
            survivors = encoded.available(exclude=lost)
            start = time.perf_counter()
            decoded = stream_decode(survivors, encoded.meta, backend="numpy")
            elapsed = time.perf_counter() - start
            if decoded != payload:
                raise AssertionError("stream decode did not round-trip")
            mb = payload_bytes / float(1 << 20)
            metrics[f"wall_mb_per_s_numpy_c{chunk_size}"] = mb / max(
                elapsed, 1e-9
            )
        small = payload[: k * min(chunk_sizes)]
        encoded = stream_encode(
            small, n=n, k=k, chunk_size=min(chunk_sizes), backend="numpy"
        )
        survivors = encoded.available(exclude=lost)
        if stream_decode(
            survivors, encoded.meta, backend="scalar"
        ) != small:
            raise AssertionError(
                "scalar streaming decode diverged from the numpy path"
            )
        metrics["shards_lost"] = float(len(lost))
        return metrics

    return run


def _stream_repair_throughput(
    payload_bytes: int, chunk_sizes: List[int], n: int, k: int
):
    """Streaming single-shard repair MB/s per chunk size.

    Repairs one data shard and one parity shard per chunk size and asserts
    the rebuilt chunk streams match the originals byte for byte.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.erasure.stream import stream_encode, stream_repair

        payload = rng.randbytes(payload_bytes)
        metrics: Dict[str, float] = {"payload_bytes": float(payload_bytes)}
        repaired_chunks = 0
        for chunk_size in chunk_sizes:
            encoded = stream_encode(
                payload, n=n, k=k, chunk_size=chunk_size, backend="numpy"
            )
            repaired_bytes = 0
            start = time.perf_counter()
            for target in (0, n - 1):
                rebuilt = stream_repair(
                    target,
                    encoded.available(exclude=[target]),
                    encoded.meta,
                    backend="numpy",
                )
                if rebuilt != encoded.shards[target]:
                    raise AssertionError(
                        f"stream repair of shard {target} diverged"
                    )
                repaired_bytes += sum(len(c) for c in rebuilt)
                repaired_chunks += len(rebuilt)
            elapsed = time.perf_counter() - start
            mb = repaired_bytes / float(1 << 20)
            metrics[f"wall_mb_per_s_numpy_c{chunk_size}"] = mb / max(
                elapsed, 1e-9
            )
        metrics["repaired_chunks"] = float(repaired_chunks)
        return metrics

    return run


# ----------------------------------------------------------------------
# Max-flow and EAR placement
# ----------------------------------------------------------------------
def _draw_stripe_layouts(
    rng: random.Random, stripes: int, blocks: int, replicas: int, num_nodes: int
) -> List[List[Tuple[int, List[int]]]]:
    layouts = []
    for __ in range(stripes):
        layouts.append(
            [
                (block, rng.sample(range(num_nodes), replicas))
                for block in range(blocks)
            ]
        )
    return layouts


def _maxflow_fresh(stripes: int, blocks: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.cluster.topology import ClusterTopology
        from repro.core.flowgraph import StripeFlowGraph

        topology = ClusterTopology(nodes_per_rack=10, num_racks=8)
        graph = StripeFlowGraph(topology, c=2)
        layouts = _draw_stripe_layouts(
            rng, stripes, blocks, replicas=3, num_nodes=topology.num_nodes
        )
        feasible = 0
        for layout in layouts:
            flow = graph.max_matching_size(dict(layout))
            feasible += int(flow == blocks)
        return {"feasible_stripes": float(feasible)}

    return run


def _maxflow_incremental_vs_fresh(stripes: int, blocks: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.cluster.topology import ClusterTopology
        from repro.core.flowgraph import StripeFlowGraph

        topology = ClusterTopology(nodes_per_rack=10, num_racks=8)
        graph = StripeFlowGraph(topology, c=2)
        layouts = _draw_stripe_layouts(
            rng, stripes, blocks, replicas=3, num_nodes=topology.num_nodes
        )
        with measure_ops() as incremental:
            accepted_incremental = []
            for layout in layouts:
                session = graph.session()
                accepted = [
                    block
                    for block, nodes in layout
                    if session.try_place(block, nodes)
                ]
                accepted_incremental.append(accepted)
        with measure_ops() as fresh:
            accepted_fresh = []
            for layout in layouts:
                kept: Dict[int, List[int]] = {}
                accepted = []
                for block, nodes in layout:
                    candidate = dict(kept)
                    candidate[block] = nodes
                    if graph.max_matching_size(candidate) == len(candidate):
                        kept[block] = nodes
                        accepted.append(block)
                accepted_fresh.append(accepted)
        if accepted_incremental != accepted_fresh:
            raise AssertionError("incremental max-flow diverged from fresh")
        return {
            "bfs_incremental": float(incremental.get("maxflow.bfs_builds")),
            "bfs_fresh": float(fresh.get("maxflow.bfs_builds")),
        }

    return run


def _ear_place(stripes: int, use_incremental: bool):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.cluster.topology import ClusterTopology
        from repro.core.ear import EncodingAwareReplication
        from repro.erasure.codec import CodeParams

        topology = ClusterTopology.large_scale()
        code = CodeParams(14, 10)
        ear = EncodingAwareReplication(
            topology,
            code,
            rng=random.Random(rng.randrange(2**31)),
            use_incremental=use_incremental,
        )
        with measure_ops() as measured:
            for block_id in range(stripes * code.k):
                ear.place_block(block_id, writer_node=0)
        return {
            "stripes_placed": float(len(ear.store.sealed_stripes())),
            "redraw_attempts": float(measured.get("ear.redraw_attempts")),
            "bfs_builds": float(measured.get("maxflow.bfs_builds")),
        }

    return run


def _ear_identity(stripes: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.cluster.topology import ClusterTopology
        from repro.core.ear import EncodingAwareReplication
        from repro.erasure.codec import CodeParams

        topology = ClusterTopology.large_scale()
        code = CodeParams(14, 10)
        seed = rng.randrange(2**31)
        decisions = {}
        ops = {}
        for mode in (True, False):
            ear = EncodingAwareReplication(
                topology, code, rng=random.Random(seed), use_incremental=mode
            )
            with measure_ops() as measured:
                decisions[mode] = [
                    ear.place_block(block_id, writer_node=0)
                    for block_id in range(stripes * code.k)
                ]
            ops[mode] = measured.get("maxflow.bfs_builds")
        if decisions[True] != decisions[False]:
            raise AssertionError(
                "incremental EAR placements diverged from the fresh solver"
            )
        return {
            "bfs_incremental": float(ops[True]),
            "bfs_fresh": float(ops[False]),
        }

    return run


# ----------------------------------------------------------------------
# Recovery storms
# ----------------------------------------------------------------------
def _degraded_read_decode(num_stripes: int, num_reads: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.recovery import run_storm

        report = run_storm(
            "single_node_loss",
            seed=rng.randrange(2**31),
            policy="ear",
            num_stripes=num_stripes,
            num_reads=num_reads,
        )
        if not report.clean:
            raise AssertionError("single-node-loss storm left data loss")
        summary = report.recovery_summary
        return {
            "degraded_reads": float(report.read_modes.get("degraded", 0)),
            "degraded_read_mean_latency": float(
                summary.get("degraded_read_mean_latency", 0.0)
            ),
            "degraded_read_bytes": float(
                summary.get("degraded_read_bytes", 0.0)
            ),
            "escalations": float(summary.get("escalations", 0.0)),
        }

    return run


def _repair_storm_throughput(num_stripes: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.recovery import run_storm

        seed = rng.randrange(2**31)
        per_policy = {}
        for policy in ("ear", "recovery"):
            report = run_storm(
                "rack_loss", seed=seed, policy=policy,
                num_stripes=num_stripes,
            )
            if not report.clean:
                raise AssertionError(
                    f"rack-loss storm under {policy} left data loss"
                )
            per_policy[policy] = report.recovery_summary
        return {
            "repairs": float(per_policy["ear"].get("repairs", 0.0)),
            "repair_bytes": float(per_policy["ear"].get("repair_bytes", 0.0)),
            "repair_time_mean_ear": float(
                per_policy["ear"].get("repair_time_mean", 0.0)
            ),
            "repair_time_mean_recovery": float(
                per_policy["recovery"].get("repair_time_mean", 0.0)
            ),
        }

    return run


# ----------------------------------------------------------------------
# Metadata journal
# ----------------------------------------------------------------------
def _journal_append(records: int, segment_records: int):
    def run(rng: random.Random) -> Dict[str, float]:
        import os
        import tempfile

        from repro.journal import MetadataJournal
        from repro.journal.records import AddBlock

        with tempfile.TemporaryDirectory() as directory:
            journal = MetadataJournal(
                directory, segment_records=segment_records
            )
            with measure_ops() as measured:
                for index in range(records):
                    journal.append(AddBlock(
                        block_id=index,
                        size=1 + rng.randrange(1 << 20),
                        kind="data",
                        stripe_id=None,
                    ))
                journal.flush()
            journal.close()
            segment_bytes = sum(
                os.path.getsize(os.path.join(directory, name))
                for name in os.listdir(directory)
            )
        appended = measured.get("journal.records_appended")
        return {
            "records": float(appended),
            "bytes_per_record": float(segment_bytes) / max(1.0, appended),
            "segments_rotated": float(
                measured.get("journal.segments_rotated")
            ),
        }

    return run


def _journal_replay():
    def run(rng: random.Random) -> Dict[str, float]:
        import tempfile

        from repro.faults.crash import run_crash_workload
        from repro.journal import recover

        with tempfile.TemporaryDirectory() as directory:
            golden = run_crash_workload(directory, seed=rng.randrange(2**31))
            fingerprint = golden.journal.current_fingerprint()
            golden.journal.close()
            with measure_ops() as measured:
                recovered = recover(
                    directory, golden.topology, k=golden.code.k
                )
            assert recovered.fingerprint() == fingerprint
        return {
            "log_records": float(golden.last_seq),
            "replayed_ops": float(measured.get("journal.replayed_ops")),
        }

    return run


def _journal_checkpoint():
    def run(rng: random.Random) -> Dict[str, float]:
        import os
        import tempfile

        from repro.faults.crash import run_crash_workload
        from repro.journal.wal import list_segments

        with tempfile.TemporaryDirectory() as directory:
            golden = run_crash_workload(directory, seed=rng.randrange(2**31))
            segments_before = len(list_segments(directory))
            with measure_ops() as measured:
                path = golden.journal.checkpoint(prune=True)
            checkpoint_bytes = os.path.getsize(path)
            segments_after = len(list_segments(directory))
            golden.journal.close()
        return {
            "checkpoint_bytes": float(checkpoint_bytes),
            "segments_pruned": float(segments_before - segments_after),
            "checkpoints": float(measured.get("journal.checkpoints")),
        }

    return run


# ----------------------------------------------------------------------
# Simulation kernel
# ----------------------------------------------------------------------
def _sim_event_churn(events: int, processes: int, timeouts: int):
    def run(rng: random.Random) -> Dict[str, float]:
        import sys

        from repro.sim.engine import Event, Simulator
        from repro.sim.metrics import measure_ops as measure

        class DictEvent(Event):
            """The pre-__slots__ layout: same event plus an instance dict."""

        sim = Simulator()
        # sys.getsizeof is deterministic per interpreter build, unlike a
        # tracemalloc trace, so the reduction can be asserted and recorded.
        slotted = sys.getsizeof(Event(sim))
        dict_probe = DictEvent(sim)
        dictful = sys.getsizeof(dict_probe) + sys.getsizeof(dict_probe.__dict__)
        if slotted >= dictful:
            raise AssertionError(
                "slotted events are not smaller than dict-bearing events"
            )

        churn_sim = Simulator()
        delays = [rng.random() for __ in range(processes)]

        def ticker(delay: float):
            for __ in range(timeouts):
                yield churn_sim.timeout(delay)

        for delay in delays:
            churn_sim.process(ticker(delay))
        with measure() as measured:
            churn_sim.run()
        return {
            "bytes_per_event_slots": float(slotted),
            "bytes_per_event_dict": float(dictful),
            "alloc_reduction": 1.0 - slotted / dictful,
            "events_churned": float(measured.get("sim.events")),
        }

    return run


def _sim_calendar_vs_heap(processes: int, timeouts: int):
    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.sim.engine import Simulator
        from repro.sim.metrics import measure_ops as measure

        seed = rng.randrange(2**31)

        def workload(scheduler: str):
            """One seeded run; returns (trace tail, events, wall seconds)."""
            sim = Simulator(scheduler=scheduler)
            local = random.Random(seed)
            trace: List[float] = []
            delays = [
                local.choice((0.25, 0.5, 1.0)) * local.randrange(1, 40)
                for __ in range(processes)
            ]

            def ticker(delay: float):
                for __ in range(timeouts):
                    yield sim.timeout(delay)
                    trace.append(sim.now)

            for delay in delays:
                sim.process(ticker(delay))
            start = time.perf_counter()
            with measure() as measured:
                sim.run()
            wall = time.perf_counter() - start
            return trace, float(measured.get("sim.events")), wall

        heap_trace, heap_events, wall_heap = workload("heap")
        cal_trace, cal_events, wall_cal = workload("calendar")
        if heap_trace != cal_trace or heap_events != cal_events:
            raise AssertionError(
                "calendar scheduler diverged from the heap oracle"
            )
        return {
            "events": heap_events,
            "wall_heap_s": wall_heap,
            "wall_calendar_s": wall_cal,
            "wall_speedup_calendar_vs_heap": wall_heap / max(wall_cal, 1e-9),
        }

    return run


def _parallel_sweep_speedup(trials: int, blocks: int, workers: int):
    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.erasure.codec import CodeParams
        from repro.experiments.loadbalance import (
            LoadBalanceConfig,
            _storage_trial,
        )
        from repro.parallel import SweepExecutor, TrialSpec

        config = LoadBalanceConfig(
            num_racks=8, nodes_per_rack=4, code=CodeParams(6, 4)
        )
        seed = rng.randrange(2**31)
        specs = [
            TrialSpec(
                fn=_storage_trial,
                config={
                    "policy_name": "rr",
                    "config": config,
                    "num_blocks": blocks,
                },
                seed=seed + index,
                tag="bench.sweep_speedup",
            )
            for index in range(trials)
        ]
        start = time.perf_counter()
        sequential = SweepExecutor(workers=0).map_trials(specs)
        wall_sequential = time.perf_counter() - start
        start = time.perf_counter()
        parallel = SweepExecutor(workers=workers).map_trials(specs)
        wall_parallel = time.perf_counter() - start
        if sequential != parallel:
            raise AssertionError("parallel sweep diverged from sequential")
        # "wall_"-prefixed metrics are machine noise by convention; the
        # runner's differential comparison strips them (see _strip_wall).
        return {
            "trials": float(trials),
            "workers": float(workers),
            "wall_sequential_s": wall_sequential,
            "wall_parallel_s": wall_parallel,
            "wall_speedup": wall_sequential / max(wall_parallel, 1e-9),
        }

    return run


def _lint_whole_program(files: int, funcs: int):
    """Cold + warm whole-program lint over a synthetic package.

    The corpus is generated (never ``src/repro`` itself) so the op
    counts — ``lint.files_analyzed`` / ``lint.functions_analyzed`` on
    the cold pass, ``lint.files_cached`` on the warm pass — are exact
    and stable across PRs that merely grow the real package.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        import tempfile
        import time
        from pathlib import Path

        from repro.lint.config import LintConfig
        from repro.lint.project import LintCache, lint_project

        with tempfile.TemporaryDirectory() as root:
            pkg = Path(root) / "lintbench"
            pkg.mkdir()
            (pkg / "__init__.py").write_text("", encoding="utf-8")
            for index in range(files):
                lines = [f'"""Synthetic module {index}."""']
                if index:
                    lines.append(
                        f"from lintbench.mod{index - 1} import fn{index - 1}_0"
                    )
                for fn in range(funcs):
                    lines.append(f"def fn{index}_{fn}(x):")
                    lines.append(f"    return x + {rng.randrange(100)}")
                (pkg / f"mod{index}.py").write_text(
                    "\n".join(lines) + "\n", encoding="utf-8"
                )
            config = LintConfig()
            cache_dir = Path(root) / "cache"
            start = time.perf_counter()
            cold = lint_project([str(pkg)], config, cache=LintCache(cache_dir))
            wall_cold = time.perf_counter() - start
            start = time.perf_counter()
            warm = lint_project([str(pkg)], config, cache=LintCache(cache_dir))
            wall_warm = time.perf_counter() - start
        if cold.findings or warm.findings:
            raise AssertionError("synthetic corpus should lint clean")
        if warm.files_cached < 0.9 * warm.files_checked:
            raise AssertionError("warm cache skipped fewer than 90% of files")
        return {
            "files": float(cold.files_checked),
            "functions_analyzed": float(cold.functions_analyzed),
            "warm_cached_fraction": warm.files_cached / warm.files_checked,
            "wall_cold_s": wall_cold,
            "wall_warm_s": wall_warm,
        }

    return run


def _pipeline_encode_throughput(
    block_bytes: int, chunk_sizes: List[int], n: int, k: int,
):
    """Hop-ordered pipelined parity MB/s per chunk size, plus oracles.

    Every measured pass folds the ``k`` blocks in a shuffled hop order
    and asserts byte-identity against the whole-stripe
    ``codec.encode`` — the invariant the pipelined transition strategy
    rests on.  At the smallest chunk size the scalar backend is run as a
    second oracle.  Non-``wall_`` metrics (hop counts, GF kernel calls)
    are exact.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        import time

        from repro.erasure.codec import make_codec
        from repro.pipeline.gfstream import pipelined_parity

        codec = make_codec(n, k)
        blocks = [rng.randbytes(block_bytes) for __ in range(k)]
        expected = [bytes(p) for p in codec.encode(blocks)]
        metrics: Dict[str, float] = {"block_bytes": float(block_bytes)}
        mb = k * block_bytes / float(1 << 20)
        for chunk_size in chunk_sizes:
            order = list(range(k))
            rng.shuffle(order)
            with measure_ops() as measured:
                start = time.perf_counter()
                parity = pipelined_parity(
                    blocks, codec, hop_order=order,
                    chunk_size=chunk_size, backend="numpy",
                )
                elapsed = time.perf_counter() - start
            if [bytes(p) for p in parity] != expected:
                raise AssertionError(
                    "pipelined parity diverged from whole-stripe encode"
                )
            metrics[f"wall_mb_per_s_numpy_c{chunk_size}"] = mb / max(
                elapsed, 1e-9
            )
            metrics[f"gf_kernel_calls_c{chunk_size}"] = float(
                measured.get("gf.kernel_calls")
            )
            metrics[f"hops_c{chunk_size}"] = float(
                measured.get("pipeline.hops")
            )
        order = list(range(k))
        rng.shuffle(order)
        start = time.perf_counter()
        oracle = pipelined_parity(
            blocks, codec, hop_order=order,
            chunk_size=min(chunk_sizes), backend="scalar",
        )
        wall_scalar = time.perf_counter() - start
        if [bytes(p) for p in oracle] != expected:
            raise AssertionError(
                "scalar pipelined parity diverged from whole-stripe encode"
            )
        metrics["wall_scalar_s"] = wall_scalar
        return metrics

    return run


def _pipeline_headtohead(stripes: int):
    """RR vs EAR vs pipelined encoding wave on one seeded cluster.

    Sequential (workers=None) so the scenario is self-contained; all
    metrics come off the simulated clock and network counters, hence
    exact and seed-stable.  The deltas are the tentpole's headline:
    encoding-window and core-link-byte savings of the pipelined strategy
    over the download strategies.
    """

    def run(rng: random.Random) -> Dict[str, float]:
        from repro.pipeline.headtohead import head_to_head

        seed = rng.randrange(2**31)
        results = {
            r["contender"]: r
            for r in head_to_head(
                seeds=(seed,), num_racks=6, nodes_per_rack=4,
                num_stripes=stripes, disturb=False, workers=None,
            )
        }
        if not all(r["clean"] for r in results.values()):
            raise AssertionError("head-to-head wave was not clean")
        pipeline = results["pipeline"]
        if pipeline["parity_verified"] != pipeline["stripes_encoded"]:
            raise AssertionError("pipelined parity failed verification")
        metrics: Dict[str, float] = {"stripes": float(stripes)}
        for contender, result in sorted(results.items()):
            metrics[f"encode_window_{contender}"] = float(
                result["encode_window"]
            )
            metrics[f"core_bytes_{contender}"] = float(result["core_bytes"])
        metrics["window_saving_vs_rr"] = (
            metrics["encode_window_rr"] - metrics["encode_window_pipeline"]
        )
        metrics["window_saving_vs_ear"] = (
            metrics["encode_window_ear"] - metrics["encode_window_pipeline"]
        )
        metrics["core_saving_vs_rr"] = (
            metrics["core_bytes_rr"] - metrics["core_bytes_pipeline"]
        )
        return metrics

    return run


def _sim_events(processes: int, timeouts: int):
    def run(rng: random.Random) -> Dict[str, float]:
        from repro.sim.engine import Simulator

        sim = Simulator()
        delays = [rng.random() for __ in range(processes)]

        def ticker(delay: float):
            for __ in range(timeouts):
                yield sim.timeout(delay)

        for delay in delays:
            sim.process(ticker(delay))
        with measure_ops() as measured:
            sim.run()
        return {"events": float(measured.get("sim.events"))}

    return run


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def builtin_scenarios(smoke: bool = False) -> List[Scenario]:
    """The built-in micro scenarios, sized for full or ``--smoke`` runs."""
    array = 1 << 14 if smoke else 1 << 20
    block = 4096 if smoke else 65536
    stripes = 1 if smoke else 4
    layouts = 20 if smoke else 200
    ear_stripes = 2 if smoke else 12
    processes = 20 if smoke else 100
    timeouts = 50 if smoke else 500
    journal_records = 200 if smoke else 2000
    stream_payload = 1 << 18 if smoke else 1 << 22
    stream_chunks = [1 << 14, 1 << 16] if smoke else [1 << 16, 1 << 18, 1 << 20]
    # The backend shoot-out encodes one full (6, 4) stripe at this chunk
    # size with both backends; the pure-Python oracle bounds the budget.
    speedup_chunk = 1 << 16 if smoke else 1 << 20

    def scenario(name: str, params: Dict[str, object], fn) -> Scenario:
        return Scenario(name=f"micro.{name}", group="micro", params=params, fn=fn)

    return [
        scenario(
            "gf_mul_bulk", {"bytes": array}, _gf_mul_bulk(array)
        ),
        scenario(
            "gf_mul_array",
            {"bytes": array // 16, "scalars": 64},
            _gf_mul_array(array // 16, 64),
        ),
        scenario(
            "gf_mul_scalar_loop", {"pairs": 10_000}, _gf_mul_scalar_loop(10_000)
        ),
        scenario(
            "rs_encode",
            {"n": 14, "k": 10, "block_bytes": block, "stripes": stripes},
            _rs_encode(14, 10, block, stripes, "reed-solomon"),
        ),
        scenario(
            "rs_encode_vs_scalar",
            {"n": 14, "k": 10, "block_bytes": block},
            _rs_encode_vs_scalar(14, 10, block),
        ),
        scenario(
            "rs_decode_roundtrip",
            {"n": 14, "k": 10, "block_bytes": block},
            _rs_decode_roundtrip(14, 10, block, "reed-solomon"),
        ),
        scenario(
            "rs_decode_matrix_cache",
            {"n": 14, "k": 10, "block_bytes": block // 4, "repeats": 8},
            _rs_decode_matrix_cache(14, 10, block // 4, 8),
        ),
        scenario(
            "cauchy_encode",
            {"n": 14, "k": 10, "block_bytes": block, "stripes": stripes},
            _rs_encode(14, 10, block, stripes, "cauchy-rs"),
        ),
        scenario(
            "cauchy_decode_roundtrip",
            {"n": 14, "k": 10, "block_bytes": block},
            _rs_decode_roundtrip(14, 10, block, "cauchy-rs"),
        ),
        scenario(
            "lrc_encode",
            {"k": 12, "local_groups": 2, "global_parities": 2, "block_bytes": block},
            _lrc_encode(12, 2, 2, block),
        ),
        scenario(
            "lrc_local_repair",
            {"k": 12, "local_groups": 2, "global_parities": 2, "block_bytes": block},
            _lrc_local_repair(12, 2, 2, block),
        ),
        scenario(
            "stream_encode",
            {
                "n": 6,
                "k": 4,
                "payload_bytes": stream_payload,
                "chunk_sizes": list(stream_chunks),
                "speedup_chunk_bytes": speedup_chunk,
            },
            _stream_encode_throughput(
                stream_payload, stream_chunks, speedup_chunk, 6, 4
            ),
        ),
        scenario(
            "stream_decode",
            {
                "n": 6,
                "k": 4,
                "payload_bytes": stream_payload,
                "chunk_sizes": list(stream_chunks),
            },
            _stream_decode_throughput(stream_payload, stream_chunks, 6, 4),
        ),
        scenario(
            "stream_repair",
            {
                "n": 6,
                "k": 4,
                "payload_bytes": stream_payload,
                "chunk_sizes": list(stream_chunks),
            },
            _stream_repair_throughput(stream_payload, stream_chunks, 6, 4),
        ),
        scenario(
            "pipeline_encode",
            {
                "n": 6,
                "k": 4,
                "block_bytes": stream_payload // 4,
                "chunk_sizes": list(stream_chunks),
            },
            _pipeline_encode_throughput(
                stream_payload // 4, stream_chunks, 6, 4
            ),
        ),
        scenario(
            "pipeline_headtohead",
            {"stripes": 2 if smoke else 4, "contenders": "rr/ear/pipeline"},
            _pipeline_headtohead(2 if smoke else 4),
        ),
        scenario(
            "maxflow_fresh",
            {"stripes": layouts, "blocks": 10},
            _maxflow_fresh(layouts, 10),
        ),
        scenario(
            "maxflow_incremental_vs_fresh",
            {"stripes": layouts, "blocks": 10},
            _maxflow_incremental_vs_fresh(layouts, 10),
        ),
        scenario(
            "ear_place_incremental",
            {"stripes": ear_stripes, "code": "(14,10)"},
            _ear_place(ear_stripes, True),
        ),
        scenario(
            "ear_incremental_vs_fresh_identity",
            {"stripes": max(1, ear_stripes // 2), "code": "(14,10)"},
            _ear_identity(max(1, ear_stripes // 2)),
        ),
        scenario(
            "sim_event_throughput",
            {"processes": processes, "timeouts": timeouts},
            _sim_events(processes, timeouts),
        ),
        scenario(
            "sim_event_churn",
            {
                "events": processes * timeouts,
                "processes": processes,
                "timeouts": timeouts,
            },
            _sim_event_churn(processes * timeouts, processes, timeouts),
        ),
        scenario(
            "sim_calendar_vs_heap",
            {"processes": processes, "timeouts": timeouts},
            _sim_calendar_vs_heap(processes, timeouts),
        ),
        scenario(
            "parallel_sweep_speedup",
            {
                "trials": 2 if smoke else 8,
                "blocks": 200 if smoke else 2000,
                "workers": 2,
            },
            _parallel_sweep_speedup(
                2 if smoke else 8, 200 if smoke else 2000, 2
            ),
        ),
        scenario(
            "degraded_read_decode",
            {
                "stripes": 2 if smoke else 4,
                "reads": 3 if smoke else 8,
                "scenario": "single_node_loss",
            },
            _degraded_read_decode(2 if smoke else 4, 3 if smoke else 8),
        ),
        scenario(
            "repair_storm_throughput",
            {"stripes": 2 if smoke else 4, "scenario": "rack_loss"},
            _repair_storm_throughput(2 if smoke else 4),
        ),
        scenario(
            "lint_whole_program",
            {
                "files": 6 if smoke else 40,
                "functions_per_file": 3 if smoke else 8,
            },
            _lint_whole_program(6 if smoke else 40, 3 if smoke else 8),
        ),
        scenario(
            "journal_append_throughput",
            {"records": journal_records, "segment_records": 256},
            _journal_append(journal_records, 256),
        ),
        scenario(
            "journal_replay",
            {"workload": "crash-drill"},
            _journal_replay(),
        ),
        scenario(
            "journal_checkpoint",
            {"workload": "crash-drill", "prune": True},
            _journal_checkpoint(),
        ),
    ]
