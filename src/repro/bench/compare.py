"""``repro bench compare``: gate a new bench report against a baseline.

Counted work (the ``ops`` maps) is deterministic for a fixed seed, so it
is compared **exactly** — any divergence on a common scenario fails the
gate.  Wall times are machine noise; they only fail when the new report
regresses beyond ``--max-regress`` percent.  Scenarios present only in
the new report are informational (no baseline to hold them to); scenarios
*missing* from the new report fail — losing coverage is a regression too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union


@dataclass
class CompareResult:
    """Outcome of one report comparison."""

    failures: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    compared: int = 0

    @property
    def ok(self) -> bool:
        """True when no common scenario regressed or went missing."""
        return not self.failures


def _ops_divergence(old_ops: Dict, new_ops: Dict) -> str:
    """First differing counter, as ``counter: old -> new`` detail."""
    for key in sorted(set(old_ops) | set(new_ops)):
        old_value = old_ops.get(key, 0)
        new_value = new_ops.get(key, 0)
        if old_value != new_value:
            return f"{key}: {old_value} -> {new_value}"
    return "ops maps differ"


def compare_reports(
    old: Dict,
    new: Dict,
    max_regress: float = 10.0,
    ops_only: bool = False,
    ignore: Sequence[str] = (),
) -> CompareResult:
    """Compare two bench reports scenario by scenario.

    Args:
        old: Baseline report (parsed ``BENCH_<tag>.json``).
        new: Candidate report.
        max_regress: Allowed wall-time regression in percent.
        ops_only: Skip wall-time thresholds entirely — the mode CI uses
            across machines, where wall times are not comparable.
        ignore: Scenario names excluded from the comparison — for
            *documented* op-attribution changes (the invocation should
            say why each name is listed).  Ignored scenarios surface as
            notes so they cannot disappear silently.
    """
    result = CompareResult()
    ignored = set(ignore)
    old_map = {entry["name"]: entry for entry in old["scenarios"]}
    new_map = {entry["name"]: entry for entry in new["scenarios"]}
    if old.get("seed") != new.get("seed"):
        result.failures.append(
            f"seed mismatch: old {old.get('seed')} vs new {new.get('seed')} "
            "(ops are only comparable for identical seeds)"
        )
        return result
    for name in sorted(old_map):
        if name in ignored:
            result.notes.append(f"{name}: ignored by request")
            continue
        if name not in new_map:
            result.failures.append(f"{name}: missing from the new report")
            continue
        old_entry, new_entry = old_map[name], new_map[name]
        result.compared += 1
        if new_entry.get("error"):
            result.failures.append(f"{name}: failed ({new_entry['error']})")
            continue
        if old_entry.get("error"):
            result.notes.append(f"{name}: baseline had failed; now passes")
            continue
        if old_entry["ops"] != new_entry["ops"]:
            result.failures.append(
                f"{name}: ops diverged "
                f"({_ops_divergence(old_entry['ops'], new_entry['ops'])})"
            )
            continue
        if ops_only:
            continue
        old_wall = float(old_entry["wall_time_s"])
        new_wall = float(new_entry["wall_time_s"])
        limit = old_wall * (1.0 + max_regress / 100.0)
        if old_wall > 0 and new_wall > limit:
            change = 100.0 * (new_wall / old_wall - 1.0)
            result.failures.append(
                f"{name}: wall time regressed {change:+.1f}% "
                f"(old {old_wall:.4f}s, new {new_wall:.4f}s, "
                f"limit +{max_regress:.1f}%)"
            )
    for name in sorted(set(new_map) - set(old_map)):
        result.notes.append(f"{name}: new scenario (no baseline)")
    return result


def load_report(path: Union[str, Path]) -> Dict:
    """Read and minimally validate a bench report file."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "scenarios" not in report:
        raise ValueError(f"{path} is not a bench report (no 'scenarios' key)")
    return report
