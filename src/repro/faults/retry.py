"""Retry machinery for simulation processes.

A :class:`RetryPolicy` bounds how stubbornly a pipeline fights transient
faults: per-attempt timeout (straggler kill), exponential backoff with
seeded jitter between attempts, and a hard attempt cap.  The
:func:`with_retries` driver runs *fresh* attempt generators so every retry
re-plans against current cluster state — a repair that lost its source to
a node flap picks an alternate replica on the next attempt instead of
hammering the dead one.

All randomness comes from an injected ``random.Random`` so chaos drills
stay bit-identical across runs with the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Optional, Tuple, Type

from repro.sim.engine import Simulator
from repro.sim.metrics import ResilienceMetrics
from repro.sim.netsim import TransferAborted


class RetryExhausted(RuntimeError):
    """Every allowed attempt failed; carries the final failure.

    Attributes:
        attempts: How many attempts were made.
        last_error: The exception that killed the final attempt.
    """

    def __init__(self, attempts: int, last_error: Optional[BaseException]) -> None:
        super().__init__(f"gave up after {attempts} attempts: {last_error!r}")
        self.attempts = attempts
        self.last_error = last_error


class AttemptTimeout(RuntimeError):
    """An attempt overran the policy's per-attempt timeout (a straggler)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds and pacing for retried operations.

    Attributes:
        max_attempts: Total attempts allowed (first try included).
        base_delay: Backoff before the first retry, in seconds.
        multiplier: Backoff growth factor per retry.
        max_delay: Backoff ceiling, in seconds.
        jitter: Extra uniform-random fraction of the delay added on top
            (0.5 means up to +50%), drawn from the injected rng.
        timeout: Per-attempt wall-clock cap; ``None`` disables straggler
            detection and waits for attempts indefinitely.
    """

    max_attempts: int = 5
    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.5
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays cannot be negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter cannot be negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive when given")

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Delay before retry ``retry_number`` (1-based), with jitter.

        The schedule is exponential: ``base_delay * multiplier**(n-1)``
        capped at ``max_delay``, plus a seeded uniform jitter fraction so
        simultaneous retriers de-synchronize deterministically.
        """
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        delay = min(
            self.base_delay * self.multiplier ** (retry_number - 1),
            self.max_delay,
        )
        if self.jitter > 0:
            delay += delay * self.jitter * rng.random()
        return delay


#: Bounded decode-retry policy for the degraded-read path: a client
#: blocked on a read should fail over to repair-queue escalation within
#: seconds, not ride out the repair pipeline's 60 s backoff ceiling.
#: Three attempts with 0.25 s -> 0.5 s exponential backoff (2 s cap,
#: +50% seeded jitter) keeps the worst-case inline wait around a second.
DEGRADED_READ_RETRY = RetryPolicy(
    max_attempts=3,
    base_delay=0.25,
    multiplier=2.0,
    max_delay=2.0,
    jitter=0.5,
)


#: Builds a fresh attempt generator; receives the 0-based attempt index.
AttemptFactory = Callable[[int], Generator]


def with_retries(
    sim: Simulator,
    attempt_factory: AttemptFactory,
    policy: RetryPolicy,
    rng: random.Random,
    retry_on: Tuple[Type[BaseException], ...] = (TransferAborted,),
    metrics: Optional[ResilienceMetrics] = None,
    label: str = "operation",
) -> Generator:
    """Run attempts until one succeeds (generator; run inside a process).

    Each attempt is a *new* generator from ``attempt_factory`` executed as
    its own process, so a failed attempt's partial work unwinds cleanly
    (transfers release their links) and the next attempt re-plans from
    scratch.  Exceptions not listed in ``retry_on`` propagate immediately.

    Returns:
        The successful attempt's return value (generator return value).

    Raises:
        RetryExhausted: After ``policy.max_attempts`` failed attempts.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        proc = sim.process(attempt_factory(attempt))
        try:
            if policy.timeout is None:
                result = yield proc
                return result
            timer = sim.timeout(policy.timeout)
            yield sim.any_of([proc, timer])
            if proc.triggered:
                # Re-yielding a triggered process returns its value or
                # re-raises its failure into this generator.
                result = yield proc
                return result
            # Straggler: kill the attempt and fall through to the backoff.
            proc.interrupt(f"{label}: attempt {attempt} timed out")
            if metrics is not None:
                metrics.record_straggler()
            last_error = AttemptTimeout(
                f"{label}: attempt {attempt} overran {policy.timeout}s"
            )
        except retry_on as exc:
            last_error = exc
            if metrics is not None and isinstance(exc, TransferAborted):
                metrics.record_abort()
        if attempt + 1 < policy.max_attempts:
            if metrics is not None:
                metrics.record_retry()
            yield sim.timeout(policy.backoff(attempt + 1, rng))
    raise RetryExhausted(policy.max_attempts, last_error)
