"""Chaos schedule and injector: scripted transient faults as processes.

The chaos layer stresses the encoding/repair pipelines the way a real
cluster would: endpoints flap and come back with their data intact,
whole racks drop off the core for a while, individual NICs degrade into
stragglers, and blocks silently rot on disk.  Faults are *transient*
(state is restored) — permanent failures with metadata loss stay the
:class:`~repro.hdfs.failures.FailureInjector`'s job.

Schedules are plain data (sorted :class:`ChaosEvent` lists), so a drill
can be replayed bit-identically: every random choice is drawn from an
injected seeded rng, and the injector itself is deterministic given the
schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from repro.cluster.block import BlockId
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.sim.engine import Simulator
from repro.sim.metrics import ResilienceMetrics
from repro.sim.netsim import Network

#: Chaos event kinds.
NODE_FLAP = "node_flap"
RACK_OUTAGE = "rack_outage"
DEGRADE_NODE = "degrade_node"
CORRUPT_BLOCK = "corrupt_block"

KINDS = (NODE_FLAP, RACK_OUTAGE, DEGRADE_NODE, CORRUPT_BLOCK)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault.

    Attributes:
        time: Simulation time the fault strikes.
        kind: One of :data:`KINDS`.
        target: Node id (flap/degrade), rack id (outage), or block id
            (corruption).
        duration: How long a transient fault lasts before restoration
            (ignored for corruption, which persists until scrubbed).
        factor: Bandwidth multiplier in ``(0, 1]`` for degradations.
    """

    time: float
    kind: str
    target: int
    duration: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("event time cannot be negative")
        if self.kind in (NODE_FLAP, RACK_OUTAGE, DEGRADE_NODE):
            if self.duration <= 0:
                raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind == DEGRADE_NODE and not 0 < self.factor <= 1:
            raise ValueError("degrade factor must lie in (0, 1]")


@dataclass
class ChaosSchedule:
    """An ordered fault script.

    Attributes:
        events: The faults, kept sorted by strike time.
    """

    events: List[ChaosEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.time, e.kind, e.target))

    def add(self, event: ChaosEvent) -> None:
        """Insert one event, keeping the script sorted."""
        self.events.append(event)
        self.events.sort(key=lambda e: (e.time, e.kind, e.target))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def random_schedule(
        cls,
        topology: ClusterTopology,
        rng: random.Random,
        horizon: float,
        num_flaps: int = 4,
        flap_duration: Tuple[float, float] = (5.0, 30.0),
        num_rack_outages: int = 1,
        outage_duration: Tuple[float, float] = (20.0, 60.0),
        num_degradations: int = 2,
        degrade_duration: Tuple[float, float] = (20.0, 60.0),
        degrade_factor: Tuple[float, float] = (0.2, 0.6),
        corrupt_blocks: Sequence[BlockId] = (),
    ) -> "ChaosSchedule":
        """Draw a plausible mixed-fault script from a seeded rng.

        Strike times are uniform over ``[0, horizon)``; durations and
        degradation factors are uniform over their given ranges.  Blocks
        to corrupt are supplied by the caller (the schedule cannot know
        which blocks will exist) and spread over the horizon.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        nodes = sorted(topology.node_ids())
        racks = sorted(topology.rack_ids())
        events: List[ChaosEvent] = []
        for __ in range(num_flaps):
            events.append(ChaosEvent(
                time=rng.uniform(0, horizon),
                kind=NODE_FLAP,
                target=rng.choice(nodes),
                duration=rng.uniform(*flap_duration),
            ))
        for __ in range(num_rack_outages):
            events.append(ChaosEvent(
                time=rng.uniform(0, horizon),
                kind=RACK_OUTAGE,
                target=rng.choice(racks),
                duration=rng.uniform(*outage_duration),
            ))
        for __ in range(num_degradations):
            events.append(ChaosEvent(
                time=rng.uniform(0, horizon),
                kind=DEGRADE_NODE,
                target=rng.choice(nodes),
                duration=rng.uniform(*degrade_duration),
                factor=rng.uniform(*degrade_factor),
            ))
        for block_id in corrupt_blocks:
            events.append(ChaosEvent(
                time=rng.uniform(0, horizon),
                kind=CORRUPT_BLOCK,
                target=block_id,
            ))
        return cls(events=events)


class ChaosInjector:
    """Executes a :class:`ChaosSchedule` against the live simulation.

    Args:
        sim: Simulation kernel.
        network: Endpoint liveness and bandwidth knobs.
        namenode: Needed for corruption (marks replicas in the store);
            optional when the schedule contains no corruption events.
        schedule: The fault script.
        rng: Random source for corruption replica choice.
        resilience: Optional fault metrics (outage windows, injected
            corruption counts).
        recovery: Optional
            :class:`~repro.recovery.metrics.RecoveryMetrics`; applied
            chaos events are tallied per kind for storm reports.

    Faults overlap freely: a rack outage may cover an already-flapping
    node.  Liveness restoration is reference-counted per node, so a node
    downed by both a flap and a rack outage only returns once *both*
    lift.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        schedule: ChaosSchedule,
        namenode=None,
        rng: Optional[random.Random] = None,
        resilience: Optional[ResilienceMetrics] = None,
        recovery=None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.schedule = schedule
        self.namenode = namenode
        self.rng = rng if rng is not None else random.Random(0)
        self.resilience = resilience
        self.recovery = recovery
        self.applied: List[ChaosEvent] = []
        self.skipped: List[ChaosEvent] = []
        self._down_refs: dict = {}

    def start(self):
        """Launch the script runner; returns its process."""
        return self.sim.process(self.run())

    def run(self) -> Generator:
        """Fire every scheduled event at its time (generator)."""
        for event in self.schedule:
            delay = event.time - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self._apply(event)
        return len(self.applied)

    # ------------------------------------------------------------------
    def _apply(self, event: ChaosEvent) -> None:
        if self.recovery is not None:
            self.recovery.record_storm_event(event.kind)
        if event.kind == NODE_FLAP:
            self._take_down([event.target], event, label=f"node {event.target}")
        elif event.kind == RACK_OUTAGE:
            nodes = sorted(self.network.topology.nodes_in_rack(event.target))
            self._take_down(nodes, event, label=f"rack {event.target}")
        elif event.kind == DEGRADE_NODE:
            self._degrade(event)
        elif event.kind == CORRUPT_BLOCK:
            self._corrupt(event)

    def _take_down(self, nodes: List[NodeId], event: ChaosEvent, label: str) -> None:
        for node in nodes:
            self._down_refs[node] = self._down_refs.get(node, 0) + 1
            self.network.fail_endpoint(node)
        if self.resilience is not None:
            self.resilience.begin_outage(label, self.sim.now)
        self.applied.append(event)
        self.sim.process(self._restore_later(nodes, event.duration, label))

    def _restore_later(
        self, nodes: List[NodeId], duration: float, label: str
    ) -> Generator:
        yield self.sim.timeout(duration)
        for node in nodes:
            self._down_refs[node] -= 1
            if self._down_refs[node] <= 0:
                del self._down_refs[node]
                self.network.restore_endpoint(node)
        if self.resilience is not None:
            self.resilience.end_outage(label, self.sim.now)

    def _degrade(self, event: ChaosEvent) -> None:
        node = event.target
        up = self.network.node_up_bandwidth(node)
        down = self.network.node_down_bandwidth(node)
        self.network.set_node_bandwidth(
            node, up=up * event.factor, down=down * event.factor
        )
        self.applied.append(event)
        self.sim.process(self._undegrade_later(node, up, down, event.duration))

    def _undegrade_later(
        self, node: NodeId, up: float, down: float, duration: float
    ) -> Generator:
        yield self.sim.timeout(duration)
        self.network.set_node_bandwidth(node, up=up, down=down)

    def _corrupt(self, event: ChaosEvent) -> None:
        """Rot one replica of the target block on a live node."""
        if self.namenode is None:
            raise ValueError("corruption events need a namenode")
        store = self.namenode.block_store
        block_id = event.target
        try:
            replicas = [
                n for n in store.healthy_replica_nodes(block_id)
                if self.network.is_up(n)
            ]
        except KeyError:
            replicas = []
        if not replicas:
            # The block was deleted (encoding trimmed it) or everything
            # is down: nothing to rot right now.
            self.skipped.append(event)
            return
        node = self.rng.choice(replicas)
        store.mark_corrupted(block_id, node)
        if self.resilience is not None:
            self.resilience.record_corruption_injected()
        self.applied.append(event)
