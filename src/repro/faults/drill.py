"""The chaos drill: every fault path exercised in one deterministic run.

Builds a small EAR cluster, starts a background batch encode through the
MapReduce pipeline, and unleashes the full chaos menu on it — transient
node flaps, one whole-rack outage, NIC degradations, silent block
corruption, and one *permanent* node failure repaired through the
prioritized queue.  The drill passes when nothing is lost: every stripe
finishes encoding, every repair lands, and the resilience metrics show
bounded retries.

Everything is derived from one seed, so two runs with the same seed
produce bit-identical states — asserted via :func:`cluster_fingerprint`,
a sha256 over the final placement map, repair outcomes, and metrics.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology
from repro.core.policy import ReplicationScheme
from repro.core.relocation import BlockMover
from repro.erasure.codec import CodeParams
from repro.experiments.runner import build_cluster, populate_until_sealed
from repro.faults.chaos import ChaosInjector, ChaosSchedule
from repro.faults.repair import RepairQueue, UNRECOVERABLE
from repro.faults.retry import RetryPolicy
from repro.faults.scrubber import Scrubber
from repro.hdfs.failures import FailureInjector
from repro.sim.metrics import ResilienceMetrics


@dataclass
class ChaosDrillReport:
    """Everything a drill run measured (deterministic for a given seed)."""

    seed: int
    sim_time: float
    stripes_total: int
    stripes_encoded: int
    blocks_total: int
    repair_outcomes: Dict[str, int]
    unrecoverable: Tuple[int, ...]
    data_loss_events: int
    placement_violations: int
    relocation_requests: int
    encode_errors: Tuple[str, ...]
    metrics: Dict[str, float] = field(default_factory=dict)
    fingerprint: str = ""

    @property
    def clean(self) -> bool:
        """True when the drill lost nothing and every stripe encoded."""
        return (
            not self.unrecoverable
            and self.data_loss_events == 0
            and not self.encode_errors
            and self.stripes_encoded == self.stripes_total
        )

    def summary(self) -> Dict[str, object]:
        """Flat printable snapshot (CLI table source)."""
        out: Dict[str, object] = {
            "seed": self.seed,
            "sim_time": round(self.sim_time, 3),
            "stripes_encoded": f"{self.stripes_encoded}/{self.stripes_total}",
            "blocks_total": self.blocks_total,
            "unrecoverable": len(self.unrecoverable),
            "data_loss_events": self.data_loss_events,
            "placement_violations": self.placement_violations,
            "relocation_requests": self.relocation_requests,
            "clean": self.clean,
            "fingerprint": self.fingerprint[:16],
        }
        for key, value in sorted(self.repair_outcomes.items()):
            out[f"repairs_{key}"] = value
        for key, value in sorted(self.metrics.items()):
            out[key] = round(value, 4) if isinstance(value, float) else value
        return out


def cluster_fingerprint(setup, repair_queue, resilience, encoder) -> str:
    """sha256 over final placements, repair outcomes, and fault metrics.

    Identical seeds must yield identical fingerprints; any nondeterminism
    anywhere in the chaos/repair pipeline shows up here first.
    """
    store = setup.namenode.block_store
    payload = {
        "now": repr(setup.sim.now),
        "placements": {
            str(block.block_id): sorted(store.replica_nodes(block.block_id))
            for block in store.blocks()
        },
        "corrupted": [list(pair) for pair in store.corrupted_replicas()],
        "outcomes": dict(sorted(repair_queue.outcomes.items())),
        "encoded": sorted(r.stripe_id for r in encoder.records),
        "metrics": {k: repr(v) for k, v in sorted(resilience.summary().items())},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_chaos_drill(
    seed: int = 0,
    num_racks: int = 8,
    nodes_per_rack: int = 4,
    num_stripes: int = 12,
    code: Optional[CodeParams] = None,
    block_size: int = 256_000,
    bandwidth: float = 1e6,
    horizon: float = 40.0,
    num_flaps: int = 4,
    num_rack_outages: int = 1,
    num_degradations: int = 2,
    num_corruptions: int = 3,
    permanent_failure: bool = True,
    scrub_interval: float = 10.0,
    num_map_tasks: int = 6,
) -> ChaosDrillReport:
    """Run one full chaos drill and return its report.

    All randomness derives from ``seed``; the report's ``fingerprint`` is
    bit-identical across runs with identical arguments.
    """
    code = CodeParams(6, 4) if code is None else code
    master = random.Random(seed)
    chaos_seed = master.randrange(2**32)
    repair_seed = master.randrange(2**32)
    injector_seed = master.randrange(2**32)
    mover_seed = master.randrange(2**32)

    topology = ClusterTopology(
        nodes_per_rack=nodes_per_rack,
        num_racks=num_racks,
        intra_rack_bandwidth=bandwidth,
        cross_rack_bandwidth=bandwidth,
    )
    resilience = ResilienceMetrics()
    retry = RetryPolicy(
        max_attempts=8, base_delay=1.0, multiplier=2.0,
        max_delay=30.0, jitter=0.5,
    )
    setup = build_cluster(
        "ear", topology, code, ReplicationScheme(3, 2), seed,
        block_size=block_size, retry=retry, resilience=resilience,
    )
    populate_until_sealed(setup, num_stripes)
    store = setup.namenode.block_store
    stripes = setup.namenode.sealed_stripes()[:num_stripes]
    blocks_total = sum(1 for __ in store.blocks())

    mover = BlockMover(topology, code, rng=random.Random(mover_seed))
    repair_queue = RepairQueue(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        rng=random.Random(repair_seed), retry=retry,
        resilience=resilience, mover=mover,
    )
    scrubber = Scrubber(
        setup.sim, setup.network, setup.namenode, repair_queue,
        interval=scrub_interval, resilience=resilience,
    )
    scrubber.start()

    # Corruption targets: one data block from each of the first few
    # stripes, so corruption + the permanent failure can never push one
    # stripe past its n - k loss budget.
    chaos_rng = random.Random(chaos_seed)
    corrupt_blocks = [
        chaos_rng.choice(sorted(stripe.block_ids))
        for stripe in stripes[:num_corruptions]
    ]
    schedule = ChaosSchedule.random_schedule(
        topology, chaos_rng, horizon,
        num_flaps=num_flaps,
        num_rack_outages=num_rack_outages,
        num_degradations=num_degradations,
        corrupt_blocks=corrupt_blocks,
    )
    chaos = ChaosInjector(
        setup.sim, setup.network, schedule,
        namenode=setup.namenode, rng=chaos_rng, resilience=resilience,
    )
    chaos.start()

    injector = FailureInjector(
        setup.sim, setup.network, setup.namenode, setup.raidnode,
        rng=random.Random(injector_seed), retry=retry,
        repair_queue=repair_queue, fail_endpoints=True,
    )
    if permanent_failure:
        # Kill a node no transient fault touches, so the chaos layer's
        # restorations can never resurrect a permanently dead endpoint.
        flapped = {
            e.target for e in schedule if e.kind == "node_flap"
        }
        for event in schedule:
            if event.kind == "rack_outage":
                flapped.update(topology.nodes_in_rack(event.target))
        victims = [n for n in sorted(topology.node_ids()) if n not in flapped]
        if victims:
            victim = random.Random(injector_seed + 1).choice(victims)
            setup.sim.process(injector.fail_node_at(horizon * 0.5, victim))

    encode_errors: List[str] = []

    def drive_encoding():
        try:
            yield from setup.raidnode.run_encoding(
                setup.job_tracker, stripes, num_map_tasks=num_map_tasks
            )
        except Exception as exc:  # noqa: BLE001 — reported, not fatal
            encode_errors.append(repr(exc))

    setup.sim.process(drive_encoding())

    # Run past the chaos horizon, then keep scrubbing until no damage is
    # left anywhere (corruption injected late, or on a node that was down
    # during earlier scans, surfaces in these final passes).
    setup.sim.run(until=horizon + 300.0)
    for __ in range(8):
        caught = scrubber.scan_once()
        if not caught and repair_queue.pending_count == 0:
            break
        setup.sim.run(until=setup.sim.now + 300.0)

    report = ChaosDrillReport(
        seed=seed,
        sim_time=setup.sim.now,
        stripes_total=len(stripes),
        stripes_encoded=sum(
            1 for r in setup.encoder.records
            if r.stripe_id in {s.stripe_id for s in stripes}
        ),
        blocks_total=blocks_total,
        repair_outcomes=dict(repair_queue.outcomes),
        unrecoverable=tuple(repair_queue.unrecoverable)
        + tuple(
            block_id
            for rep in injector.reports
            for block_id in rep.unrecoverable
        ),
        data_loss_events=len(resilience.data_loss),
        placement_violations=len(injector.violations),
        relocation_requests=len(repair_queue.relocation_requests),
        encode_errors=tuple(encode_errors),
        metrics=resilience.summary(),
    )
    report.fingerprint = cluster_fingerprint(
        setup, repair_queue, resilience, setup.encoder
    )
    return report
