"""The chaos layer: fault injection, retries, and the repair pipeline.

Four cooperating pieces turn the simulator's fail-fast stack into one
that degrades gracefully:

* :mod:`repro.faults.retry` — bounded retries with exponential backoff,
  seeded jitter, and straggler kill, for any simulation process;
* :mod:`repro.faults.chaos` — scripted transient faults (node flaps,
  rack outages, NIC degradation, bit-rot) as simulation processes;
* :mod:`repro.faults.repair` — the prioritized repair queue draining
  damage most-at-risk-stripe first;
* :mod:`repro.faults.scrubber` — periodic checksum verification feeding
  detected corruption into the queue.

:mod:`repro.faults.drill` wires them all into one deterministic chaos
drill (also reachable as ``repro chaos`` from the CLI).
"""

from repro.faults.chaos import (
    CORRUPT_BLOCK,
    DEGRADE_NODE,
    NODE_FLAP,
    RACK_OUTAGE,
    ChaosEvent,
    ChaosInjector,
    ChaosSchedule,
)
from repro.faults.repair import RepairQueue
from repro.faults.retry import (
    AttemptTimeout,
    RetryExhausted,
    RetryPolicy,
    with_retries,
)
from repro.faults.scrubber import Scrubber

_DRILL_EXPORTS = ("ChaosDrillReport", "cluster_fingerprint", "run_chaos_drill")


def __getattr__(name):
    # The drill pulls in the whole hdfs/experiments stack, which itself
    # imports repro.faults.retry — importing it eagerly here would be
    # circular, so it loads on first access instead.
    if name in _DRILL_EXPORTS:
        from repro.faults import drill

        return getattr(drill, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AttemptTimeout",
    "ChaosDrillReport",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosSchedule",
    "CORRUPT_BLOCK",
    "DEGRADE_NODE",
    "NODE_FLAP",
    "RACK_OUTAGE",
    "RepairQueue",
    "RetryExhausted",
    "RetryPolicy",
    "Scrubber",
    "cluster_fingerprint",
    "run_chaos_drill",
    "with_retries",
]
