"""Crash drills: seeded process-death injection + restart-from-journal.

Extends the chaos layer to the one fault class PR 1 could not model: the
NameNode process itself dying mid-commit.  A deterministic, synchronous
metadata workload (:func:`run_crash_workload`) drives every journal
record type — file creation, block allocation, corruption marks, node
death, relocation, and full stripe-commit brackets — against a real
:class:`~repro.journal.journal.MetadataJournal`.  The crash matrix
(:func:`run_crash_matrix`) then re-runs that workload once per injected
:class:`~repro.journal.crashpoints.CrashPoint` (each commit stage ×
before/torn/after flush), recovers each crashed journal, and checks the
differential contract:

* the recovered ``state_fingerprint()`` equals the fingerprint the
  golden (crash-free) run had at the same durable prefix — with
  crashes *inside* a commit bracket mapping to the post-bracket state,
  because recovery rolls open brackets forward;
* no stripe is observably half-committed
  (:func:`~repro.journal.recovery.verify_stripe_consistency`);
* ``repro journal verify`` reports zero errors on the crashed log.

Everything derives from one master seed; two matrix runs with the same
seed produce identical reports.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology
from repro.core.ear import EncodingAwareReplication
from repro.erasure.codec import CodeParams
from repro.hdfs.files import FileNamespace
from repro.hdfs.namenode import NameNode
from repro.journal.crashpoints import CRASH_PHASES, CrashPoint, SimulatedCrash
from repro.journal.journal import MetadataJournal
from repro.journal.recovery import recover, verify_stripe_consistency
from repro.journal.verify import verify_journal
from repro.journal.wal import scan_journal

#: Stripe geometry of the drill cluster (n=6, k=4 — two parity blocks).
DRILL_CODE = CodeParams(6, 4)
#: Small segments so every drill exercises rotation.
DRILL_SEGMENT_RECORDS = 64
_DRILL_BLOCK_SIZE = 1 << 20


def drill_topology() -> ClusterTopology:
    """The fixed small cluster every crash drill runs on."""
    return ClusterTopology(
        nodes_per_rack=4,
        num_racks=6,
        intra_rack_bandwidth=1e9,
        cross_rack_bandwidth=1e9,
    )


@dataclass
class CrashWorkloadResult:
    """One completed (crash-free) workload run and its artifacts."""

    directory: str
    seed: int
    journal: MetadataJournal
    namenode: NameNode
    namespace: FileNamespace
    topology: ClusterTopology
    code: CodeParams
    final_fingerprint: str
    last_seq: int
    brackets: List[Tuple[int, int]] = field(default_factory=list)


def run_crash_workload(
    directory: str,
    seed: int,
    crash_at: Optional[CrashPoint] = None,
    track_fingerprints: bool = False,
    checkpoint_midway: bool = False,
) -> CrashWorkloadResult:
    """Drive the deterministic metadata workload against a journal.

    The op sequence is a pure function of ``seed``: a crashed re-run of
    the same seed performs exactly the same mutations up to the armed
    crash point, which is what makes the golden run's per-prefix
    fingerprints valid expectations for every crashed run.

    Raises:
        SimulatedCrash: When ``crash_at`` fires (the journal directory
            is left exactly as the dead process would leave it).
    """
    rng = random.Random(seed)
    topology = drill_topology()
    journal = MetadataJournal(
        directory,
        segment_records=DRILL_SEGMENT_RECORDS,
        crash_at=crash_at,
        track_fingerprints=track_fingerprints,
    )
    policy = EncodingAwareReplication(
        topology, DRILL_CODE, rng=random.Random(rng.randrange(2**32))
    )
    namenode = NameNode(
        topology, policy, block_size=_DRILL_BLOCK_SIZE, journal=journal
    )
    namespace = FileNamespace()
    journal.attach(namespace=namespace)
    planner = namenode.make_planner(
        DRILL_CODE, rng=random.Random(rng.randrange(2**32))
    )
    writers = sorted(topology.node_ids())

    # Phase 1: files + enough blocks to seal several stripes.
    namespace.create("/drill/a")
    namespace.create("/drill/b")
    for index in range(8 * DRILL_CODE.k):
        block, _decision = namenode.allocate_block(
            writer_node=rng.choice(writers)
        )
        name = "/drill/a" if index % 2 == 0 else "/drill/b"
        namespace.append_block(name, block.block_id, block.size)

    # Phase 2: corruption on an open-stripe block, plus a node flap.
    store = namenode.block_store
    open_blocks = sorted(
        b.block_id for b in store.blocks()
        if not b.is_parity() and len(store.replica_nodes(b.block_id)) > 1
    )
    victim = rng.choice(open_blocks)
    victim_node = rng.choice(sorted(store.replica_nodes(victim)))
    store.mark_corrupted(victim, victim_node)
    journal.node_dead(rng.choice(writers))
    store.clear_corrupted(victim, victim_node)

    if checkpoint_midway:
        journal.checkpoint()

    # Phase 3: encode every sealed stripe — the commit brackets.
    for stripe in sorted(
        namenode.sealed_stripes(), key=lambda s: s.stripe_id
    ):
        plan = planner.plan(stripe)
        namenode.record_encoding(stripe, plan)

    # Phase 4: post-encode churn — relocation, corruption, deletion.
    encoded_blocks = sorted(
        b.block_id for b in store.blocks()
        if not b.is_parity() and len(store.replica_nodes(b.block_id)) == 1
    )
    if encoded_blocks:
        mover = rng.choice(encoded_blocks)
        src = store.replica_nodes(mover)[0]
        free_nodes = [
            n for n in writers if n not in store.replica_nodes(mover)
        ]
        store.move_replica(mover, src, rng.choice(free_nodes))
    dead = sorted(journal.dead_nodes)
    for node_id in dead:
        journal.node_alive(node_id)
    namespace.delete("/drill/b")
    for _extra in range(2):
        block, _decision = namenode.allocate_block(
            writer_node=rng.choice(writers)
        )
        namespace.append_block("/drill/a", block.block_id, block.size)

    journal.flush()
    return CrashWorkloadResult(
        directory=directory,
        seed=seed,
        journal=journal,
        namenode=namenode,
        namespace=namespace,
        topology=topology,
        code=DRILL_CODE,
        final_fingerprint=journal.current_fingerprint(),
        last_seq=journal.last_seq,
        brackets=find_brackets(directory),
    )


def find_brackets(directory: str) -> List[Tuple[int, int]]:
    """``(begin_seq, end_seq)`` of every commit bracket in a journal."""
    opens: Dict[int, int] = {}
    brackets: List[Tuple[int, int]] = []
    for envelope in scan_journal(directory).envelopes:
        seq = int(envelope["seq"])  # type: ignore[arg-type]
        type_tag = envelope.get("type")
        data = envelope.get("data") or {}
        if type_tag == "begin_stripe_commit":
            opens[int(data["stripe_id"])] = seq
        elif type_tag == "end_stripe_commit":
            begin = opens.pop(int(data["stripe_id"]), None)
            if begin is not None:
                brackets.append((begin, seq))
    return sorted(brackets)


def golden_fingerprints(golden: CrashWorkloadResult) -> Dict[int, str]:
    """Per-prefix fingerprints of the golden run.

    ``fps[s]`` is the state fingerprint *before* record ``s`` applied —
    i.e. the state a recovery of durable prefix ``s - 1`` must
    reproduce.  ``fps[last_seq + 1]`` is the final state.
    """
    fps = dict(golden.journal.fingerprints)
    fps[golden.last_seq + 1] = golden.final_fingerprint
    return fps


def expected_fingerprint(
    fps: Dict[int, str],
    brackets: List[Tuple[int, int]],
    durable_seq: int,
) -> str:
    """The fingerprint recovery must reproduce for a durable prefix.

    Normally that is the golden state after applying records
    ``1..durable_seq``.  When the prefix ends *inside* a commit bracket
    ``[begin, end)``, recovery rolls the bracket forward, so the
    expectation jumps to the golden post-bracket state.
    """
    target = durable_seq + 1
    for begin, end in brackets:
        if begin <= durable_seq < end:
            target = end + 1
            break
    return fps[target]


def commit_stage_points(
    golden: CrashWorkloadResult,
    phases: Tuple[str, ...] = CRASH_PHASES,
) -> List[CrashPoint]:
    """Every crash point the matrix injects for one golden run.

    Covers each commit bracket at four stages — the intent record, the
    first interior record (a ``parity_add``), a mid-bracket record (a
    retention ``delete_replica``), and the commit record — plus three
    non-bracket controls (an early record, a pre-encode record, and the
    final record), each at every requested flush phase.
    """
    seqs: List[int] = [2]
    if golden.brackets:
        seqs.append(golden.brackets[0][0] - 1)
    for begin, end in golden.brackets:
        seqs.extend([begin, begin + 1, (begin + end) // 2, end])
    seqs.append(golden.last_seq)
    unique = sorted({s for s in seqs if 1 <= s <= golden.last_seq})
    return [
        CrashPoint(seq=seq, phase=phase)
        for seq in unique
        for phase in phases
    ]


@dataclass
class CrashCaseResult:
    """One injected crash, recovered and checked."""

    point: CrashPoint
    durable_seq: int
    expected: str
    recovered: str
    fingerprint_match: bool
    half_commit_problems: Tuple[str, ...]
    verify_errors: Tuple[str, ...]
    recovery_errors: Tuple[str, ...]
    rolled_forward: Tuple[int, ...]

    @property
    def clean(self) -> bool:
        """True when every differential and structural check passed."""
        return (
            self.fingerprint_match
            and not self.half_commit_problems
            and not self.verify_errors
            and not self.recovery_errors
        )


@dataclass
class CrashMatrixReport:
    """Every crash case of one seed, plus the golden run's shape."""

    seed: int
    golden_fingerprint: str
    golden_records: int
    brackets: List[Tuple[int, int]]
    cases: List[CrashCaseResult] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every injected crash recovered consistently."""
        return bool(self.cases) and all(case.clean for case in self.cases)

    def summary(self) -> Dict[str, object]:
        """Flat printable snapshot (example/CI output source)."""
        return {
            "seed": self.seed,
            "golden_records": self.golden_records,
            "commit_brackets": len(self.brackets),
            "crash_cases": len(self.cases),
            "fingerprint_matches": sum(
                1 for case in self.cases if case.fingerprint_match
            ),
            "rolled_forward_cases": sum(
                1 for case in self.cases if case.rolled_forward
            ),
            "clean": self.clean,
            "golden_fingerprint": self.golden_fingerprint[:16],
        }


def run_crash_matrix(
    seed: int,
    base_dir: str,
    phases: Tuple[str, ...] = CRASH_PHASES,
    checkpoint_midway: bool = False,
) -> CrashMatrixReport:
    """Golden run + one crashed run per commit-stage crash point.

    ``base_dir`` receives one journal directory per run (``golden`` plus
    ``case-NNN``), all of which ``repro journal verify`` must pass.
    """
    golden = run_crash_workload(
        os.path.join(base_dir, "golden"),
        seed,
        track_fingerprints=True,
        checkpoint_midway=checkpoint_midway,
    )
    golden.journal.close()
    fps = golden_fingerprints(golden)
    report = CrashMatrixReport(
        seed=seed,
        golden_fingerprint=golden.final_fingerprint,
        golden_records=golden.last_seq,
        brackets=list(golden.brackets),
    )
    for index, point in enumerate(commit_stage_points(golden, phases)):
        case_dir = os.path.join(base_dir, f"case-{index:03d}")
        crashed = False
        try:
            result = run_crash_workload(
                case_dir, seed,
                crash_at=point,
                checkpoint_midway=checkpoint_midway,
            )
            result.journal.close()
        except SimulatedCrash:
            crashed = True
        recovered = recover(case_dir, golden.topology, k=golden.code.k)
        expected = expected_fingerprint(fps, golden.brackets, point.durable_seq)
        actual = recovered.fingerprint()
        verify_report = verify_journal(case_dir)
        recovery_errors = list(recovered.stats.errors)
        if not crashed:
            recovery_errors.append(
                f"crash point seq {point.seq} ({point.phase}) never fired"
            )
        report.cases.append(CrashCaseResult(
            point=point,
            durable_seq=point.durable_seq,
            expected=expected,
            recovered=actual,
            fingerprint_match=(expected == actual),
            half_commit_problems=tuple(verify_stripe_consistency(
                recovered.block_store, recovered.stripe_store
            )),
            verify_errors=tuple(verify_report.errors),
            recovery_errors=tuple(recovery_errors),
            rolled_forward=tuple(recovered.stats.rolled_forward),
        ))
    return report
