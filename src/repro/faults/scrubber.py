"""Background checksum scrubbing: detect bit-rot, enqueue repairs.

HDFS DataNodes periodically re-verify block checksums on disk; a replica
whose checksum no longer matches is dropped and re-created from a healthy
copy (or decoded from the stripe).  This module models that loop over the
simulated store's corruption markers: each scan "reads" every replica,
notices the marked ones, removes them from the metadata, and hands the
damage to the :class:`~repro.faults.repair.RepairQueue`.

The scan itself is metadata-only (zero simulated I/O cost) — the paper's
simulator charges links for data movement, not for the steady background
verify trickle; only the repairs triggered by a detection move bytes.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Tuple

from repro.cluster.block import BlockId
from repro.cluster.topology import NodeId
from repro.sim.engine import Simulator
from repro.sim.metrics import ResilienceMetrics
from repro.sim.netsim import Network


class Scrubber:
    """Periodic corruption scanner feeding the repair queue.

    Args:
        sim: Simulation kernel.
        network: Liveness oracle — a down node's disks cannot be verified,
            so its corrupted replicas wait for the next scan after it
            returns.
        namenode: Metadata server whose block store carries the markers.
        repair_queue: Destination for detected damage.
        interval: Seconds between scan passes.
        resilience: Optional fault metrics (detections are counted).
        recovery: Optional
            :class:`~repro.recovery.metrics.RecoveryMetrics`; detections
            also feed the recovery storm accounting when present.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode,
        repair_queue,
        interval: float = 60.0,
        resilience: Optional[ResilienceMetrics] = None,
        recovery=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("scrub interval must be positive")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.repair_queue = repair_queue
        self.interval = interval
        self.resilience = resilience
        self.recovery = recovery
        self.detected: List[Tuple[float, BlockId, NodeId]] = []
        self.scans = 0

    def start(self):
        """Launch the endless scan loop; returns its process."""
        return self.sim.process(self.run())

    def run(self) -> Generator:
        """Scan forever, one pass per interval (generator)."""
        while True:
            yield self.sim.timeout(self.interval)
            self.scan_once()

    def scan_once(self) -> int:
        """One full verify pass; returns how many bad replicas it caught.

        A detected replica is immediately removed from the metadata (the
        copy is useless) and its block enqueued for repair — prioritized
        like any other damage, so a corrupted single-copy stripe member
        jumps ahead of a merely under-replicated block.
        """
        self.scans += 1
        store = self.namenode.block_store
        caught = 0
        for block_id, node_id in store.corrupted_replicas():
            if not self.network.is_up(node_id):
                continue  # cannot verify a dead disk; next pass gets it
            self.detected.append((self.sim.now, block_id, node_id))
            if self.resilience is not None:
                self.resilience.record_corruption_detected()
            if self.recovery is not None:
                self.recovery.record_scrub_detection()
            store.remove_replica(block_id, node_id)
            self.repair_queue.enqueue(block_id)
            caught += 1
        return caught
