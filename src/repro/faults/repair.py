"""Prioritized, retrying repair pipeline.

Replaces the FailureInjector's inline discovery-order repair loop: damage
is *enqueued*, and a background worker always repairs the most-at-risk
stripe first — the one with the fewest surviving blocks above its decode
threshold (``k`` for encoded stripes, one replica for replicated blocks).
Under compound failures this ordering is what separates "a window of
reduced durability" from actual data loss, which is why production RAID
nodes run exactly such a queue.

Each repair re-reads cluster state at execution time and, with a retry
policy attached, survives transient endpoint deaths by backing off and
re-planning both its source set and its target node.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import NodeId, RackId
from repro.core.policy import PlacementError
from repro.core.stripe import Stripe, StripeState
from repro.faults.retry import RetryExhausted, RetryPolicy, with_retries
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import ResilienceMetrics
from repro.sim.netsim import Network, SourceUnavailable, TransferAborted

#: Repair outcomes delivered through each enqueue's completion event.
DECODED = "decoded"
REREPLICATED = "rereplicated"
NOOP = "noop"
UNRECOVERABLE = "unrecoverable"


class RepairQueue:
    """Background repair worker draining damage most-at-risk first.

    Args:
        sim: Simulation kernel.
        network: Link model carrying the repair traffic.
        namenode: Metadata server (block store + stripe registry).
        raidnode: Erasure-coded reconstruction engine.
        rng: Random source for target-node choices (deterministic default).
        retry: When given, each repair survives transient faults: aborted
            transfers trigger a backoff and a fresh attempt with a newly
            chosen target against current liveness.
        resilience: Optional fault metrics (repair durations feed MTTR,
            unavailability windows open at enqueue and close at repair).
        mover: Optional :class:`~repro.core.relocation.BlockMover`; when
            present, relocation requests (recorded constraint violations)
            are served once the damage queue drains.
        recovery: Optional
            :class:`~repro.recovery.metrics.RecoveryMetrics`; when
            present, each repair feeds the repair-time distribution,
            per-rack reconstruction traffic, and margin-0 vulnerability
            windows.
        concurrency: Simultaneous repairs the queue may run.  The default
            (1) keeps the historical strictly-serial worker.  Higher
            values model a production repair fleet — and are where
            placement matters: concurrent reconstructions whose survivor
            fetches share a rack uplink serialize on it, so concentrated
            (EAR-style) layouts drain a storm slower than spread ones.
            Dispatch order stays most-at-risk-first either way.

    The worker process starts on construction and runs forever; it sleeps
    on an internal wakeup event while idle, so an empty queue costs
    nothing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode,
        raidnode,
        rng: Optional[random.Random] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceMetrics] = None,
        mover=None,
        recovery=None,
        concurrency: int = 1,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.raidnode = raidnode
        self.rng = rng if rng is not None else random.Random(0)
        self.retry = retry
        self.resilience = resilience
        self.mover = mover
        self.recovery = recovery
        self.concurrency = concurrency
        self._pending: Dict[BlockId, Event] = {}
        self._active: set = set()
        self._wakeup: Optional[Event] = None
        self.outcomes: Dict[str, int] = {
            DECODED: 0, REREPLICATED: 0, NOOP: 0, UNRECOVERABLE: 0,
        }
        self.unrecoverable: List[BlockId] = []
        self.relocation_requests: List[Stripe] = []
        self._reloc_pending: List[Stripe] = []
        self.relocations_done = 0
        self.relocation_failures: List[Tuple[int, str]] = []
        self._worker = sim.process(self._run())

    # ------------------------------------------------------------------
    # Producer API
    # ------------------------------------------------------------------
    def enqueue(self, block_id: BlockId) -> Event:
        """Queue a damaged block; returns its repair completion event.

        The event succeeds with one of the outcome strings (``"decoded"``,
        ``"rereplicated"``, ``"noop"``, ``"unrecoverable"``) — it never
        fails, so callers can wait on many repairs with ``all_of``.
        Re-enqueueing a block already pending returns the existing event.
        """
        if block_id in self._pending:
            return self._pending[block_id]
        done = self.sim.event()
        self._pending[block_id] = done
        if self.resilience is not None:
            self.resilience.block_unavailable(block_id, self.sim.now)
        if self.recovery is not None and self._margin(block_id) <= 0:
            self.recovery.begin_vulnerability(
                self._vulnerability_key(block_id), self.sim.now
            )
        self._notify()
        return done

    def request_relocation(self, stripe: Stripe) -> None:
        """Ask for a stripe's placement to be repaired (after the damage).

        Called when a repair had to violate the blocks-per-rack cap; the
        request is always recorded, and served via the configured mover —
        once no block repairs are pending — when one is attached.  With a
        journal attached to the namenode the request is journaled
        *before* entering the in-memory backlog, so a crash mid-storm
        replays the same pending relocations.
        """
        journal = getattr(self.namenode, "journal", None)
        if journal is not None:
            journal.relocation_requested(stripe.stripe_id)
        self.relocation_requests.append(stripe)
        self._reloc_pending.append(stripe)
        self._notify()

    def restore_relocation_requests(
        self, stripe_ids: Iterable[int]
    ) -> None:
        """Rebuild the relocation backlog after a journal recovery.

        Takes the ``pending_relocations`` list of a
        :class:`~repro.journal.recovery.RecoveredState` and re-enters the
        corresponding stripes into the in-memory backlog *without*
        re-journaling them (they are already durable).
        """
        pre_store = self.namenode.pre_encoding_store
        if pre_store is None:
            return
        for stripe_id in stripe_ids:
            stripe = pre_store.stripe(stripe_id)
            self.relocation_requests.append(stripe)
            self._reloc_pending.append(stripe)
        if self._reloc_pending:
            self._notify()

    @property
    def pending_count(self) -> int:
        """Damaged blocks still waiting for (or under) repair."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _notify(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self) -> Generator:
        if self.concurrency == 1:
            yield from self._run_serial()
        else:
            yield from self._run_parallel()

    def _run_serial(self) -> Generator:
        while True:
            if self._pending:
                block_id = self._pop_most_at_risk()
                start = self.sim.now
                outcome = yield from self._repair_one(block_id)
                self._finish_repair(block_id, start, outcome)
            elif self._reloc_pending and self.mover is not None:
                stripe = self._reloc_pending.pop(0)
                yield from self._relocate(stripe)
            else:
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None

    def _run_parallel(self) -> Generator:
        """Dispatcher: up to ``concurrency`` repairs in flight at once.

        Repairs are still *started* most-at-risk-first; relocations are
        only served while the damage queue is completely drained, exactly
        as in the serial worker.
        """
        while True:
            waiting = sorted(
                (b for b in self._pending if b not in self._active),
                key=self._risk_key,
            )
            while waiting and len(self._active) < self.concurrency:
                block_id = waiting.pop(0)
                self._active.add(block_id)
                self.sim.process(self._repair_and_finish(block_id))
            if (
                not self._pending
                and not self._active
                and self._reloc_pending
                and self.mover is not None
            ):
                stripe = self._reloc_pending.pop(0)
                yield from self._relocate(stripe)
                continue
            self._wakeup = self.sim.event()
            yield self._wakeup
            self._wakeup = None

    def _repair_and_finish(self, block_id: BlockId) -> Generator:
        start = self.sim.now
        outcome = yield from self._repair_one(block_id)
        self._active.discard(block_id)
        self._finish_repair(block_id, start, outcome)
        self._notify()

    def _finish_repair(
        self, block_id: BlockId, start: float, outcome: str
    ) -> None:
        self.outcomes[outcome] += 1
        if outcome == UNRECOVERABLE:
            self.unrecoverable.append(block_id)
            if self.resilience is not None:
                self.resilience.record_data_loss(
                    block_id, self.sim.now, "repair failed"
                )
        if self.resilience is not None:
            self.resilience.record_repair(self.sim.now - start)
            self.resilience.block_available(block_id, self.sim.now)
        if self.recovery is not None:
            self.recovery.record_repair(start, self.sim.now - start)
            if outcome != UNRECOVERABLE and self._margin(block_id) > 0:
                self.recovery.end_vulnerability(
                    self._vulnerability_key(block_id), self.sim.now
                )
        done = self._pending.pop(block_id)
        done.succeed(outcome)

    def _pop_most_at_risk(self) -> BlockId:
        """The pending block whose stripe has the smallest failure margin.

        Margin = surviving copies above the decode threshold (``k``
        members for an encoded stripe, one replica otherwise); ties break
        in deterministic ``(stripe_id, block_id)`` order — *not* arrival
        order, so the repair sequence is a pure function of cluster state
        regardless of how the damage was discovered.  Recomputed at each
        pop so repairs and further failures re-rank the queue
        continuously.
        """
        return min(self._pending, key=self._risk_key)

    def _risk_key(self, block_id: BlockId) -> Tuple[int, int, BlockId]:
        stripe = self._stripe_of(block_id)
        stripe_rank = -1 if stripe is None else stripe.stripe_id
        return (self._margin(block_id), stripe_rank, block_id)

    def _vulnerability_key(self, block_id: BlockId) -> str:
        stripe = self._stripe_of(block_id)
        if stripe is not None:
            return f"stripe:{stripe.stripe_id}"
        return f"block:{block_id}"

    def _margin(self, block_id: BlockId) -> int:
        store = self.namenode.block_store
        stripe = self._stripe_of(block_id)
        if stripe is not None and stripe.state == StripeState.ENCODED:
            survivors = sum(
                1 for member in stripe.all_block_ids()
                if store.replica_nodes(member)
            )
            return survivors - stripe.k
        return len(store.replica_nodes(block_id)) - 1

    # ------------------------------------------------------------------
    # One repair
    # ------------------------------------------------------------------
    def _repair_one(self, block_id: BlockId) -> Generator:
        store = self.namenode.block_store
        survivors = store.replica_nodes(block_id)
        stripe = self._stripe_of(block_id)
        if survivors:
            if stripe is not None and stripe.state == StripeState.ENCODED:
                # The retained single copy is the steady state: no repair.
                return NOOP
            try:
                yield from self._with_queue_retries(
                    lambda: self._rereplicate_once(block_id)
                )
                return REREPLICATED
            except RuntimeError:
                return UNRECOVERABLE
        if stripe is None or stripe.state != StripeState.ENCODED:
            return UNRECOVERABLE
        try:
            yield from self._with_queue_retries(
                lambda: self._decode_once(stripe, block_id)
            )
            return DECODED
        except RuntimeError:
            return UNRECOVERABLE

    def _with_queue_retries(self, attempt_factory) -> Generator:
        """Run one repair attempt factory under the queue's retry policy.

        Retries also cover :class:`RetryExhausted` raised by the
        RaidNode's *inner* download retries: when those die because the
        chosen target node failed mid-repair, a fresh outer attempt picks
        a new live target.
        """
        if self.retry is None:
            result = yield from attempt_factory()
            return result
        result = yield from with_retries(
            self.sim,
            lambda __: attempt_factory(),
            self.retry,
            self.rng,
            retry_on=(TransferAborted, RetryExhausted),
            metrics=self.resilience,
            label="repair",
        )
        return result

    def _rereplicate_once(self, block_id: BlockId) -> Generator:
        store = self.namenode.block_store
        sources = [
            n
            for n in store.healthy_replica_nodes(block_id)
            if self.network.is_up(n)
        ]
        if not sources:
            replicas = store.replica_nodes(block_id)
            if replicas:
                raise SourceUnavailable(replicas[0], replicas[0], replicas[0])
            raise RuntimeError(f"block {block_id} has no surviving replica")
        target = self._replacement_node(block_id)
        if target is None:
            raise RuntimeError(f"no replacement node for block {block_id}")
        size = store.block(block_id).size
        yield from self.network.transfer(sources[0], target, size)
        if self.recovery is not None:
            cross = self.network.is_cross_rack(sources[0], target)
            self.recovery.record_repair_traffic(
                self.namenode.topology.rack_of(target),
                size,
                size if cross else 0.0,
            )
        # A concurrent encode may have trimmed the block to its retained
        # copy while ours was in flight; committing a second replica would
        # over-replicate an encoded stripe.  Drop the copy instead.
        stripe = self._stripe_of(block_id)
        if (
            stripe is not None
            and stripe.state == StripeState.ENCODED
            and store.replica_nodes(block_id)
        ):
            return
        store.add_replica(block_id, target)

    def _decode_once(self, stripe: Stripe, block_id: BlockId) -> Generator:
        target = self._replacement_node(block_id)
        if target is None:
            raise RuntimeError(f"no replacement node for block {block_id}")
        record = yield from self.raidnode.recover_block(
            stripe, block_id, target
        )
        if self.recovery is not None:
            size = self.namenode.block_store.block(block_id).size
            self.recovery.record_repair_traffic(
                self.namenode.topology.rack_of(target),
                stripe.k * size,
                record.cross_rack_reads * size,
            )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _rack_cap(self) -> int:
        return getattr(self.namenode.policy, "c", 1)

    def _replacement_node(self, block_id: BlockId) -> Optional[NodeId]:
        """A live node for the repaired copy, honouring the rack cap.

        Mirrors the FailureInjector's placement rule: encoded stripes keep
        the hard ``<= c`` blocks-per-rack constraint when possible; when
        every live candidate sits in a saturated rack the violation is
        committed *and* a relocation is self-enqueued so the placement
        monitor's invariant is eventually restored.
        """
        store = self.namenode.block_store
        topology = self.namenode.topology
        stripe = self._stripe_of(block_id)
        rack_usage: Dict[RackId, int] = {}
        if stripe is not None:
            for member in stripe.all_block_ids():
                for node in store.replica_nodes(member):
                    rack = topology.rack_of(node)
                    rack_usage[rack] = rack_usage.get(rack, 0) + 1
        candidates = [
            n
            for n in topology.node_ids()
            if self.network.is_up(n)
            and block_id not in store.blocks_on_node(n)
        ]
        if not candidates:
            return None
        if stripe is not None and stripe.state == StripeState.ENCODED:
            cap = self._rack_cap()
            compliant = [
                n for n in candidates
                if rack_usage.get(topology.rack_of(n), 0) < cap
            ]
            if compliant:
                return self.rng.choice(compliant)
            choice = self.rng.choice(candidates)
            self.request_relocation(stripe)
            return choice
        diverse = [
            n for n in candidates if topology.rack_of(n) not in rack_usage
        ]
        return self.rng.choice(diverse or candidates)

    def _stripe_of(self, block_id: BlockId) -> Optional[Stripe]:
        pre_store = self.namenode.pre_encoding_store
        if pre_store is None:
            return None
        stripe = pre_store.stripe_of_block(block_id)
        if stripe is not None:
            return stripe
        stripe_id = self.namenode.block_store.block(block_id).stripe_id
        if stripe_id is None:
            return None
        try:
            return pre_store.stripe(stripe_id)
        except KeyError:
            return None

    # ------------------------------------------------------------------
    # Relocation service
    # ------------------------------------------------------------------
    def _relocate(self, stripe: Stripe) -> Generator:
        """Serve one relocation request.

        Transient failures — the stripe went back into repair since the
        request (``PlacementError``, ``KeyError``/``ValueError`` from a
        replica that moved mid-plan) or an endpoint died under the move
        (``TransferAborted``, ``RetryExhausted``) — are recorded in the
        resilience metrics and deferred to the next violation scan.
        Anything else is a genuine bug and propagates: a relocation
        worker that swallows unknown exceptions is how placement
        invariants rot silently.
        """
        try:
            yield from self.raidnode.relocate_if_violating(stripe, self.mover)
            self.relocations_done += 1
        except (
            PlacementError,
            TransferAborted,
            RetryExhausted,
            KeyError,
            ValueError,
        ) as exc:
            self.relocation_failures.append((stripe.stripe_id, repr(exc)))
            if self.resilience is not None:
                self.resilience.record_relocation_failure(repr(exc))
        finally:
            # Served or deferred, the request left the in-memory backlog;
            # the journal's pending set must agree either way.
            journal = getattr(self.namenode, "journal", None)
            if journal is not None:
                journal.relocation_served(stripe.stripe_id)
