"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list
    python -m repro fig3
    python -m repro fig8a --stripes 96 --seeds 3
    python -m repro fig13a --stripes-per-process 10 --seeds 2
    python -m repro fig14 --runs 10

Every command prints the same table the corresponding benchmark emits; the
``--stripes`` / ``--seeds`` style options trade precision for speed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.erasure.codec import CodeParams
from repro.experiments.config import LargeScaleConfig, TestbedConfig
from repro.experiments.runner import format_table, mean


def _pct(x: float) -> str:
    return f"{100 * x:+.1f}%"


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def cmd_fig3(args) -> None:
    """Figure 3: Equation (1) violation probability."""
    from repro.analysis.violation import figure3_table

    racks = list(range(args.min_racks, args.max_racks + 1, 2))
    ks = (6, 8, 10, 12)
    table = figure3_table(racks, ks)
    rows = [[r] + [f"{table[k][i]:.3f}" for k in ks] for i, r in enumerate(racks)]
    print(format_table(["R"] + [f"k={k}" for k in ks], rows))


def cmd_theorem1(args) -> None:
    """Theorem 1: measured redraws vs the bound."""
    import random

    from repro.analysis.iterations import empirical_attempts, theorem1_bound

    code = CodeParams(args.k + 4, args.k)
    measured = empirical_attempts(
        num_racks=args.racks,
        nodes_per_rack=40,
        code=code,
        num_stripes=args.stripes,
        rng=random.Random(args.seed),
    )
    rows = [
        [i, f"{measured[i]:.3f}", f"{theorem1_bound(i, args.racks):.3f}"]
        for i in range(1, code.k + 1)
    ]
    print(format_table(["i", "measured E_i", "bound"], rows))


def cmd_fig8a(args) -> None:
    """Figure 8(a): encoding throughput vs (n, k)."""
    from repro.experiments.testbed import sweep_nk

    from repro.experiments.charts import bar_chart

    config = TestbedConfig().scaled(args.stripes)
    results = sweep_nk(ks=(4, 6, 8, 10), seeds=range(args.seeds), config=config)
    rows = [
        [f"({k + 2},{k})", f"{r['rr']:.0f}", f"{r['ear']:.0f}", _pct(r["gain"])]
        for k, r in sorted(results.items())
    ]
    print(format_table(["(n,k)", "RR MB/s", "EAR MB/s", "gain"], rows))
    print()
    labels, values = [], []
    for k, r in sorted(results.items()):
        labels.extend([f"({k + 2},{k}) RR", f"({k + 2},{k}) EAR"])
        values.extend([round(r["rr"]), round(r["ear"])])
    print(bar_chart(labels, values, unit=" MB/s"))


def cmd_fig8b(args) -> None:
    """Figure 8(b): encoding throughput vs UDP cross-traffic."""
    from repro.experiments.testbed import sweep_udp

    config = TestbedConfig().scaled(args.stripes)
    results = sweep_udp(seeds=range(args.seeds), config=config)
    rows = [
        [f"{rate:.0f}", f"{r['rr']:.0f}", f"{r['ear']:.0f}", _pct(r["gain"])]
        for rate, r in sorted(results.items())
    ]
    print(format_table(["UDP Mb/s", "RR MB/s", "EAR MB/s", "gain"], rows))


def cmd_fig9(args) -> None:
    """Figure 9: write response times while encoding."""
    from repro.experiments.testbed import run_write_during_encoding

    config = TestbedConfig().scaled(args.stripes)
    rows = []
    for policy in ("rr", "ear"):
        results = [
            run_write_during_encoding(policy, config=config, seed=s)
            for s in range(args.seeds)
        ]
        rows.append([
            policy.upper(),
            f"{mean(r.write_rt_before for r in results):.2f}",
            f"{mean(r.write_rt_during for r in results):.2f}",
            f"{mean(r.encoding_time for r in results):.0f}",
        ])
    print(format_table(
        ["policy", "RT before (s)", "RT during (s)", "encode time (s)"], rows
    ))


def cmd_fig10(args) -> None:
    """Figure 10: SWIM MapReduce jobs before encoding."""
    from repro.experiments.testbed import run_mapreduce_workload

    config = TestbedConfig()
    rows = []
    for policy in ("rr", "ear"):
        records = run_mapreduce_workload(
            policy, num_jobs=args.jobs, config=config, seed=args.seed
        )
        rows.append([
            policy.upper(),
            f"{max(r.finish_time for r in records):.0f}",
            f"{mean(r.runtime for r in records):.1f}",
        ])
    print(format_table(["policy", "makespan (s)", "mean runtime (s)"], rows))


def cmd_fig12(args) -> None:
    """Figure 12 / Table I: validation curves and write RTs."""
    from repro.experiments.validation import (
        encoded_stripes_curves,
        validate_single_stripe_encode,
        validate_write_path,
    )

    config = TestbedConfig().scaled(args.stripes)
    for check in (
        validate_write_path(config),
        validate_single_stripe_encode(config=config),
    ):
        print(f"{check.name}: measured {check.measured:.4f}s, "
              f"expected {check.expected:.4f}s "
              f"(error {check.relative_error:.2e})")
    curves = encoded_stripes_curves(config=config, seed=args.seed)
    rows = [
        [policy.upper(), f"{curve[-1][0]:.0f}"]
        for policy, curve in curves.items()
    ]
    print(format_table(["policy", f"time to encode {config.num_stripes} stripes (s)"], rows))
    from repro.experiments.charts import line_chart

    print()
    print(line_chart(
        {policy: curve for policy, curve in curves.items()},
        width=60, height=12, x_label="seconds", y_label="stripes",
    ))


def _executor_from_args(args):
    """Build a SweepExecutor from ``--workers``/``--no-cache`` (or None)."""
    from repro.parallel.executor import make_executor

    workers = getattr(args, "workers", None)
    cache_dir = None
    if workers is not None and not getattr(args, "no_cache", False):
        from repro.parallel.cache import DEFAULT_CACHE_DIR

        cache_dir = DEFAULT_CACHE_DIR
    return make_executor(workers, cache_dir=cache_dir)


def _report_sweep(executor) -> None:
    if executor is not None and executor.last_report is not None:
        print(f"[sweep] {executor.last_report.summary()}")


def _largescale_sweep(sweep, args, header: str, formatter) -> None:
    base = LargeScaleConfig().scaled(args.stripes_per_process)
    if getattr(args, "scheduler", None):
        from dataclasses import replace

        base = replace(base, scheduler=args.scheduler)
    executor = _executor_from_args(args)
    points = sweep(base=base, seeds=range(args.seeds), executor=executor)
    rows = [
        [formatter(p.parameter), _pct(p.encode_gain), _pct(p.write_gain)]
        for p in points
    ]
    print(format_table([header, "encode gain", "write gain"], rows))
    _report_sweep(executor)


def cmd_fig13a(args) -> None:
    """Figure 13(a): gains vs k."""
    from repro.experiments.largescale import sweep_k

    _largescale_sweep(sweep_k, args, "k", lambda v: int(v))


def cmd_fig13b(args) -> None:
    """Figure 13(b): gains vs n - k."""
    from repro.experiments.largescale import sweep_m

    _largescale_sweep(sweep_m, args, "n-k", lambda v: int(v))


def cmd_fig13c(args) -> None:
    """Figure 13(c): gains vs link bandwidth."""
    from repro.experiments.largescale import sweep_bandwidth

    _largescale_sweep(sweep_bandwidth, args, "Gb/s", lambda v: v)


def cmd_fig13d(args) -> None:
    """Figure 13(d): gains vs write request rate."""
    from repro.experiments.largescale import sweep_write_rate

    _largescale_sweep(sweep_write_rate, args, "req/s", lambda v: v)


def cmd_fig13e(args) -> None:
    """Figure 13(e): gains vs EAR's tolerable rack failures."""
    from repro.experiments.largescale import sweep_rack_tolerance

    _largescale_sweep(sweep_rack_tolerance, args, "t", lambda v: int(v))


def cmd_fig13f(args) -> None:
    """Figure 13(f): gains vs replication factor."""
    from repro.experiments.largescale import sweep_replicas

    _largescale_sweep(sweep_replicas, args, "replicas", lambda v: int(v))


def cmd_chaos(args) -> None:
    """Chaos drill: transient faults + corruption during background encoding."""
    from repro.faults.drill import run_chaos_drill

    report = run_chaos_drill(
        seed=args.seed,
        num_stripes=args.stripes,
        num_flaps=args.flaps,
        num_rack_outages=args.rack_outages,
        num_corruptions=args.corruptions,
        horizon=args.horizon,
    )
    rows = [[key, str(value)] for key, value in report.summary().items()]
    print(format_table(["metric", "value"], rows))
    if not report.clean:
        print("\nDRILL FAILED: data was lost or encoding did not finish")
        raise SystemExit(1)
    print("\ndrill clean: no data loss, all stripes encoded")


def cmd_recovery(args) -> int:
    """Recovery storms: degraded reads and correlated-failure drills."""
    from repro.recovery import head_to_head, head_to_head_rows, run_storm

    _apply_scheduler_env(args)
    if args.head_to_head:
        cache_dir = None
        if args.workers is not None and not getattr(args, "no_cache", False):
            from repro.parallel.cache import DEFAULT_CACHE_DIR

            cache_dir = DEFAULT_CACHE_DIR
        results = head_to_head(
            scenario=args.scenario,
            seeds=tuple(range(args.seeds)),
            num_stripes=args.stripes,
            workers=args.workers,
            cache_dir=cache_dir,
        )
        rows = head_to_head_rows(results)
        headers = list(rows[0].keys())
        print(format_table(
            headers, [[str(row[h]) for h in headers] for row in rows]
        ))
        return 0

    report = run_storm(
        args.scenario, seed=args.seed, policy=args.policy,
        num_stripes=args.stripes, scheduler=args.scheduler,
    )
    rows = [[key, str(value)] for key, value in report.summary().items()]
    print(format_table(["metric", "value"], rows))
    if not report.clean:
        print("\nSTORM FAILED: data was lost or encoding did not finish")
        return 1
    print("\nstorm clean: no data loss, every stripe re-protected")
    return 0


def cmd_pipeline(args) -> int:
    """Pipelined archival encoding: strategy drills and head-to-heads."""
    import json

    from repro.pipeline import head_to_head, head_to_head_rows, pipeline_trial

    _apply_scheduler_env(args)
    if args.head_to_head:
        cache_dir = None
        if args.workers is not None and not getattr(args, "no_cache", False):
            from repro.parallel.cache import DEFAULT_CACHE_DIR

            cache_dir = DEFAULT_CACHE_DIR
        results = head_to_head(
            seeds=tuple(range(args.seeds)),
            num_stripes=args.stripes,
            chunk_count=args.chunks,
            disturb=not args.no_disturb,
            workers=args.workers,
            cache_dir=cache_dir,
        )
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
        else:
            rows = head_to_head_rows(results)
            headers = list(rows[0].keys())
            print(format_table(
                headers, [[str(row[h]) for h in headers] for row in rows]
            ))
        return 0 if all(r["clean"] for r in results) else 1

    result = pipeline_trial(
        seed=args.seed,
        contender=args.strategy,
        num_stripes=args.stripes,
        chunk_count=args.chunks,
        disturb=not args.no_disturb,
    )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        rows = [[key, str(value)] for key, value in sorted(result.items())]
        print(format_table(["metric", "value"], rows))
    if not result["clean"]:
        if not args.json:
            print("\nPIPELINE RUN FAILED: data was lost or encoding did "
                  "not finish")
        return 1
    if not args.json:
        print("\npipeline run clean: every stripe encoded, parity verified")
    return 0


def cmd_lint(args) -> int:
    """reprolint: AST-based determinism & resource-safety checks."""
    from repro.lint.cli import cmd_lint as run

    return run(args)


def cmd_bench(args) -> int:
    """Seeded benchmark suite; writes a schema-versioned BENCH_<tag>.json."""
    from repro.bench.cli import cmd_bench as run

    return run(args)


def cmd_journal(args) -> int:
    """Inspect and verify write-ahead metadata journals."""
    from repro.journal.cli import cmd_journal as run

    return run(args)


def cmd_fig14(args) -> None:
    """Figure 14: storage load balance."""
    from repro.experiments.loadbalance import storage_balance

    executor = _executor_from_args(args)
    shares = storage_balance(
        num_blocks=args.blocks, runs=args.runs, executor=executor
    )
    ranks = (0, 4, 9, 14, 19)
    rows = [
        [p.upper()] + [f"{100 * shares[p][r]:.3f}%" for r in ranks]
        for p in ("rr", "ear")
    ]
    print(format_table(["policy"] + [f"rank {r + 1}" for r in ranks], rows))
    _report_sweep(executor)


def cmd_fig15(args) -> None:
    """Figure 15: read load balance (hotness index)."""
    from repro.experiments.loadbalance import read_balance

    executor = _executor_from_args(args)
    sizes = (1, 10, 100, 1000, 10_000)
    result = read_balance(file_sizes=sizes, runs=args.runs, executor=executor)
    rows = [
        [p.upper()] + [f"{100 * result[p][s]:.2f}%" for s in sizes]
        for p in ("rr", "ear")
    ]
    print(format_table(["policy"] + [f"F={s}" for s in sizes], rows))
    _report_sweep(executor)


def cmd_cache(args) -> int:
    """Inspect or clear the parallel sweep result cache."""
    from repro.parallel.cli import cmd_cache as run

    return run(args)


# ----------------------------------------------------------------------
# Parser assembly
# ----------------------------------------------------------------------
def _apply_scheduler_env(args) -> None:
    """Export ``--scheduler`` to ``$REPRO_SIM_SCHEDULER`` for this run.

    Head-to-head grids run through the sweep executor, whose worker
    processes inherit the environment — exporting reaches every
    ``Simulator`` the command constructs (directly or in workers)
    without widening the picklable trial configs.
    """
    if getattr(args, "scheduler", None):
        import os

        from repro.sim.scheduler import SCHEDULER_ENV

        os.environ[SCHEDULER_ENV] = args.scheduler


def _add_scheduler_argument(parser: argparse.ArgumentParser) -> None:
    from repro.sim.scheduler import SCHEDULER_NAMES

    parser.add_argument(
        "--scheduler",
        choices=SCHEDULER_NAMES,
        default=None,
        help="simulation-kernel event scheduler (default: "
        "$REPRO_SIM_SCHEDULER, else heap); heap and calendar produce "
        "byte-identical results — calendar wins past ~10^6 pending events",
    )


def _add_workers_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run sweep trials through the parallel executor with N worker "
        "processes (0 = in-process executor; results are identical)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="with --workers: skip the on-disk result cache",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from Li, Hu & Lee (DSN 2015).",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    p = sub.add_parser("fig3", help=cmd_fig3.__doc__)
    p.add_argument("--min-racks", type=int, default=14)
    p.add_argument("--max-racks", type=int, default=40)
    p.set_defaults(func=cmd_fig3)

    p = sub.add_parser("theorem1", help=cmd_theorem1.__doc__)
    p.add_argument("--racks", type=int, default=20)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--stripes", type=int, default=300)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_theorem1)

    for name, func in (("fig8a", cmd_fig8a), ("fig8b", cmd_fig8b),
                       ("fig9", cmd_fig9)):
        p = sub.add_parser(name, help=func.__doc__)
        p.add_argument("--stripes", type=int, default=96)
        p.add_argument("--seeds", type=int, default=3)
        p.set_defaults(func=func)

    p = sub.add_parser("fig10", help=cmd_fig10.__doc__)
    p.add_argument("--jobs", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig10)

    p = sub.add_parser("fig12", help=cmd_fig12.__doc__)
    p.add_argument("--stripes", type=int, default=96)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_fig12)

    for name, func in (
        ("fig13a", cmd_fig13a), ("fig13b", cmd_fig13b),
        ("fig13c", cmd_fig13c), ("fig13d", cmd_fig13d),
        ("fig13e", cmd_fig13e), ("fig13f", cmd_fig13f),
    ):
        p = sub.add_parser(name, help=func.__doc__)
        p.add_argument("--stripes-per-process", type=int, default=10)
        p.add_argument("--seeds", type=int, default=2)
        _add_scheduler_argument(p)
        _add_workers_arguments(p)
        p.set_defaults(func=func)

    p = sub.add_parser("chaos", help=cmd_chaos.__doc__)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stripes", type=int, default=12)
    p.add_argument("--flaps", type=int, default=4)
    p.add_argument("--rack-outages", type=int, default=1)
    p.add_argument("--corruptions", type=int, default=3)
    p.add_argument("--horizon", type=float, default=40.0)
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser("recovery", help=cmd_recovery.__doc__)
    p.add_argument(
        "scenario",
        nargs="?",
        default="single_node_loss",
        choices=[
            "single_node_loss", "rack_loss", "scrub_storm",
            "rolling_failures",
        ],
        help="which storm to run (default: single_node_loss)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--policy", default="ear", choices=["rr", "ear", "recovery"],
        help="placement policy for a single-scenario run",
    )
    p.add_argument("--stripes", type=int, default=6)
    p.add_argument(
        "--head-to-head", action="store_true",
        help="run the rr/ear/recovery x code comparison grid instead of "
        "one policy",
    )
    p.add_argument(
        "--seeds", type=int, default=1,
        help="with --head-to-head: seeds per grid cell",
    )
    _add_scheduler_argument(p)
    _add_workers_arguments(p)
    p.set_defaults(func=cmd_recovery)

    p = sub.add_parser("pipeline", help=cmd_pipeline.__doc__)
    p.add_argument(
        "--strategy", default="pipeline",
        choices=["rr", "ear", "pipeline"],
        help="contender for a single run: rr/ear download-and-encode or "
        "the pipelined strategy (default: pipeline)",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stripes", type=int, default=6)
    p.add_argument(
        "--chunks", type=int, default=4,
        help="chunks each block is streamed in along the pipeline",
    )
    p.add_argument(
        "--no-disturb", action="store_true",
        help="skip the mid-encode node failure (measure the clean wave)",
    )
    p.add_argument(
        "--head-to-head", action="store_true",
        help="run the rr/ear/pipeline comparison grid instead of one "
        "strategy",
    )
    p.add_argument(
        "--seeds", type=int, default=1,
        help="with --head-to-head: seeds per contender",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit raw trial results as JSON instead of a table",
    )
    _add_scheduler_argument(p)
    _add_workers_arguments(p)
    p.set_defaults(func=cmd_pipeline)

    p = sub.add_parser("bench", help=cmd_bench.__doc__)
    from repro.bench.cli import add_bench_arguments

    add_bench_arguments(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("lint", help=cmd_lint.__doc__)
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("journal", help=cmd_journal.__doc__)
    from repro.journal.cli import add_journal_arguments

    add_journal_arguments(p)
    p.set_defaults(func=cmd_journal)

    p = sub.add_parser("fig14", help=cmd_fig14.__doc__)
    p.add_argument("--blocks", type=int, default=10_000)
    p.add_argument("--runs", type=int, default=10)
    _add_workers_arguments(p)
    p.set_defaults(func=cmd_fig14)

    p = sub.add_parser("fig15", help=cmd_fig15.__doc__)
    p.add_argument("--runs", type=int, default=10)
    _add_workers_arguments(p)
    p.set_defaults(func=cmd_fig15)

    p = sub.add_parser("cache", help=cmd_cache.__doc__)
    from repro.parallel.cli import add_cache_arguments

    add_cache_arguments(p)
    p.set_defaults(func=cmd_cache)

    return parser


def list_experiments() -> List[str]:
    """Experiment ids the CLI can run."""
    return [
        "fig3", "theorem1", "fig8a", "fig8b", "fig9", "fig10", "fig12",
        "fig13a", "fig13b", "fig13c", "fig13d", "fig13e", "fig13f",
        "fig14", "fig15", "chaos", "recovery", "pipeline",
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        for name in list_experiments():
            print(name)
        return 0
    result = args.func(args)
    return 0 if result is None else int(result)


if __name__ == "__main__":
    sys.exit(main())
