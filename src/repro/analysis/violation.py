"""Equation (1): rack fault-tolerance violation under preliminary EAR.

Preliminary EAR pins one replica of each of the ``k`` stripe blocks in the
core rack and puts the remaining copies in one random non-core rack per
block.  After encoding, rack-level fault tolerance (one block per rack,
``c = 1``) survives iff the per-block rack draws span at least ``k - 1``
distinct racks — with exactly ``k - 1``, one member of the single colliding
pair retains its core-rack copy.  Hence the violation probability

    f = 1 - [ C(R-1, k) k!  +  C(k, 2) C(R-1, k-1) (k-1)! ] / (R-1)^k

which Figure 3 plots against ``R`` for ``k`` in {6, 8, 10, 12}.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

from repro.cluster.topology import ClusterTopology
from repro.core.flowgraph import StripeFlowGraph


def violation_probability(num_racks: int, k: int) -> float:
    """Closed-form Equation (1).

    Args:
        num_racks: Total racks ``R`` (core rack included).
        k: Data blocks per stripe.

    Returns:
        Probability that a preliminary-EAR stripe cannot satisfy single
        block per rack fault tolerance without relocation.
    """
    r_minus_1 = num_racks - 1
    if k < 1:
        raise ValueError("k must be positive")
    if r_minus_1 < 1:
        raise ValueError("need at least two racks")
    if r_minus_1 < k - 1:
        # Fewer than k - 1 non-core racks: the draws cannot span k - 1
        # distinct racks, so violation is certain.
        return 1.0
    total = r_minus_1 ** k
    all_distinct = math.comb(r_minus_1, k) * math.factorial(k) if r_minus_1 >= k else 0
    one_pair = (
        math.comb(k, 2)
        * math.comb(r_minus_1, k - 1)
        * math.factorial(k - 1)
    )
    f = 1.0 - (all_distinct + one_pair) / total
    # Guard against floating-point drift just outside [0, 1].
    return min(1.0, max(0.0, f))


def violation_probability_mc(
    num_racks: int, k: int, trials: int, rng: random.Random
) -> float:
    """Monte-Carlo estimate of Equation (1) via direct rack draws.

    Draws each block's non-core rack uniformly from the ``R - 1`` non-core
    racks and applies the span criterion (at least ``k - 1`` distinct).
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    r_minus_1 = num_racks - 1
    violations = 0
    for __ in range(trials):
        draws = [rng.randrange(r_minus_1) for __ in range(k)]
        if len(set(draws)) < k - 1:
            violations += 1
    return violations / trials


def violation_probability_flowgraph_mc(
    num_racks: int,
    k: int,
    trials: int,
    rng: random.Random,
    nodes_per_rack: int = 50,
) -> float:
    """Monte-Carlo estimate via the *actual* flow-graph feasibility test.

    Builds full replica layouts (core rack + two copies in one random other
    rack, 3-way replication) and asks :class:`StripeFlowGraph` with
    ``c = 1`` whether a retention matching exists.  With many nodes per
    rack this converges to Equation (1); it exists to cross-validate the
    closed form against the machinery EAR really uses.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    topology = ClusterTopology(nodes_per_rack=nodes_per_rack, num_racks=num_racks)
    graph = StripeFlowGraph(topology, c=1)
    core_rack = 0
    violations = 0
    for __ in range(trials):
        layout = {}
        for block in range(k):
            primary = rng.choice(topology.nodes_in_rack(core_rack))
            other_rack = rng.randrange(1, num_racks)
            seconds = rng.sample(list(topology.nodes_in_rack(other_rack)), 2)
            layout[block] = (primary, *seconds)
        if not graph.is_feasible(layout):
            violations += 1
    return violations / trials


def figure3_table(
    rack_counts: Sequence[int] = tuple(range(14, 41, 2)),
    ks: Sequence[int] = (6, 8, 10, 12),
) -> Dict[int, List[float]]:
    """The Figure 3 data: ``{k: [f(R) for R in rack_counts]}``."""
    return {
        k: [violation_probability(r, k) for r in rack_counts] for k in ks
    }
