"""Theorem 1: the expected number of layout redraws EAR needs.

For the ``i``-th data block of a stripe (1-indexed) on a CFS with ``R``
racks, per-rack cap ``c``, and racks with plenty of nodes, the expected
number of attempts to find a layout that raises the max flow to ``i`` is

    E_i <= [ 1 - floor((i - 1) / c) / (R - 1) ] ** -1.

The paper's examples: at R = 20, c = 1 the bound at the k-th block is 1.9
for k = 10 (Facebook) and about 2.4 for k = 12 (Azure).

``empirical_attempts`` measures the real redraw counts from an
:class:`~repro.core.ear.EncodingAwareReplication` run; the theorem's bound
assumes racks with "a sufficiently large number of nodes", so empirical
means can exceed the bound slightly on small racks (node collisions make
condition (ii) of the proof fail occasionally).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.topology import ClusterTopology
from repro.core.ear import EncodingAwareReplication
from repro.core.policy import ReplicationScheme, TWO_RACKS
from repro.erasure.codec import CodeParams


def theorem1_bound(index: int, num_racks: int, c: int = 1) -> float:
    """The Theorem 1 upper bound on ``E_i``.

    Args:
        index: The block's position ``i`` within its stripe (1-indexed).
        num_racks: Total racks ``R``.
        c: Per-rack cap.

    Raises:
        ValueError: When so many racks are full that no layout can qualify
            (``floor((i-1)/c) >= R - 1``).
    """
    if index < 1:
        raise ValueError("index is 1-based")
    if num_racks < 2:
        raise ValueError("need at least two racks")
    if c < 1:
        raise ValueError("c must be positive")
    full_racks = (index - 1) // c
    denom = 1.0 - full_racks / (num_racks - 1)
    if denom <= 0:
        raise ValueError(
            f"block {index} cannot be placed: up to {full_racks} full racks "
            f"but only {num_racks - 1} non-core racks exist"
        )
    return 1.0 / denom


def theorem1_bounds(k: int, num_racks: int, c: int = 1) -> List[float]:
    """Bounds for every block index 1..k of a stripe."""
    return [theorem1_bound(i, num_racks, c) for i in range(1, k + 1)]


def empirical_attempts(
    num_racks: int,
    nodes_per_rack: int,
    code: CodeParams,
    num_stripes: int,
    rng: Optional[random.Random] = None,
    c: int = 1,
    scheme: ReplicationScheme = TWO_RACKS,
) -> Dict[int, float]:
    """Measure mean redraw counts per block index from real EAR runs.

    Places blocks into a single designated core rack until ``num_stripes``
    stripes have sealed, then averages the recorded attempt counts.

    Returns:
        Mapping block index (1..k) -> mean observed attempts.
    """
    if num_stripes < 1:
        raise ValueError("num_stripes must be positive")
    rng = rng if rng is not None else random.Random(0)
    topology = ClusterTopology(nodes_per_rack=nodes_per_rack, num_racks=num_racks)
    ear = EncodingAwareReplication(
        topology, code, scheme=scheme, rng=rng, c=c
    )
    core_rack = 0
    writer = topology.nodes_in_rack(core_rack)[0]
    block_id = 0
    while len(ear.store.sealed_stripes()) < num_stripes:
        ear.place_block(block_id, writer_node=writer)
        block_id += 1
    return {
        index: sum(values) / len(values)
        for index, values in ear.attempts_by_index().items()
    }
