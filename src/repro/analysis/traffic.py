"""Closed-form cross-rack traffic analysis (Section II-B).

The paper motivates EAR with a simple expectation: under RR with 3-way
replication over two racks, "the probability that Rack i contains a replica
of a particular data block is 2/R", so a random encoder must download

    E[cross-rack downloads] = k (1 - 2/R)

of the ``k`` data blocks — "almost k if R is large".  This module provides
that arithmetic (generalised to any replica-rack count), the per-stripe
encoding traffic expectations for both policies, and the recovery traffic
expectation of Section III-D, so simulations can be sanity-checked against
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.erasure.codec import CodeParams


def rack_holds_replica_probability(num_racks: int, replica_racks: int) -> float:
    """P[a given rack holds a replica of a given block].

    With each block's copies spread over ``replica_racks`` racks chosen
    uniformly, this is ``replica_racks / R`` (the paper's ``2 / R``).
    """
    if num_racks < 1:
        raise ValueError("need at least one rack")
    if not 1 <= replica_racks <= num_racks:
        raise ValueError("replica_racks must lie in [1, num_racks]")
    return replica_racks / num_racks


def expected_rr_cross_rack_downloads(
    k: int, num_racks: int, replica_racks: int = 2
) -> float:
    """E[cross-rack downloads] for encoding one RR stripe: ``k (1 - c/R)``.

    Args:
        k: Data blocks per stripe.
        num_racks: Total racks ``R``.
        replica_racks: Racks each block's replicas span (2 for HDFS's
            default 3-way layout).
    """
    if k < 1:
        raise ValueError("k must be positive")
    p_local = rack_holds_replica_probability(num_racks, replica_racks)
    return k * (1.0 - p_local)


def expected_ear_cross_rack_downloads() -> float:
    """E[cross-rack downloads] for encoding one EAR stripe: exactly 0."""
    return 0.0


@dataclass(frozen=True)
class EncodingTraffic:
    """Expected per-stripe cross-rack encoding traffic, in blocks."""

    downloads: float
    uploads: float

    @property
    def total(self) -> float:
        """Cross-rack blocks moved per stripe end to end."""
        return self.downloads + self.uploads


def expected_encoding_traffic(
    policy: str,
    code: CodeParams,
    num_racks: int,
    replica_racks: int = 2,
    ear_c: int = 1,
) -> EncodingTraffic:
    """Expected cross-rack traffic of encoding one stripe.

    * **RR**: ``k (1 - c/R)`` downloads plus (nearly) all ``n - k`` parity
      uploads (a parity block lands in the encoder's rack with probability
      ~``1/R``, which we neglect as the paper does).
    * **EAR**: zero downloads; ``n - k - min(c - 1, n - k)`` uploads when
      the core rack keeps ``min(c - 1, n - k)`` parity blocks (all
      ``n - k`` at ``c = 1``).
    """
    if policy == "rr":
        return EncodingTraffic(
            downloads=expected_rr_cross_rack_downloads(
                code.k, num_racks, replica_racks
            ),
            uploads=float(code.num_parity),
        )
    if policy == "ear":
        reserved = min(ear_c - 1, code.num_parity)
        return EncodingTraffic(
            downloads=0.0,
            uploads=float(code.num_parity - reserved),
        )
    raise ValueError(f"unknown policy {policy!r}")


def expected_recovery_cross_rack_reads(code: CodeParams, ear_c: int = 1) -> float:
    """Expected cross-rack reads to repair one lost block (Section III-D).

    With the stripe spread one block per rack (``c = 1``) the repairing
    node finds at most one input in its own rack: ``k - 1`` cross-rack
    reads.  With ``c`` blocks per rack, up to ``c - 1`` other inputs are
    rack-local: ``k - c`` cross-rack reads (floored at zero).
    """
    if ear_c < 1:
        raise ValueError("c must be positive")
    return float(max(0, code.k - ear_c))


def encoding_traffic_reduction(
    code: CodeParams,
    num_racks: int,
    replica_racks: int = 2,
    ear_c: int = 1,
) -> float:
    """Fraction of cross-rack encoding traffic EAR eliminates vs RR.

    The headline back-of-envelope: at (14,10), R=20, two replica racks,
    RR moves 9 + 4 = 13 cross-rack blocks per stripe while EAR moves 4 —
    a ~69% reduction, matching the ~70% encoding gains of Figure 13.
    """
    rr = expected_encoding_traffic("rr", code, num_racks, replica_racks)
    ear = expected_encoding_traffic(
        "ear", code, num_racks, replica_racks, ear_c=ear_c
    )
    if rr.total == 0:
        raise ValueError("RR traffic expectation is zero; nothing to reduce")
    return 1.0 - ear.total / rr.total
