"""Closed-form and Monte-Carlo analyses from the paper.

* :mod:`repro.analysis.violation` — Equation (1) / Figure 3: probability
  that preliminary EAR violates rack-level fault tolerance.
* :mod:`repro.analysis.iterations` — Theorem 1: expected layout redraws.
* :mod:`repro.analysis.load_balance` — Section V-C: storage distribution
  and the read hotness index H.
"""

from repro.analysis.iterations import (
    empirical_attempts,
    theorem1_bound,
    theorem1_bounds,
)
from repro.analysis.load_balance import (
    hotness_index,
    read_balance_study,
    storage_balance_study,
)
from repro.analysis.traffic import (
    encoding_traffic_reduction,
    expected_ear_cross_rack_downloads,
    expected_encoding_traffic,
    expected_recovery_cross_rack_reads,
    expected_rr_cross_rack_downloads,
)
from repro.analysis.violation import (
    violation_probability,
    violation_probability_flowgraph_mc,
    violation_probability_mc,
)

__all__ = [
    "encoding_traffic_reduction",
    "expected_ear_cross_rack_downloads",
    "expected_encoding_traffic",
    "expected_recovery_cross_rack_reads",
    "expected_rr_cross_rack_downloads",
    "empirical_attempts",
    "hotness_index",
    "read_balance_study",
    "storage_balance_study",
    "theorem1_bound",
    "theorem1_bounds",
    "violation_probability",
    "violation_probability_flowgraph_mc",
    "violation_probability_mc",
]
