"""Section V-C: storage and read load-balancing analysis.

EAR constrains replica placement, so the paper verifies by Monte-Carlo
simulation that it still spreads load like RR:

* **Experiment C.1** — place many blocks, count replicas per rack, sort the
  per-rack shares in descending order (Figure 14; both policies sit in a
  narrow 4.9-5.1% band on 20 racks).
* **Experiment C.2** — the *hotness index* ``H = max_i L(i)`` where
  ``L(i)`` is the share of read requests rack ``i`` receives when every
  block of a file is equally likely to be read and a read goes to a uniform
  random replica-holding rack (Figure 15).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.core.policy import PlacementPolicy

#: A factory producing a fresh policy per run (policies are stateful).
PolicyFactory = Callable[[random.Random], PlacementPolicy]


def rack_replica_shares(
    policy: PlacementPolicy, num_blocks: int
) -> List[float]:
    """Place ``num_blocks`` blocks; return per-rack replica shares, sorted
    in descending order (one Figure 14 curve)."""
    if num_blocks < 1:
        raise ValueError("num_blocks must be positive")
    topology = policy.topology
    counts = [0] * topology.num_racks
    total = 0
    for block_id in range(num_blocks):
        decision = policy.place_block(block_id)
        for node in decision.node_ids:
            counts[topology.rack_of(node)] += 1
            total += 1
    return sorted((c / total for c in counts), reverse=True)


def storage_balance_study(
    factory: PolicyFactory,
    num_blocks: int,
    runs: int,
    seed: int = 0,
) -> List[float]:
    """Average the sorted per-rack shares over ``runs`` seeded runs.

    Returns:
        Mean share per rank (rank 0 = most loaded rack), descending.
    """
    if runs < 1:
        raise ValueError("runs must be positive")
    accumulated: Optional[List[float]] = None
    for run in range(runs):
        policy = factory(random.Random(seed + run))
        shares = rack_replica_shares(policy, num_blocks)
        if accumulated is None:
            accumulated = shares
        else:
            accumulated = [a + s for a, s in zip(accumulated, shares)]
    assert accumulated is not None
    return [a / runs for a in accumulated]


def hotness_index(
    policy: PlacementPolicy, file_blocks: int
) -> float:
    """The hotness index H of one file placed by ``policy``.

    Every data block is equally likely to be read and each read is directed
    to a uniformly random rack holding a replica, so rack ``i`` expects
    ``L(i) = (1/F) * sum_b [i holds b] / |racks(b)|`` of the requests.

    Returns:
        ``H = max_i L(i)`` — small is balanced; ``1/R`` is perfect.
    """
    if file_blocks < 1:
        raise ValueError("file_blocks must be positive")
    topology = policy.topology
    load = [0.0] * topology.num_racks
    for block_id in range(file_blocks):
        decision = policy.place_block(block_id)
        racks = {topology.rack_of(node) for node in decision.node_ids}
        for rack in sorted(racks):
            load[rack] += 1.0 / len(racks)
    return max(load) / file_blocks


def read_balance_study(
    factory: PolicyFactory,
    file_sizes: Sequence[int],
    runs: int,
    seed: int = 0,
) -> Dict[int, float]:
    """Mean hotness index per file size over ``runs`` runs (Figure 15)."""
    if runs < 1:
        raise ValueError("runs must be positive")
    means: Dict[int, float] = {}
    for size in file_sizes:
        total = 0.0
        for run in range(runs):
            policy = factory(random.Random(seed + 1000 * size + run))
            total += hotness_index(policy, size)
        means[size] = total / runs
    return means
