"""Deterministic sweep executor: shard trials across a process pool.

The contract is byte-identity with the sequential order: ``map_trials``
returns results in spec order, every trial seeds itself from its spec, and
trials share nothing — so where (and in what order) they physically run
cannot change the numbers.  Three guard rails keep that contract honest:

* ``workers=0`` is the **oracle path** — a plain in-process loop, the
  exact code a pool worker runs;
* setting ``REPRO_PARALLEL_CHECK=1`` (or ``check=True``) makes every
  parallel map re-run the whole sweep through the oracle and assert the
  results are equal, raising :class:`ParallelMismatch` otherwise;
* a per-trial timeout degrades a wedged worker into an in-process
  fallback execution instead of hanging the sweep, and failed trials are
  retried before the sweep gives up.

With a :class:`~repro.parallel.cache.ResultCache` attached, fingerprints
are consulted before any execution and only dirty trials run; cache hits
and fresh results are indistinguishable by construction (the differential
check covers the cached path too).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.cache import ResultCache
from repro.parallel.spec import TrialSpec
from repro.parallel.worker import TrialOutcome, execute_trial, merge_ops
from repro.sim.metrics import PERF, measure_ops

#: Environment variable enabling the inline differential mode.
CHECK_ENV = "REPRO_PARALLEL_CHECK"


class TrialError(RuntimeError):
    """A trial failed (after exhausting the executor's retries)."""

    def __init__(self, spec: TrialSpec, message: str) -> None:
        super().__init__(f"trial {spec.label} failed: {message}")
        self.spec = spec


class ParallelMismatch(AssertionError):
    """The parallel path diverged from the sequential oracle."""


@dataclass
class SweepReport:
    """Accounting for one :meth:`SweepExecutor.map_trials` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    timeouts: int = 0
    retries: int = 0
    fallbacks: int = 0
    uncached: int = 0
    check_passed: Optional[bool] = None

    def summary(self) -> str:
        """One-line progress summary for CLI echo."""
        parts = [
            f"{self.total} trials",
            f"{self.cache_hits} cached",
            f"{self.executed} executed",
        ]
        if self.timeouts:
            parts.append(f"{self.timeouts} timed out (ran in-process)")
        if self.retries:
            parts.append(f"{self.retries} retried")
        if self.check_passed is not None:
            parts.append(
                "differential check ok"
                if self.check_passed
                else "differential check FAILED"
            )
        return ", ".join(parts)


def _values_equal(got: Any, want: Any) -> bool:
    if got == want:
        return True
    # Equal-by-construction objects without __eq__ still match by pickle.
    try:
        return pickle.dumps(got) == pickle.dumps(want)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False  # unpicklable and not == — genuinely unequal


def _pool_context(preferred: Optional[str]) -> multiprocessing.context.BaseContext:
    methods = multiprocessing.get_all_start_methods()
    if preferred is not None:
        return multiprocessing.get_context(preferred)
    # fork reuses the parent's imported modules — far cheaper per worker
    # and the parent has already imported every experiment module.
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class SweepExecutor:
    """Maps independent trials, optionally across a process pool.

    Args:
        workers: Pool size; ``0`` runs everything in-process (the oracle).
        cache: Optional :class:`ResultCache`; hits skip execution.
        timeout_s: Per-trial cap on waiting for a worker's result.  On
            expiry the trial reruns in-process and the worker's eventual
            result is discarded — the sweep degrades, it never hangs.
        retries: Extra attempts for a trial whose worker *failed* (raised
            or died).  Deterministic failures fail again and surface as
            :class:`TrialError`; the budget exists for environmental
            casualties (OOM-killed worker, broken pipe).
        check: Force the differential mode on/off; ``None`` defers to the
            ``REPRO_PARALLEL_CHECK`` environment variable.
        start_method: multiprocessing start method override (tests).
    """

    def __init__(
        self,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        check: Optional[bool] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers cannot be negative")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.retries = retries
        self._check = check
        self._start_method = start_method
        #: Accounting of the most recent :meth:`map_trials` call.
        self.last_report: Optional[SweepReport] = None

    # ------------------------------------------------------------------
    @property
    def check_enabled(self) -> bool:
        """Whether the inline differential mode is active."""
        if self._check is not None:
            return self._check
        return os.environ.get(CHECK_ENV, "") == "1"

    def map_trials(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Run every trial; return results in spec order.

        Raises:
            TrialError: When a trial fails after retries/fallback.
            ParallelMismatch: In differential mode, when the parallel
                results (cache hits included) differ from a fresh
                sequential run.
        """
        specs = list(specs)
        report = SweepReport(total=len(specs))
        self.last_report = report
        results: List[Any] = [None] * len(specs)
        fingerprints: Dict[int, str] = {}
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None and spec.cacheable:
                fingerprint = spec.fingerprint()
                fingerprints[index] = fingerprint
                hit, value = self.cache.get(fingerprint)
                if hit:
                    results[index] = value
                    report.cache_hits += 1
                    continue
            pending.append(index)

        if pending:
            pending_specs = [specs[i] for i in pending]
            # Daemonic pool workers cannot spawn children; a nested sweep
            # degrades to the in-process path (results are identical by
            # contract, only the wall time changes).
            nested = multiprocessing.current_process().daemon
            if self.workers == 0 or nested:
                values = self._map_sequential(pending_specs, report)
            else:
                values = self._map_parallel(pending_specs, report)
            for index, value in zip(pending, values):
                results[index] = value
                if index in fingerprints:
                    stored = self.cache.put(
                        fingerprints[index], value, tag=specs[index].tag
                    )
                    if not stored:
                        report.uncached += 1

        if self.workers > 0 and self.check_enabled:
            self._differential_check(specs, results, report)
        return results

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------
    def _map_sequential(
        self, specs: Sequence[TrialSpec], report: SweepReport
    ) -> List[Any]:
        values = []
        for spec in specs:
            outcome = execute_trial(spec)  # bumps PERF directly
            if not outcome.ok:
                raise TrialError(spec, outcome.error or "unknown error")
            report.executed += 1
            values.append(outcome.value)
        return values

    def _map_parallel(
        self, specs: Sequence[TrialSpec], report: SweepReport
    ) -> List[Any]:
        context = _pool_context(self._start_method)
        processes = min(self.workers, len(specs))
        pool = context.Pool(processes=processes)
        try:
            handles = [
                pool.apply_async(execute_trial, (spec,)) for spec in specs
            ]
            values = []
            # Collected in spec order: completions may land out of order,
            # but reassembly (and PERF merging) is order-stable.
            for spec, handle in zip(specs, handles):
                values.append(self._collect(pool, spec, handle, report))
            return values
        finally:
            # terminate (not close): a wedged worker must not block exit.
            pool.terminate()
            pool.join()

    def _collect(
        self,
        pool: Any,
        spec: TrialSpec,
        handle: Any,
        report: SweepReport,
    ) -> Any:
        attempts = 1 + self.retries
        last_error = "unknown error"
        for attempt in range(attempts):
            if attempt > 0:
                report.retries += 1
                handle = pool.apply_async(execute_trial, (spec,))
            try:
                outcome: TrialOutcome = handle.get(timeout=self.timeout_s)
            except multiprocessing.TimeoutError:
                report.timeouts += 1
                return self._fallback(spec, report)
            except Exception as exc:  # worker died / result unpicklable
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if outcome.ok:
                merge_ops(outcome.ops)
                report.executed += 1
                return outcome.value
            last_error = outcome.error or last_error
        raise TrialError(spec, last_error)

    def _fallback(self, spec: TrialSpec, report: SweepReport) -> Any:
        """A worker exceeded the timeout: degrade to in-process execution."""
        report.fallbacks += 1
        outcome = execute_trial(spec)  # bumps PERF directly
        if not outcome.ok:
            raise TrialError(spec, outcome.error or "unknown error")
        report.executed += 1
        return outcome.value

    # ------------------------------------------------------------------
    # Differential mode
    # ------------------------------------------------------------------
    def _differential_check(
        self,
        specs: Sequence[TrialSpec],
        results: Sequence[Any],
        report: SweepReport,
    ) -> None:
        with measure_ops() as measured:
            oracle: List[Any] = []
            for spec in specs:
                outcome = execute_trial(spec)
                if not outcome.ok:
                    raise TrialError(spec, outcome.error or "unknown error")
                oracle.append(outcome.value)
        # The oracle re-run is a shadow computation: cancel its counted
        # work so op accounting matches a plain parallel run.
        for name in sorted(measured.ops):
            PERF.bump(name, -measured.ops[name])
        for spec, got, want in zip(specs, results, oracle):
            if spec.normalize is not None:
                got, want = spec.normalize(got), spec.normalize(want)
            if not _values_equal(got, want):
                report.check_passed = False
                raise ParallelMismatch(
                    f"trial {spec.label}: parallel result diverged from "
                    f"the sequential oracle\n  parallel:   {got!r}\n"
                    f"  sequential: {want!r}"
                )
        report.check_passed = True


def make_executor(
    workers: Optional[int],
    cache_dir: Optional[str] = None,
    timeout_s: Optional[float] = None,
) -> Optional[SweepExecutor]:
    """CLI helper: build an executor from a ``--workers`` value.

    ``None`` (flag absent) returns ``None`` — callers keep their legacy
    sequential path.  ``0`` returns an in-process executor (cache still
    active), larger values a pooled one.
    """
    if workers is None:
        return None
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepExecutor(workers=workers, cache=cache, timeout_s=timeout_s)
