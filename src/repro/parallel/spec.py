"""The unit of a sweep: one picklable, content-addressed trial.

A :class:`TrialSpec` names a module-level callable plus the keyword
configuration and seed it runs with.  Because every field is picklable the
spec can cross a process boundary, and because the configuration is
canonically JSON-encoded the spec has a stable :meth:`~TrialSpec.fingerprint`
that keys the on-disk result cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Tuple

from repro.parallel.fingerprint import (
    canonical,
    code_salt,
    fingerprint_document,
)


@dataclass(frozen=True)
class TrialSpec:
    """One independent trial of a sweep grid.

    Attributes:
        fn: A module-level callable invoked as ``fn(seed=seed, **config)``.
            Lambdas and nested functions are rejected — they cannot be
            pickled into a worker process.
        config: Keyword arguments for ``fn``; must be canonically
            fingerprintable (plain data / dataclasses).
        seed: The trial's seed, passed as the ``seed`` keyword.
        tag: Display/grouping label (``"largescale.ear"``); part of the
            trial identity.
        salt_modules: Module or package names whose source is hashed into
            the fingerprint.  Empty means the callable's top-level package
            — conservative: any source change there dirties the trial.
        cacheable: When False the executor never consults or fills the
            result cache for this trial (e.g. wall-clock benchmarks).
        normalize: Optional module-level callable applied to results
            before the differential check compares them (used to strip
            machine-dependent fields such as wall times).  Never applied
            to the returned results themselves.
    """

    fn: Callable[..., Any]
    config: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    tag: str = ""
    salt_modules: Tuple[str, ...] = ()
    cacheable: bool = True
    normalize: Optional[Callable[[Any], Any]] = None

    def __post_init__(self) -> None:
        for target in (self.fn, self.normalize):
            if target is None:
                continue
            qualname = getattr(target, "__qualname__", None)
            if qualname is None or "<locals>" in qualname or "<lambda>" in qualname:
                raise ValueError(
                    f"trial callable {target!r} is not module-level; "
                    "workers cannot unpickle lambdas or nested functions"
                )

    # ------------------------------------------------------------------
    @property
    def callable_ref(self) -> str:
        """The importable ``module:qualname`` reference of the callable."""
        return f"{self.fn.__module__}:{self.fn.__qualname__}"

    @property
    def label(self) -> str:
        """Human-readable identity for progress and error messages."""
        base = self.tag or self.fn.__qualname__
        return f"{base}[seed={self.seed}]"

    def effective_salt_modules(self) -> Tuple[str, ...]:
        """The modules hashed into the code-version salt."""
        if self.salt_modules:
            return self.salt_modules
        return (self.fn.__module__.split(".")[0],)

    def run(self) -> Any:
        """Execute the trial in the current process."""
        return self.fn(seed=self.seed, **dict(self.config))

    def fingerprint(self) -> str:
        """Content address: callable + canonical config + seed + code salt.

        Two specs share a fingerprint exactly when they would run the same
        code on the same configuration and seed; editing any source file
        covered by :meth:`effective_salt_modules` changes it.
        """
        return fingerprint_document({
            "fn": self.callable_ref,
            "config": canonical(dict(self.config)),
            "seed": self.seed,
            "tag": self.tag,
            "salt": code_salt(self.effective_salt_modules()),
        })
