"""``repro cache`` subcommand: inspect and clear the sweep result cache."""

from __future__ import annotations

import argparse

from repro.parallel.cache import DEFAULT_CACHE_DIR, ResultCache


def add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro cache`` arguments to an argparse parser."""
    parser.add_argument(
        "action",
        choices=("stats", "clear"),
        help="stats: show entry counts and hit rates; clear: delete all entries",
    )
    parser.add_argument(
        "--dir",
        dest="cache_dir",
        default=DEFAULT_CACHE_DIR,
        help=f"cache directory (default: {DEFAULT_CACHE_DIR})",
    )


def cmd_cache(args: argparse.Namespace) -> int:
    """Run the ``repro cache`` subcommand; returns a process exit code."""
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entries from {cache.directory}")
        return 0
    for line in cache.stats().lines():
        print(line)
    return 0
