"""Trial execution shared by the in-process oracle and pool workers.

:func:`execute_trial` is the single function both paths run, so a worker
process and the sequential fallback perform byte-identical work.  It is
module-level (picklable) and returns a :class:`TrialOutcome` that carries
the result *and* the trial's counted-work delta, letting the parent merge
worker-side :data:`repro.sim.metrics.PERF` bumps back into its own
registry — op-count accounting stays exact regardless of where a trial
ran.

Failures are returned as data rather than raised: exception instances are
not always picklable, and the executor owns the retry policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.parallel.spec import TrialSpec
from repro.sim.metrics import PERF, measure_ops


@dataclass
class TrialOutcome:
    """What one trial execution produced.

    Attributes:
        value: The trial's return value (``None`` on failure).
        ops: Counted-work delta the trial performed (``PERF`` names).
        error: ``"Type: message"`` when the trial raised, else ``None``.
    """

    value: Any = None
    ops: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the trial completed without raising."""
        return self.error is None


def execute_trial(spec: TrialSpec) -> TrialOutcome:
    """Run one trial in the current process, capturing its counted work.

    Process-local memo caches are cleared first, so the counted work of a
    trial is a function of the trial alone — not of which trials happened
    to run earlier in the same process.
    """
    from repro.erasure import reset_memo_caches

    reset_memo_caches()
    value: Any = None
    error: Optional[str] = None
    with measure_ops() as measured:
        try:
            value = spec.run()
        except Exception as exc:  # returned as data; executor decides
            error = f"{type(exc).__name__}: {exc}"
    if error is not None:
        return TrialOutcome(ops=measured.ops, error=error)
    return TrialOutcome(value=value, ops=measured.ops)


def merge_ops(ops: Dict[str, int]) -> None:
    """Fold a worker-side counted-work delta into this process's PERF."""
    for name in sorted(ops):
        PERF.bump(name, ops[name])
