"""Deterministic parallel sweep execution with a fingerprinted cache.

Public surface::

    TrialSpec       one picklable, content-addressed trial
    SweepExecutor   maps trials across a pool; spec-order reassembly
    ResultCache     on-disk CRC-checked cache keyed by fingerprint
    make_executor   CLI helper turning a --workers value into an executor

The package-wide invariant: ``map_trials`` output is byte-identical for
``workers=0``, ``workers=N``, and a warm cache.  See
``docs/architecture.md`` ("Parallel sweeps & result cache").
"""

from repro.parallel.cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from repro.parallel.codec import CacheCodecError, decode_value, encode_value
from repro.parallel.executor import (
    CHECK_ENV,
    ParallelMismatch,
    SweepExecutor,
    SweepReport,
    TrialError,
    make_executor,
)
from repro.parallel.fingerprint import (
    FingerprintError,
    canonical,
    canonical_json,
    code_salt,
    fingerprint_document,
)
from repro.parallel.spec import TrialSpec
from repro.parallel.worker import TrialOutcome, execute_trial, merge_ops

__all__ = [
    "CHECK_ENV",
    "DEFAULT_CACHE_DIR",
    "CacheCodecError",
    "CacheStats",
    "FingerprintError",
    "ParallelMismatch",
    "ResultCache",
    "SweepExecutor",
    "SweepReport",
    "TrialError",
    "TrialOutcome",
    "TrialSpec",
    "canonical",
    "canonical_json",
    "code_salt",
    "decode_value",
    "encode_value",
    "execute_trial",
    "fingerprint_document",
    "make_executor",
    "merge_ops",
]
