"""On-disk, CRC-checked result cache keyed by trial fingerprint.

Layout (``.repro-cache/`` by default)::

    <fingerprint>.json   one cached trial result (typed JSON + CRC32)
    cache-meta.json      insertion counter + cumulative hit/miss stats

Every entry carries a CRC32 over the canonical payload text; a torn or
bit-rotted entry fails the check and is treated as a miss (and removed),
so a poisoned cache degrades to recomputation, never to wrong results.
Entries beyond ``max_entries`` are evicted oldest-insertion-first — the
insertion sequence is persisted, so eviction order is deterministic and
independent of filesystem timestamps.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.parallel.codec import CacheCodecError, decode_value, encode_value

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk entry format version.
ENTRY_VERSION = 1

_META_NAME = "cache-meta.json"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the cache directory and its cumulative counters."""

    directory: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    corrupt: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups since the cache was created (0.0 when none)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def lines(self) -> List[str]:
        """Human-readable summary for the ``repro cache stats`` CLI."""
        return [
            f"directory:  {self.directory}",
            f"entries:    {self.entries}",
            f"size:       {self.total_bytes} bytes",
            f"hits:       {self.hits}",
            f"misses:     {self.misses}",
            f"hit rate:   {100.0 * self.hit_rate:.1f}%",
            f"corrupt:    {self.corrupt}",
            f"evictions:  {self.evictions}",
        ]


def _payload_crc(payload: Any) -> int:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class ResultCache:
    """Fingerprint-keyed store of trial results.

    Args:
        directory: Cache root; created lazily on the first ``put``.
        max_entries: Eviction cap — after a put pushes the entry count
            beyond this, oldest-inserted entries are removed.
    """

    def __init__(
        self,
        directory: Union[str, Path] = DEFAULT_CACHE_DIR,
        max_entries: int = 4096,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self._meta = self._load_meta()

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / _META_NAME

    def _load_meta(self) -> Dict[str, int]:
        meta = {"seq": 0, "hits": 0, "misses": 0, "corrupt": 0, "evictions": 0}
        try:
            raw = json.loads(self._meta_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return meta
        for key in meta:
            value = raw.get(key)
            if isinstance(value, int) and value >= 0:
                meta[key] = value
        return meta

    def _flush_meta(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._meta_path(), json.dumps(self._meta, sort_keys=True)
        )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def _entry_path(self, fingerprint: str) -> Path:
        if not fingerprint or any(c in fingerprint for c in "/\\."):
            raise ValueError(f"malformed fingerprint {fingerprint!r}")
        return self.directory / f"{fingerprint}.json"

    def _entry_paths(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.glob("*.json") if p.name != _META_NAME
        )

    def get(self, fingerprint: str) -> Tuple[bool, Any]:
        """Look up a fingerprint.

        Returns:
            ``(True, value)`` on a verified hit; ``(False, None)`` on a
            miss.  Entries failing the CRC or decoding are deleted and
            counted as corrupt misses.
        """
        path = self._entry_path(fingerprint)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self._meta["misses"] += 1
            self._flush_meta()
            return False, None
        except (OSError, ValueError):
            return self._corrupt_miss(path)
        try:
            payload = document["payload"]
            valid = (
                document.get("version") == ENTRY_VERSION
                and document.get("fingerprint") == fingerprint
                and document.get("crc") == _payload_crc(payload)
            )
        except (TypeError, KeyError):
            return self._corrupt_miss(path)
        if not valid:
            return self._corrupt_miss(path)
        try:
            value = decode_value(payload)
        except CacheCodecError:
            return self._corrupt_miss(path)
        self._meta["hits"] += 1
        self._flush_meta()
        return True, value

    def _corrupt_miss(self, path: Path) -> Tuple[bool, Any]:
        try:
            path.unlink()
        except OSError:
            pass  # already gone; the recompute will overwrite it
        self._meta["corrupt"] += 1
        self._meta["misses"] += 1
        self._flush_meta()
        return False, None

    def put(self, fingerprint: str, value: Any, tag: str = "") -> bool:
        """Store a trial result.

        Returns:
            True when stored; False when the value is not losslessly
            encodable (the trial simply stays uncached).
        """
        try:
            payload = encode_value(value)
        except CacheCodecError:
            return False
        self._meta["seq"] += 1
        document = {
            "version": ENTRY_VERSION,
            "fingerprint": fingerprint,
            "tag": tag,
            "seq": self._meta["seq"],
            "payload": payload,
            "crc": _payload_crc(payload),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._entry_path(fingerprint), json.dumps(document, sort_keys=True)
        )
        self._evict_over_cap()
        self._flush_meta()
        return True

    def _evict_over_cap(self) -> None:
        paths = self._entry_paths()
        if len(paths) <= self.max_entries:
            return
        ordered: List[Tuple[int, Path]] = []
        for path in paths:
            try:
                seq = json.loads(path.read_text(encoding="utf-8")).get("seq", 0)
            except (OSError, ValueError):
                seq = -1  # unreadable entries go first
            ordered.append((int(seq), path))
        ordered.sort(key=lambda pair: (pair[0], pair[1].name))
        for __, path in ordered[: len(paths) - self.max_entries]:
            try:
                path.unlink()
                self._meta["evictions"] += 1
            except OSError:
                pass  # racing unlink; nothing to evict anymore

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Current entry count, byte size, and cumulative counters."""
        paths = self._entry_paths()
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                pass  # entry vanished between listing and stat
        return CacheStats(
            directory=str(self.directory),
            entries=len(paths),
            total_bytes=total,
            hits=self._meta["hits"],
            misses=self._meta["misses"],
            corrupt=self._meta["corrupt"],
            evictions=self._meta["evictions"],
        )

    def clear(self) -> int:
        """Delete every entry and reset the counters.

        Returns:
            The number of entries removed.
        """
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass  # already gone
        self._meta = {
            "seq": 0, "hits": 0, "misses": 0, "corrupt": 0, "evictions": 0,
        }
        if self.directory.is_dir():
            self._flush_meta()
        return removed
