"""Content-addressing for sweep trials: canonical JSON + code-version salt.

A trial's fingerprint must be a pure function of *what would run*: the
callable, its configuration, the seed, and the source code the trial
depends on.  Two helpers provide that:

* :func:`canonical` / :func:`canonical_json` turn configuration objects
  (dataclasses, dicts with non-string keys, tuples, sets) into a single
  deterministic JSON text, independent of dict insertion order and
  ``PYTHONHASHSEED``;
* :func:`code_salt` hashes the source files of the named modules (or every
  ``*.py`` file of a named package), so editing any relevant source
  invalidates previously cached results instead of silently serving stale
  numbers.

Both are deliberately conservative: an unsupported configuration type
raises :class:`FingerprintError` rather than fingerprinting an ambiguous
representation, and the default salt covers a whole package rather than
guessing a minimal dependency set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib.util
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Tuple


class FingerprintError(TypeError):
    """A configuration value has no canonical representation."""


def canonical(value: Any) -> Any:
    """A JSON-able structure that uniquely represents ``value``.

    Supported inputs: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, lists, tuples, sets/frozensets, mappings (any canonical
    key type), and dataclass instances.  Containers are tagged so that
    e.g. a tuple and a list of the same items fingerprint differently.

    Raises:
        FingerprintError: For values outside that vocabulary.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            "__dataclass__": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                field.name: canonical(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        items = [canonical(item) for item in value]
        return items if isinstance(value, list) else {"__tuple__": items}
    if isinstance(value, (set, frozenset)):
        items = sorted(
            (canonical(item) for item in value), key=_stable_json
        )
        return {"__set__": items}
    if isinstance(value, dict):
        pairs = [[canonical(k), canonical(v)] for k, v in value.items()]
        pairs.sort(key=lambda pair: _stable_json(pair[0]))
        return {"__map__": pairs}
    raise FingerprintError(
        f"cannot fingerprint a {type(value).__name__}: {value!r}"
    )


def _stable_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (see :func:`canonical`)."""
    return _stable_json(canonical(value))


def _module_source_files(name: str) -> Tuple[Path, ...]:
    spec = importlib.util.find_spec(name)
    if spec is None or spec.origin is None:
        raise FingerprintError(f"cannot locate source for module {name!r}")
    origin = Path(spec.origin)
    if spec.submodule_search_locations:
        files: list = []
        for location in spec.submodule_search_locations:
            files.extend(Path(location).rglob("*.py"))
        return tuple(sorted(set(files)))
    return (origin,)


@lru_cache(maxsize=None)
def code_salt(module_names: Tuple[str, ...]) -> str:
    """A hex digest over the source text of the named modules.

    Package names cover every ``*.py`` file under the package directory
    (recursively); plain modules cover their single source file.  The
    digest folds in each file's path relative to its package root, so
    renames change the salt too.

    Raises:
        FingerprintError: When a module's source cannot be located.
    """
    digest = hashlib.sha256()
    for name in sorted(set(module_names)):
        for path in _module_source_files(name):
            digest.update(name.encode("utf-8"))
            digest.update(path.name.encode("utf-8"))
            digest.update(path.read_bytes())
    return digest.hexdigest()


def fingerprint_document(document: Any) -> str:
    """SHA-256 hex digest of a document's canonical JSON."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()
