"""Typed JSON encoding for cached trial results.

JSON alone cannot round-trip the result types sweeps return — tuples
collapse to lists, integer dict keys to strings, dataclasses to nothing.
The cache therefore stores a *typed* encoding that decodes back to an
object equal to the original, so a cache hit is indistinguishable from a
recomputation.

Scope is deliberately small: plain data, containers, and dataclasses.
Anything else raises :class:`CacheCodecError` and the executor simply
skips caching that trial rather than storing a lossy representation.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Any


class CacheCodecError(TypeError):
    """A result value cannot be losslessly encoded (or decoded)."""


_DATACLASS_KEY = "__dataclass__"
_TUPLE_KEY = "__tuple__"
_DICT_KEY = "__dict__"
_BYTES_KEY = "__bytes__"
_MARKERS = (_DATACLASS_KEY, _TUPLE_KEY, _DICT_KEY, _BYTES_KEY)


def encode_value(value: Any) -> Any:
    """Encode ``value`` into a JSON-able structure.

    Raises:
        CacheCodecError: For types outside the supported vocabulary.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return {_BYTES_KEY: value.hex()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _DATACLASS_KEY: f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                field.name: encode_value(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {_TUPLE_KEY: [encode_value(item) for item in value]}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        # Pair list keeps non-string keys (int parameters) and order.
        return {
            _DICT_KEY: [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ]
        }
    raise CacheCodecError(
        f"cannot cache a {type(value).__name__} result: {value!r}"
    )


def _resolve_dataclass(ref: str) -> type:
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise CacheCodecError(f"malformed dataclass reference {ref!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CacheCodecError(f"cannot import {module_name!r}: {exc}") from exc
    target: Any = module
    for part in qualname.split("."):
        target = getattr(target, part, None)
        if target is None:
            raise CacheCodecError(f"no such dataclass: {ref!r}")
    if not (isinstance(target, type) and dataclasses.is_dataclass(target)):
        raise CacheCodecError(f"{ref!r} is not a dataclass")
    return target


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`.

    Raises:
        CacheCodecError: On malformed or stale encodings (e.g. a cached
            dataclass whose fields no longer match the class).
    """
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [decode_value(item) for item in encoded]
    if isinstance(encoded, dict):
        markers = [key for key in _MARKERS if key in encoded]
        if len(markers) != 1:
            raise CacheCodecError(f"ambiguous cache encoding: {encoded!r}")
        marker = markers[0]
        if marker == _BYTES_KEY:
            return bytes.fromhex(encoded[_BYTES_KEY])
        if marker == _TUPLE_KEY:
            return tuple(decode_value(item) for item in encoded[_TUPLE_KEY])
        if marker == _DICT_KEY:
            return {
                decode_value(k): decode_value(v)
                for k, v in encoded[_DICT_KEY]
            }
        cls = _resolve_dataclass(encoded[_DATACLASS_KEY])
        fields = {
            name: decode_value(item)
            for name, item in encoded.get("fields", {}).items()
        }
        try:
            return cls(**fields)
        except TypeError as exc:
            raise CacheCodecError(
                f"stale cached {cls.__name__}: {exc}"
            ) from exc
    raise CacheCodecError(f"undecodable cache payload: {encoded!r}")
