"""The project model: resolver, call graph, reachability.

:class:`ProjectModel` is built from the :class:`FileFacts` of every
module in the analyzed package.  It answers the questions the
interprocedural rule packs ask:

* *what does this dotted chain refer to?* — a conservative
  qualified-name resolver covering imports, ``from``-imports and
  re-exports, ``self``/``cls`` method dispatch with a project-base MRO
  walk, parameter annotations, and ``x = SomeClass(...)`` local types;
* *who calls whom?* — a call graph whose nodes are
  ``"module:qualname"`` strings for project functions and
  ``"ext:dotted.name"`` strings for resolved external calls.  Function
  references passed as call arguments (``executor.submit(worker)``)
  become edges too, which keeps reachability conservative;
* *what is reachable from here?* — sorted-order BFS with parent edges,
  so every finding can cite the exact call path.

Everything iterates in sorted order; two builds over the same facts are
byte-identical regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import Finding, Rule
from repro.lint.project.facts import CallSite, ClassFacts, FileFacts, FunctionFacts

#: Prefix marking a resolved external (non-project) call-graph target.
EXT_PREFIX = "ext:"

#: Resolution kinds returned by :meth:`ProjectModel.resolve_chain`.
KIND_FUNC = "func"
KIND_CLASS = "class"
KIND_EXTERNAL = "external"
KIND_UNKNOWN = "unknown"


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules run only under ``repro lint --project``; the per-file
    engine skips them (their :meth:`check` is an empty no-op, and
    ``is_project`` lets the engines tell the packs apart).  Subclasses
    implement :meth:`check_project`.
    """

    is_project = True

    def check(self, ctx) -> Iterable[Finding]:
        """Per-file entry point — intentionally empty for project rules."""
        return ()

    def check_project(
        self, model: "ProjectModel", config: LintConfig
    ) -> Iterable[Finding]:
        """Yield findings over the whole project model."""
        raise NotImplementedError

    def project_finding(
        self,
        config: LintConfig,
        path: str,
        line: int,
        message: str,
        col: int = 0,
    ) -> Finding:
        """Build a finding at an explicit location, honouring overrides."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=config.severity_overrides.get(self.rule_id, self.severity),
            message=message,
            autofixable=self.autofixable,
        )


class ProjectModel:
    """Whole-program view over a set of per-file facts."""

    def __init__(self, facts: Sequence[FileFacts]) -> None:
        self.files: Dict[str, FileFacts] = {
            f.module: f for f in sorted(facts, key=lambda f: f.module)
        }
        self.functions: Dict[str, FunctionFacts] = {}
        self.classes: Dict[str, ClassFacts] = {}
        for module, file_facts in self.files.items():
            for fn in file_facts.functions:
                self.functions[f"{module}:{fn.qualname}"] = fn
            for cls in file_facts.classes:
                self.classes[f"{module}:{cls.name}"] = cls
        self._edges: Dict[str, Tuple[Tuple[str, int], ...]] = {}
        self._build_call_graph()

    # ------------------------------------------------------------------
    # Structure helpers
    # ------------------------------------------------------------------
    @property
    def modules(self) -> Tuple[str, ...]:
        """Analyzed module names, sorted."""
        return tuple(self.files)

    def path_of(self, module: str) -> str:
        """The report path of a module."""
        return self.files[module].path

    def module_of(self, node: str) -> str:
        """The module part of a ``"module:qualname"`` node."""
        return node.split(":", 1)[0]

    def facts_of(self, node: str) -> FunctionFacts:
        """The :class:`FunctionFacts` of a project function node."""
        return self.functions[node]

    def class_of(self, node: str) -> Optional[str]:
        """The class key a method node belongs to, or None."""
        module, qualname = node.split(":", 1)
        if "." not in qualname or ".<locals>." in qualname:
            return None
        owner = qualname.rsplit(".", 1)[0]
        key = f"{module}:{owner}"
        return key if key in self.classes else None

    def resolve_method(self, class_key: str, name: str) -> Optional[str]:
        """Resolve a method name on a class, walking project bases."""
        seen: Set[str] = set()
        queue: List[str] = [class_key]
        while queue:
            key = queue.pop(0)
            if key in seen or key not in self.classes:
                continue
            seen.add(key)
            cls = self.classes[key]
            if name in cls.method_names:
                return f"{self.module_of(key)}:{cls.name}.{name}"
            module = self.module_of(key)
            for base in cls.bases:
                kind, target = self.resolve_chain(module, tuple(base.split(".")))
                if kind == KIND_CLASS:
                    queue.append(target)
        return None

    def is_store_class(self, class_key: str) -> bool:
        """True for classes using the ``self.journal = None`` store idiom."""
        cls = self.classes.get(class_key)
        return cls is not None and cls.assigns_journal_in_init

    def record_types(self) -> Dict[str, str]:
        """Registered journal record types: ``record_type -> class key``.

        An empty ``record_type`` marks an abstract base (the
        ``JournalRecord`` idiom) and is not a registered type.
        """
        out: Dict[str, str] = {}
        for key in sorted(self.classes):
            record_type = self.classes[key].record_type
            if record_type:
                out[record_type] = key
        return out

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_name(self, module: str, name: str) -> Tuple[str, str]:
        """Resolve a bare name at module level.

        Returns ``(kind, target)``: a project function node, a project
        class key, a dotted external name, or the unresolved name.
        Re-exports through project modules are followed.
        """
        return self._resolve_name(module, name, seen=set())

    def _resolve_name(
        self, module: str, name: str, seen: Set[Tuple[str, str]]
    ) -> Tuple[str, str]:
        if (module, name) in seen:
            return (KIND_UNKNOWN, name)
        seen.add((module, name))
        file_facts = self.files.get(module)
        if file_facts is None:
            return (KIND_UNKNOWN, name)
        if f"{module}:{name}" in self.functions:
            return (KIND_FUNC, f"{module}:{name}")
        if f"{module}:{name}" in self.classes:
            return (KIND_CLASS, f"{module}:{name}")
        for bound, src_module, src_name in file_facts.from_imports:
            if bound != name:
                continue
            if src_module in self.files:
                resolved = self._resolve_name(src_module, src_name, seen)
                if resolved[0] != KIND_UNKNOWN:
                    return resolved
                return (KIND_UNKNOWN, f"{src_module}.{src_name}")
            return (KIND_EXTERNAL, f"{src_module}.{src_name}")
        for bound, target_module in file_facts.imports:
            if bound == name:
                return (
                    (KIND_UNKNOWN, target_module)
                    if target_module in self.files
                    else (KIND_EXTERNAL, target_module)
                )
        for global_name, kind in file_facts.module_globals:
            if global_name == name and kind.startswith("call:"):
                chain = tuple(kind[len("call:"):].split("."))
                resolved = self.resolve_chain(module, chain)
                if resolved[0] == KIND_CLASS:
                    return ("instance", resolved[1])
        return (KIND_UNKNOWN, name)

    def global_kind(self, module: str, name: str) -> Tuple[str, str]:
        """The shape classification of a global as seen from ``module``.

        Follows ``from``-imports to the defining project module, so a
        lock imported from a shared ``state`` module still classifies.
        Returns ``(kind, defining module)``; kind is ``""`` when the
        name is not a known module global.
        """
        seen: Set[Tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            file_facts = self.files.get(module)
            if file_facts is None:
                break
            for global_name, kind in file_facts.module_globals:
                if global_name == name:
                    return (kind, module)
            for bound, src_module, src_name in file_facts.from_imports:
                if bound == name and src_module in self.files:
                    module, name = src_module, src_name
                    break
            else:
                break
        return ("", module)

    def resolve_chain(
        self,
        module: str,
        chain: Tuple[str, ...],
        fn: Optional[FunctionFacts] = None,
        class_key: Optional[str] = None,
        _seen: frozenset = frozenset(),
    ) -> Tuple[str, str]:
        """Resolve a dotted chain as seen inside ``module`` (and, when
        given, inside function ``fn`` of class ``class_key``).

        Returns ``(kind, target)`` where kind is one of
        :data:`KIND_FUNC` (target: function node), :data:`KIND_CLASS`
        (target: class key), :data:`KIND_EXTERNAL` (target: dotted
        external name) or :data:`KIND_UNKNOWN`.
        """
        if not chain:
            return (KIND_UNKNOWN, "")
        head, rest = chain[0], chain[1:]

        if head in ("self", "cls") and class_key is not None:
            if len(rest) == 1:
                method = self.resolve_method(class_key, rest[0])
                if method is not None:
                    return (KIND_FUNC, method)
            return (KIND_UNKNOWN, ".".join(chain))

        if fn is not None:
            nested = f"{module}:{fn.qualname}.<locals>.{head}"
            if not rest and nested in self.functions:
                return (KIND_FUNC, nested)
            typed = dict(fn.local_types)
            typed.update(dict(fn.annotations))
            # ``_seen`` breaks cycles from self-referential local bindings
            # (``view = view.cast(...)``) and mutually-recursive ones.
            if head in typed and len(rest) == 1 and head not in _seen:
                type_chain = tuple(typed[head].split("."))
                owner = self.resolve_chain(
                    module, type_chain, fn, class_key, _seen | {head}
                )
                if owner[0] == KIND_CLASS:
                    method = self.resolve_method(owner[1], rest[0])
                    if method is not None:
                        return (KIND_FUNC, method)
                    return (KIND_UNKNOWN, ".".join(chain))

        kind, target = self.resolve_name(module, head)
        if kind == KIND_FUNC:
            return (kind, target) if not rest else (KIND_UNKNOWN, ".".join(chain))
        if kind == KIND_CLASS:
            if not rest:
                return (kind, target)
            if len(rest) == 1:
                method = self.resolve_method(target, rest[0])
                if method is not None:
                    return (KIND_FUNC, method)
            return (KIND_UNKNOWN, ".".join(chain))
        if kind == "instance":
            if len(rest) == 1:
                method = self.resolve_method(target, rest[0])
                if method is not None:
                    return (KIND_FUNC, method)
            return (KIND_UNKNOWN, ".".join(chain))
        if kind == KIND_EXTERNAL:
            return (KIND_EXTERNAL, ".".join((target,) + rest))
        if kind == KIND_UNKNOWN and target in self.files:
            # ``import repro.sim`` style: resolve the rest in that module.
            if rest:
                return self.resolve_chain(target, rest)
            return (KIND_UNKNOWN, target)
        return (KIND_UNKNOWN, ".".join(chain))

    def resolve_call_site(
        self, node: str, call: CallSite
    ) -> Tuple[str, str]:
        """Resolve one call site of a project function node."""
        module = self.module_of(node)
        return self.resolve_chain(
            module, call.chain, self.functions[node], self.class_of(node)
        )

    def resolve_ref(self, node: str, ref: str) -> Tuple[str, str]:
        """Resolve a dotted reference string inside a function node."""
        module = self.module_of(node)
        return self.resolve_chain(
            module, tuple(ref.split(".")), self.functions[node], self.class_of(node)
        )

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _build_call_graph(self) -> None:
        for node in sorted(self.functions):
            best: Dict[str, int] = {}
            fn = self.functions[node]
            for call in fn.calls:
                self._add_edge(best, self.resolve_call_site(node, call), call.lineno)
                for _key, kind, ref in call.func_args:
                    if kind == "ref":
                        self._add_edge(
                            best, self.resolve_ref(node, ref), call.lineno
                        )
            self._edges[node] = tuple(
                (target, best[target]) for target in sorted(best)
            )

    def _add_edge(
        self, best: Dict[str, int], resolved: Tuple[str, str], lineno: int
    ) -> None:
        kind, target = resolved
        edge: Optional[str] = None
        if kind == KIND_FUNC:
            edge = target
        elif kind == KIND_CLASS:
            edge = self.resolve_method(target, "__init__")
        elif kind == KIND_EXTERNAL:
            edge = EXT_PREFIX + target
        if edge is not None and (edge not in best or lineno < best[edge]):
            best[edge] = lineno

    def call_edges(self, node: str) -> Tuple[Tuple[str, int], ...]:
        """Outgoing edges of a function node: ``(target, lineno)`` pairs,
        sorted by target.  Targets are project nodes or ``ext:`` names."""
        return self._edges.get(node, ())

    def reachable_from(
        self, roots: Iterable[str]
    ) -> Dict[str, Tuple[Optional[str], int]]:
        """Sorted-order BFS from ``roots`` over the call graph.

        Returns ``target -> (parent, call lineno)`` for every node and
        external name reached (roots map to ``(None, 0)``); feed the
        result to :meth:`call_path` to reconstruct a witness path.
        """
        parents: Dict[str, Tuple[Optional[str], int]] = {}
        queue: deque = deque()
        for root in sorted(set(roots)):
            if root not in parents:
                parents[root] = (None, 0)
                queue.append(root)
        while queue:
            node = queue.popleft()
            for target, lineno in self.call_edges(node):
                if target not in parents:
                    parents[target] = (node, lineno)
                    queue.append(target)
        return parents

    def call_path(
        self,
        parents: Dict[str, Tuple[Optional[str], int]],
        target: str,
    ) -> List[Tuple[str, int]]:
        """The witness path root→target: ``(node, call lineno)`` pairs.

        The first entry is a root with lineno 0; the last is ``target``
        with the line of the call that reached it.
        """
        path: List[Tuple[str, int]] = []
        cursor: Optional[str] = target
        while cursor is not None:
            parent, lineno = parents[cursor]
            path.append((cursor, lineno))
            cursor = parent
        path.reverse()
        return path

    def describe_path(
        self, parents: Dict[str, Tuple[Optional[str], int]], target: str
    ) -> str:
        """Human-readable ``a -> b -> c`` witness path for messages."""
        return " -> ".join(
            _short(node) for node, _lineno in self.call_path(parents, target)
        )


def _short(node: str) -> str:
    if node.startswith(EXT_PREFIX):
        return node[len(EXT_PREFIX):]
    module, _colon, qualname = node.partition(":")
    tail = module.rsplit(".", 1)[-1]
    return f"{tail}.{qualname}"


def build_project_model(facts: Sequence[FileFacts]) -> ProjectModel:
    """Build a :class:`ProjectModel` from per-file facts."""
    return ProjectModel(facts)
