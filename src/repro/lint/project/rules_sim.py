"""SIM1xx — interprocedural simulation-determinism rules.

The per-file DET002 catches ``time.time()`` written directly inside a
configured path; these rules catch what it cannot: a wall-clock or
blocking call sitting three frames below a DES process generator, in a
module DET002 was never pointed at.  Roots are the generators handed to
``Simulator.process(...)``; from each root the call graph is walked and
any reachable member of the banned external sets is reported, anchored
at the *root generator's* definition with the witness call path in the
message — so the finding lands where the determinism contract is made,
even when the offending call lives in another file.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import Finding, Severity, register
from repro.lint.project.model import (
    EXT_PREFIX,
    KIND_FUNC,
    ProjectModel,
    ProjectRule,
)

#: Externals that read the machine clock (the DET002 set, fully dotted).
WALL_CLOCK_EXTERNALS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Externals that block on the outside world (sleep, subprocesses,
#: sockets, stdin) — poison inside a discrete-event process.
BLOCKING_EXTERNALS = frozenset({
    "time.sleep",
    "input",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.popen", "os.wait", "os.waitpid",
    "select.select",
    "socket.create_connection", "socket.socket",
    "urllib.request.urlopen",
    "http.client.HTTPConnection",
    "requests.get", "requests.post", "requests.request",
})


def process_roots(model: ProjectModel) -> List[Tuple[str, str, int]]:
    """Generators registered as DES processes.

    Returns sorted ``(generator node, registering node, lineno)``
    triples.  A registration is any call resolving to a project method
    ``Simulator.process`` — or, when the receiver cannot be typed, a
    dotted chain ending in ``sim.process`` / ``env.process`` — whose
    argument references a project generator function.
    """
    roots: Set[Tuple[str, str, int]] = set()
    for node in sorted(model.functions):
        for call in model.facts_of(node).calls:
            if not _is_process_registration(model, node, call):
                continue
            for _key, kind, ref in call.func_args:
                if kind not in ("ref", "call"):
                    continue
                resolved_kind, target = model.resolve_ref(node, ref)
                if (
                    resolved_kind == KIND_FUNC
                    and model.facts_of(target).is_generator
                ):
                    roots.add((target, node, call.lineno))
    return sorted(roots)


def _is_process_registration(model, node, call) -> bool:
    if call.chain[-1] != "process":
        return False
    kind, target = model.resolve_call_site(node, call)
    if kind == KIND_FUNC:
        return target.endswith("Simulator.process")
    # Untypeable receiver: accept the conventional names only.
    return len(call.chain) >= 2 and call.chain[-2] in ("sim", "env", "_sim")


def _reachable_bad(
    model: ProjectModel, root: str, banned: frozenset
) -> Iterator[Tuple[str, str]]:
    """(external name, witness path) for each banned external reached."""
    parents = model.reachable_from([root])
    for target in sorted(parents):
        if not target.startswith(EXT_PREFIX):
            continue
        name = target[len(EXT_PREFIX):]
        if name in banned or name.rsplit(".", 1)[0] in banned:
            yield name, model.describe_path(parents, target)


class _ReachabilityRule(ProjectRule):
    """Shared driver: report banned externals reachable from process roots."""

    banned: frozenset = frozenset()
    verb: str = ""

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for root, _registrar, _lineno in process_roots(model):
            facts = model.facts_of(root)
            path = model.path_of(model.module_of(root))
            for name, witness in _reachable_bad(model, root, self.banned):
                yield self.project_finding(
                    config,
                    path,
                    facts.lineno,
                    f"sim process generator '{facts.qualname}' can reach "
                    f"{self.verb} call {name}() via {witness}; simulated "
                    f"time must advance only through the event loop",
                )


@register
class Sim101WallClockReachable(_ReachabilityRule):
    """Wall-clock reads reachable from a DES process generator."""

    rule_id = "SIM101"
    name = "sim-wall-clock-reachable"
    description = (
        "A simulation process generator transitively reaches a wall-clock "
        "source (time.time, datetime.now, ...).  DET002 bans these "
        "per-file in configured paths; SIM101 is its interprocedural "
        "closure — any reachable clock read makes event timestamps "
        "machine-dependent and breaks storm/crash fingerprints."
    )
    severity = Severity.ERROR
    banned = WALL_CLOCK_EXTERNALS
    verb = "wall-clock"


@register
class Sim102BlockingReachable(_ReachabilityRule):
    """Blocking syscalls reachable from a DES process generator."""

    rule_id = "SIM102"
    name = "sim-blocking-call-reachable"
    description = (
        "A simulation process generator transitively reaches a blocking "
        "call (time.sleep, subprocess, sockets, stdin).  A DES process "
        "must yield simulated delays to the event loop; blocking the "
        "worker thread stalls every co-simulated process and couples "
        "results to machine speed."
    )
    severity = Severity.ERROR
    banned = BLOCKING_EXTERNALS
    verb = "blocking"


@register
class Sim103SimTimeEquality(ProjectRule):
    """``==``/``!=`` against a function returning simulated time."""

    rule_id = "SIM103"
    name = "sim-time-float-equality"
    description = (
        "A call result compared with == or != resolves to a function that "
        "returns simulated time (an expression over Simulator.now).  Sim "
        "time is a float that crosses module boundaries; exact equality "
        "is representation-dependent — compare with an ordering or an "
        "explicit tolerance instead."
    )
    severity = Severity.WARNING

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for node in sorted(model.functions):
            facts = model.facts_of(node)
            path = model.path_of(model.module_of(node))
            for chain_text, lineno in facts.compared_calls:
                kind, target = model.resolve_ref(node, chain_text)
                if kind != KIND_FUNC:
                    continue
                callee = model.facts_of(target)
                if not callee.returns_sim_time:
                    continue
                yield self.project_finding(
                    config,
                    path,
                    lineno,
                    f"result of {chain_text}() is simulated time (defined "
                    f"in {model.module_of(target)}) compared with ==/!=; "
                    f"float sim-time equality is unreliable across module "
                    f"boundaries — use an ordering or tolerance",
                )
