"""PAR1xx — interprocedural parallel-sweep safety rules.

PR5's ``TrialSpec`` already rejects non-module-level callables at
runtime; these rules move the contract to lint time and extend it to
what the runtime check cannot see: the *transitive* closure of the
submitted function.  Worker-executed code runs in a forked process, so
closures over locks, open files or live journaled stores deserialize
into nonsense, and mutations of module globals fork-diverge silently —
the parent never sees them, and two workers disagree.

Worker entry points are the ``fn=`` / ``normalize=`` arguments of
``TrialSpec(...)`` constructions; everything reachable from an entry
point is "worker-executed".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import Finding, Severity, register
from repro.lint.project.facts import LAMBDA_REF, CallSite
from repro.lint.project.model import (
    KIND_CLASS,
    KIND_FUNC,
    ProjectModel,
    ProjectRule,
)

#: Keyword arguments of ``TrialSpec`` that must hold worker-safe callables.
CALLABLE_KEYS = ("fn", "normalize")

#: Module-global constructor chains that never survive a fork boundary.
UNPICKLABLE_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.Event",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "open", "io.open",
})

#: Global-name suffixes recognised as deterministic memo tables; pure
#: memoisation repopulates identically in every worker, so mutating it
#: is fork-safe by construction and exempt from PAR103.
MEMO_SUFFIXES = ("_MEMO", "_CACHE")


def submission_sites(
    model: ProjectModel,
) -> List[Tuple[str, CallSite, str, str, str]]:
    """Callable arguments of every ``TrialSpec(...)`` construction.

    Returns sorted ``(submitting node, call, key, arg kind, ref)``
    tuples, one per ``fn=`` / ``normalize=`` argument.
    """
    sites: List[Tuple[str, CallSite, str, str, str]] = []
    for node in sorted(model.functions):
        for call in model.facts_of(node).calls:
            kind, target = model.resolve_call_site(node, call)
            if kind != KIND_CLASS or not target.endswith(":TrialSpec"):
                continue
            for key, arg_kind, ref in call.func_args:
                if key in CALLABLE_KEYS:
                    sites.append((node, call, key, arg_kind, ref))
    return sites


def worker_entry_points(model: ProjectModel) -> List[str]:
    """Project functions submitted as worker entry points, sorted."""
    entries: Set[str] = set()
    for node, _call, _key, arg_kind, ref in submission_sites(model):
        if arg_kind != "ref":
            continue
        kind, target = model.resolve_ref(node, ref)
        if kind == KIND_FUNC:
            entries.add(target)
    return sorted(entries)


@register
class Par101NonModuleLevelTrial(ProjectRule):
    """Lambda or nested function submitted to the sweep executor."""

    rule_id = "PAR101"
    name = "par-trial-not-module-level"
    description = (
        "A TrialSpec callable argument is a lambda or a nested function.  "
        "Worker processes import the callable by module path; only "
        "module-level functions survive the fork boundary.  TrialSpec "
        "raises at runtime — this rule fails the build before it runs."
    )
    severity = Severity.ERROR

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for node, call, key, arg_kind, ref in submission_sites(model):
            path = model.path_of(model.module_of(node))
            if arg_kind == "lambda":
                yield self.project_finding(
                    config,
                    path,
                    call.lineno,
                    f"TrialSpec {key}= receives a lambda; workers import "
                    f"trial callables by module path, so only module-level "
                    f"functions are picklable",
                )
                continue
            if arg_kind != "ref":
                continue
            kind, target = model.resolve_ref(node, ref)
            if kind == KIND_FUNC and ".<locals>." in target:
                yield self.project_finding(
                    config,
                    path,
                    call.lineno,
                    f"TrialSpec {key}= receives nested function '{ref}' "
                    f"(qualname contains <locals>); hoist it to module "
                    f"level so worker processes can import it",
                )


class _WorkerClosureRule(ProjectRule):
    """Shared driver: walk the worker-reachable set and apply a check."""

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        entries = worker_entry_points(model)
        if not entries:
            return
        parents = model.reachable_from(entries)
        for node in sorted(parents):
            if node not in model.functions:
                continue
            witness = model.describe_path(parents, node)
            yield from self.check_worker_function(
                model, config, node, witness
            )

    def check_worker_function(
        self,
        model: ProjectModel,
        config: LintConfig,
        node: str,
        witness: str,
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def _global_kind(
        self, model: ProjectModel, node: str, name: str
    ) -> Tuple[str, str]:
        return model.global_kind(model.module_of(node), name)


@register
class Par102WorkerCapturesLiveObject(_WorkerClosureRule):
    """Worker-reachable code reads an unpicklable/live module global."""

    rule_id = "PAR102"
    name = "par-worker-reads-live-global"
    description = (
        "Code reachable from a sweep trial reads a module-global lock, "
        "open file, or live journaled store.  Such objects exist only in "
        "the parent process; the forked worker sees a stale or invalid "
        "copy, and any journal attached to it silently diverges.  Pass "
        "plain data through TrialSpec config instead."
    )
    severity = Severity.ERROR

    def check_worker_function(
        self, model, config, node, witness
    ) -> Iterable[Finding]:
        facts = model.facts_of(node)
        path = model.path_of(model.module_of(node))
        for name in facts.global_reads:
            kind, defining = self._global_kind(model, node, name)
            if not kind.startswith("call:"):
                continue
            chain = kind[len("call:"):]
            reason = ""
            if chain in UNPICKLABLE_FACTORIES:
                reason = f"a {chain}() object"
            else:
                resolved = model.resolve_chain(defining, tuple(chain.split(".")))
                if resolved[0] == KIND_CLASS and model.is_store_class(
                    resolved[1]
                ):
                    reason = f"a live journaled store ({chain})"
            if reason:
                yield self.project_finding(
                    config,
                    path,
                    facts.lineno,
                    f"'{facts.qualname}' is worker-executed (via {witness}) "
                    f"but reads module global '{name}', {reason}; it does "
                    f"not survive the fork into sweep workers",
                )


@register
class Par103WorkerMutatesGlobal(_WorkerClosureRule):
    """Worker-reachable code mutates module-global state."""

    rule_id = "PAR103"
    name = "par-worker-mutates-global"
    description = (
        "Code reachable from a sweep trial writes a `global` name or "
        "mutates a module-global dict/list/set literal.  Forked workers "
        "each mutate their own copy: the parent never observes the "
        "write, and sequential-vs-parallel runs diverge.  Deterministic "
        "memo tables (names ending in _MEMO/_CACHE) are exempt — they "
        "repopulate identically in every process."
    )
    severity = Severity.WARNING

    def check_worker_function(
        self, model, config, node, witness
    ) -> Iterable[Finding]:
        facts = model.facts_of(node)
        path = model.path_of(model.module_of(node))
        for name in facts.global_writes:
            if name.endswith(MEMO_SUFFIXES):
                continue
            yield self.project_finding(
                config,
                path,
                facts.lineno,
                f"'{facts.qualname}' is worker-executed (via {witness}) "
                f"but rebinds module global '{name}'; the write is lost "
                f"at the fork boundary and breaks sequential/parallel "
                f"equivalence",
            )
        for name, op, lineno in facts.global_mutations:
            if name.endswith(MEMO_SUFFIXES):
                continue
            kind, _defining = self._global_kind(model, node, name)
            if kind not in ("dict", "list", "set"):
                continue
            yield self.project_finding(
                config,
                path,
                lineno,
                f"'{facts.qualname}' is worker-executed (via {witness}) "
                f"but mutates module-global container '{name}' ({op}); "
                f"worker-local mutation forks silently — return the data "
                f"or key it into the result instead",
            )
