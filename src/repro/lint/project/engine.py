"""The project lint driver behind ``repro lint --project`` / ``--changed``.

One run does, in order:

1. discover files (the per-file engine's :func:`iter_python_files`,
   so excludes and ordering match exactly);
2. per file: serve facts + per-file findings from the
   :class:`~repro.lint.project.cache.LintCache` when the fingerprint
   matches, else parse once, run the per-file rules, extract facts, and
   store the entry.  Counted work lands in ``lint.files_analyzed`` /
   ``lint.files_cached`` / ``lint.functions_analyzed`` so the
   ``lint_whole_program`` bench scenario can assert cache behaviour
   without wall-clock flakiness;
3. build the :class:`~repro.lint.project.model.ProjectModel` and run
   every registered project rule, filtering each finding through the
   suppression tables of its *anchor* file — a cross-file finding
   anchored in ``a.py`` honours ``a.py``'s line/file suppressions no
   matter which module caused it;
4. with ``changed_only``, report only findings anchored in files whose
   cache key moved since the manifest was last written.

Warm runs are byte-identical to cold runs: cached per-file findings are
stored post-suppression in engine order, and the model is rebuilt from
facts that serialise canonically.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.engine import (
    PARSE_RULE_ID,
    LintResult,
    _suppressed,
    iter_python_files,
    parse_suppressions,
)
from repro.lint.model import FileContext, Finding, Severity, all_rules
from repro.lint.project.cache import CachedFile, LintCache
from repro.lint.project.facts import FileFacts, extract_file_facts
from repro.lint.project.model import ProjectModel, build_project_model
from repro.sim.metrics import PERF


@dataclass
class ProjectLintResult(LintResult):
    """Outcome of one project lint run.

    Extends the per-file :class:`LintResult` with cache accounting and
    the built model (tests and tooling introspect it).
    """

    files_analyzed: int = 0
    files_cached: int = 0
    functions_analyzed: int = 0
    changed_files: List[str] = field(default_factory=list)
    model: Optional[ProjectModel] = None


def module_name_for(path: str) -> str:
    """The dotted module name of a file, by walking up ``__init__.py``.

    ``src/repro/cluster/block.py`` → ``repro.cluster.block`` (``src``
    has no ``__init__.py``, so the package root is ``repro``).  A file
    outside any package is its own single-segment module.
    """
    absolute = os.path.abspath(path)
    directory, name = os.path.split(absolute)
    parts = [name[:-3] if name.endswith(".py") else name]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.append(package)
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else "__main__"


def _analyze_file(
    path: str, module: str, source: str, config: LintConfig
) -> Tuple[Optional[CachedFile], List[Finding]]:
    """Parse + per-file lint + fact extraction for one file.

    Returns ``(entry, parse_findings)``; a syntax error yields no entry
    and one ``PARSE001`` finding (never cached — a broken file should be
    re-examined every run).
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule_id=PARSE_RULE_ID,
            severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
        )
        return None, [finding]
    per_line, per_file = parse_suppressions(source)
    ctx = FileContext(path=path, source=source, tree=tree, config=config)
    findings: List[Finding] = []
    for rule_cls in all_rules():
        if getattr(rule_cls, "is_project", False):
            continue
        if rule_cls.rule_id in config.disabled_rules:
            continue
        for finding in rule_cls().check(ctx):
            if not _suppressed(finding, per_line, per_file):
                findings.append(finding)
    facts = extract_file_facts(path, module, tree)
    entry = CachedFile(
        facts=facts,
        findings=tuple(sorted(findings)),
        suppress_lines=tuple(
            (line, tuple(sorted(rules)))
            for line, rules in sorted(per_line.items())
        ),
        suppress_file=tuple(sorted(per_file)),
    )
    return entry, []


def lint_project(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    cache: Optional[LintCache] = None,
    changed_only: bool = False,
) -> ProjectLintResult:
    """Whole-program lint over every Python file under ``paths``.

    Args:
        paths: Files or directories to analyze as one project.
        config: Effective configuration (defaults apply when None).
        cache: Incremental cache; None disables caching entirely.
        changed_only: Report only findings anchored in files whose cache
            key differs from the manifest of the previous run (requires
            a cache; without one every file counts as changed).
    """
    config = config if config is not None else LintConfig()
    result = ProjectLintResult()
    manifest = cache.manifest() if cache is not None else {}
    new_manifest: Dict[str, str] = {}
    entries: Dict[str, CachedFile] = {}
    facts_list: List[FileFacts] = []
    changed: List[str] = []

    for file_path in iter_python_files(paths, config):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            result.findings.append(
                Finding(
                    path=file_path,
                    line=1,
                    col=0,
                    rule_id=PARSE_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"file is unreadable: {exc}",
                )
            )
            changed.append(file_path)
            continue
        result.files_checked += 1
        module = module_name_for(file_path)
        entry: Optional[CachedFile] = None
        key = ""
        if cache is not None:
            key = cache.key_for(module, source, config)
            if manifest.get(file_path) != key:
                changed.append(file_path)
            entry = cache.get(key)
        else:
            changed.append(file_path)
        if entry is not None:
            result.files_cached += 1
            PERF.bump("lint.files_cached")
        else:
            entry, parse_findings = _analyze_file(
                file_path, module, source, config
            )
            if entry is None:
                result.findings.extend(parse_findings)
                continue
            result.files_analyzed += 1
            result.functions_analyzed += len(entry.facts.functions)
            PERF.bump("lint.files_analyzed")
            PERF.bump("lint.functions_analyzed", len(entry.facts.functions))
            if cache is not None:
                cache.put(key, entry)
        if cache is not None:
            new_manifest[file_path] = key
        entries[file_path] = entry
        facts_list.append(entry.facts)
        result.findings.extend(entry.findings)

    model = build_project_model(facts_list)
    result.model = model
    for rule_cls in all_rules():
        if not getattr(rule_cls, "is_project", False):
            continue
        if rule_cls.rule_id in config.disabled_rules:
            continue
        for finding in rule_cls().check_project(model, config):
            anchor = entries.get(finding.path)
            if anchor is not None and _suppressed(
                finding, anchor.line_table(), anchor.file_table()
            ):
                continue
            result.findings.append(finding)

    if changed_only:
        changed_set: Set[str] = set(changed)
        result.findings = [
            f for f in result.findings if f.path in changed_set
        ]
    result.changed_files = sorted(changed)
    result.findings.sort()
    if cache is not None:
        cache.write_manifest(new_manifest)
    return result
