"""JRN1xx — interprocedural journal write-ahead rules.

The per-file JRN001 checks record *shape* (frozen dataclass, JSON-typed
fields).  These rules check the write-ahead *protocol* across files:

* every registered record type must have a ``_on_<record_type>`` replay
  handler somewhere in the project, or recovery raises on first replay
  (JRN101);
* inside a journaled store (a class assigning ``self.journal = None``
  in ``__init__``), every mutation of a ``self._*`` field must be
  dominated by a journal barrier — an append under the standard
  ``if self.journal is not None:`` guard, an unconditional append, or a
  composite-op detach (``saved, self.journal = self.journal, None``);
  appends under other conditions dominate only their own block
  (JRN102).  ``restore_*`` / ``resume_*`` / ``_on_*`` replay paths and
  dunders are exempt by contract;
* a record type nothing ever constructs is a mutation path the journal
  cannot describe — either dead code or a store mutator that skips
  journaling entirely (JRN103).

Dominance is a linear source-order approximation over each method's
ordered event stream (see ``facts.StoreEvent``), which exactly accepts
every idiom the seed stores use while rejecting apply-before-journal
orderings.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import Finding, Severity, register
from repro.lint.project.facts import StoreEvent
from repro.lint.project.model import KIND_CLASS, ProjectModel, ProjectRule

#: Method-name prefixes exempt from JRN102: recovery/replay entry
#: points mutate state *from* records, and dunders build or render it.
EXEMPT_METHOD_PREFIXES = ("restore", "resume", "_on_", "__")


def replay_handlers(model: ProjectModel) -> Set[str]:
    """Record types with a ``_on_<type>`` method anywhere in the project."""
    handled: Set[str] = set()
    for key in sorted(model.classes):
        for name in model.classes[key].method_names:
            if name.startswith("_on_"):
                handled.add(name[len("_on_"):])
    return handled


def record_producers(model: ProjectModel) -> Set[str]:
    """Class keys of record types constructed somewhere in the project."""
    producers: Set[str] = set()
    record_keys = set(model.record_types().values())
    for node in sorted(model.functions):
        for call in model.facts_of(node).calls:
            kind, target = model.resolve_call_site(node, call)
            if kind == KIND_CLASS and target in record_keys:
                producers.add(target)
    return producers


@register
class Jrn101MissingReplayHandler(ProjectRule):
    """Registered record type without a replay handler."""

    rule_id = "JRN101"
    name = "jrn-missing-replay-handler"
    description = (
        "A journal record type (a class with a record_type ClassVar) has "
        "no _on_<record_type> method anywhere in the project.  Recovery "
        "dispatches by that name; a journal containing this record "
        "becomes unreplayable the moment it is written."
    )
    severity = Severity.ERROR

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        handled = replay_handlers(model)
        for record_type, key in sorted(model.record_types().items()):
            if record_type in handled:
                continue
            cls = model.classes[key]
            yield self.project_finding(
                config,
                model.path_of(model.module_of(key)),
                cls.lineno,
                f"record type '{record_type}' ({cls.name}) has no "
                f"_on_{record_type} replay handler in any recovery class; "
                f"journals containing it cannot be replayed",
            )


@register
class Jrn102MutationBeforeJournal(ProjectRule):
    """Store-field mutation not dominated by a journal barrier."""

    rule_id = "JRN102"
    name = "jrn-mutation-before-journal"
    description = (
        "A method of a journaled store mutates a self._* field without a "
        "dominating journal barrier (a guarded/unconditional append or a "
        "composite-op detach earlier on every path).  Applying state "
        "before the record is durable is exactly the ordering the "
        "crash-recovery drills exist to rule out."
    )
    severity = Severity.ERROR

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        for node in sorted(model.functions):
            class_key = model.class_of(node)
            if class_key is None or not model.is_store_class(class_key):
                continue
            method = node.rsplit(".", 1)[-1]
            if method.startswith(EXEMPT_METHOD_PREFIXES):
                continue
            facts = model.facts_of(node)
            if not facts.store_events:
                continue
            path = model.path_of(model.module_of(node))
            barriers = [
                e for e in facts.store_events
                if e.kind in ("append", "detach")
            ]
            for event in facts.store_events:
                if event.kind != "mutate":
                    continue
                if any(_dominates(b, event) for b in barriers):
                    continue
                detail = (
                    "no journal append or detach precedes it"
                    if not barriers
                    else "no barrier dominates this path"
                )
                yield self.project_finding(
                    config,
                    path,
                    event.lineno,
                    f"'{facts.qualname}' mutates {event.target} before any "
                    f"journal barrier ({detail}); append the record first "
                    f"— the write-ahead invariant is what recovery replays",
                )


def _dominates(barrier: StoreEvent, mutation: StoreEvent) -> bool:
    if barrier.lineno > mutation.lineno:
        return False
    if barrier.guarded:
        return True
    return barrier.scope_start <= mutation.lineno <= barrier.scope_end


@register
class Jrn103RecordNeverProduced(ProjectRule):
    """Record type with a handler but no construction site."""

    rule_id = "JRN103"
    name = "jrn-record-never-produced"
    description = (
        "A journal record type is registered and has a replay handler, "
        "but nothing in the project ever constructs it.  Either the "
        "record is dead, or — worse — the state change it describes is "
        "applied somewhere through direct mutation without journaling.  "
        "Add a journaled producer on the store or delete the record."
    )
    severity = Severity.WARNING

    def check_project(
        self, model: ProjectModel, config: LintConfig
    ) -> Iterable[Finding]:
        handled = replay_handlers(model)
        produced = record_producers(model)
        for record_type, key in sorted(model.record_types().items()):
            if record_type not in handled or key in produced:
                continue
            cls = model.classes[key]
            yield self.project_finding(
                config,
                model.path_of(model.module_of(key)),
                cls.lineno,
                f"record type '{record_type}' ({cls.name}) has a replay "
                f"handler but no producer anywhere in the project; the "
                f"state change it describes can only be happening through "
                f"unjournaled mutation (or the record is dead)",
            )
