"""Whole-program analysis for reprolint.

The per-file rules (DET/RES/EXC/FLT/HYG/JRN001) see one module at a
time; the failure modes that have actually bitten recent PRs are
cross-module — wall-clock reachable through three calls from a DES
process, an unpicklable closure handed to the sweep executor, a store
mutation that lands before its journal record.  This package provides:

* :mod:`repro.lint.project.facts` — a per-file syntactic fact extractor
  whose output is plain JSON-serialisable data (what the incremental
  cache stores);
* :mod:`repro.lint.project.model` — the :class:`ProjectModel`: parses
  the whole package once, derives an import graph, a qualified-name
  resolver, a conservative call graph, and a reachability engine;
* :mod:`repro.lint.project.cache` — an incremental fact/finding cache
  keyed by source fingerprint + analyzer code salt (the PR5 idiom), so
  warm runs re-analyze only changed files;
* :mod:`repro.lint.project.engine` — the project lint driver behind
  ``repro lint --project`` / ``--changed``;
* the three interprocedural rule packs: :mod:`rules_sim` (SIM1xx),
  :mod:`rules_par` (PAR1xx) and :mod:`rules_jrn` (JRN1xx).

Everything here is byte-deterministic: facts are sorted at
construction, the call graph iterates in sorted order, and a warm
(cached) run produces reports byte-identical to a cold run.
"""

from repro.lint.project.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.project.engine import ProjectLintResult, lint_project
from repro.lint.project.facts import (
    CallSite,
    ClassFacts,
    FileFacts,
    FunctionFacts,
    StoreEvent,
    extract_file_facts,
)
from repro.lint.project.model import ProjectModel, ProjectRule, build_project_model

__all__ = [
    "CallSite",
    "ClassFacts",
    "DEFAULT_CACHE_DIR",
    "FileFacts",
    "FunctionFacts",
    "LintCache",
    "ProjectLintResult",
    "ProjectModel",
    "ProjectRule",
    "StoreEvent",
    "build_project_model",
    "extract_file_facts",
    "lint_project",
]
