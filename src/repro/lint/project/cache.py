"""Fingerprint-keyed incremental cache for project lint runs.

A cache entry holds everything ``repro lint --project`` needs about one
file: its extracted :class:`~repro.lint.project.facts.FileFacts`, its
per-file findings (already filtered through that file's suppressions),
and the suppression tables project rules consult when anchoring
cross-file findings.  The entry key is a SHA-256 over

* the module name and source text,
* the analyzer's own code salt — ``code_salt(("repro.lint",))``, the
  PR5 idiom — so editing any linter module invalidates every entry, and
* a digest of the effective configuration, so flipping a severity
  override or disabling a rule cannot serve stale findings.

A warm run over an unchanged tree therefore never parses a file, and —
because entries store post-suppression findings sorted the same way the
engine sorts them — produces byte-identical reports.  Entries carry a
CRC32 like the PR5 result cache: a torn entry is deleted and recomputed,
never trusted.

The directory also holds ``lint-manifest.json`` mapping file paths to
their last-seen entry keys; ``repro lint --changed`` diffs the current
keys against the manifest to lint only files whose key moved.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple, Union

from repro.lint.config import LintConfig
from repro.lint.model import Finding, Severity
from repro.lint.project.facts import FileFacts, facts_from_dict, facts_to_dict
from repro.parallel.fingerprint import code_salt

#: Default lint cache directory — a sibling namespace inside the PR5
#: result cache root, so ``rm -rf .repro-cache`` clears both.
DEFAULT_CACHE_DIR = ".repro-cache/lint"

#: On-disk entry format version.
ENTRY_VERSION = 1

_MANIFEST_NAME = "lint-manifest.json"


@dataclass(frozen=True)
class CachedFile:
    """Everything the engine needs about one analyzed file."""

    facts: FileFacts
    findings: Tuple[Finding, ...]
    suppress_lines: Tuple[Tuple[int, Tuple[str, ...]], ...]
    suppress_file: Tuple[str, ...]

    def line_table(self) -> Dict[int, Set[str]]:
        """The per-line suppression table in engine form."""
        return {line: set(rules) for line, rules in self.suppress_lines}

    def file_table(self) -> Set[str]:
        """The file-wide suppression table in engine form."""
        return set(self.suppress_file)


def analyzer_salt() -> str:
    """Code salt over the linter package itself (cached by PR5's
    :func:`code_salt`); bumps every cache key when the analyzer changes."""
    return code_salt(("repro.lint",))


def config_digest(config: LintConfig) -> str:
    """Deterministic digest of every finding-affecting config field."""
    payload = {
        "disabled": sorted(config.disabled_rules),
        "exclude": sorted(config.exclude),
        "overrides": {
            rule_id: severity.label
            for rule_id, severity in sorted(config.severity_overrides.items())
        },
        "wall_clock_paths": sorted(config.wall_clock_paths),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _payload_crc(payload: Any) -> int:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class LintCache:
    """Entry store + manifest for incremental project lints.

    Args:
        directory: Cache root; created lazily on the first put.
    """

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(self, module: str, source: str, config: LintConfig) -> str:
        """The cache key of one (module, source, analyzer, config) state."""
        digest = hashlib.sha256()
        for part in (module, analyzer_salt(), config_digest(config), source):
            encoded = part.encode("utf-8")
            digest.update(str(len(encoded)).encode("ascii"))
            digest.update(b":")
            digest.update(encoded)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        if not key or any(c in key for c in "/\\."):
            raise ValueError(f"malformed cache key {key!r}")
        return self.directory / f"{key}.json"

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CachedFile]:
        """A verified entry, or None; corrupt entries are deleted."""
        path = self._entry_path(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            return self._drop_corrupt(path)
        try:
            payload = document["payload"]
            valid = (
                document.get("version") == ENTRY_VERSION
                and document.get("key") == key
                and document.get("crc") == _payload_crc(payload)
            )
            entry = self._decode(payload) if valid else None
        except (TypeError, KeyError, ValueError):
            entry = None
        if entry is None:
            return self._drop_corrupt(path)
        self.hits += 1
        return entry

    def _drop_corrupt(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass  # already gone; the recompute will overwrite it
        self.corrupt += 1
        self.misses += 1
        return None

    def put(self, key: str, entry: CachedFile) -> None:
        """Store one entry (atomic write, CRC-stamped)."""
        payload = self._encode(entry)
        document = {
            "version": ENTRY_VERSION,
            "key": key,
            "payload": payload,
            "crc": _payload_crc(payload),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._entry_path(key), json.dumps(document, sort_keys=True)
        )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Codec
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(entry: CachedFile) -> Dict[str, Any]:
        return {
            "facts": facts_to_dict(entry.facts),
            "findings": [f.to_dict() for f in entry.findings],
            "suppress_lines": [
                [line, list(rules)] for line, rules in entry.suppress_lines
            ],
            "suppress_file": list(entry.suppress_file),
        }

    @staticmethod
    def _decode(payload: Dict[str, Any]) -> CachedFile:
        findings = tuple(
            Finding(
                path=row["path"],
                line=row["line"],
                col=row["col"],
                rule_id=row["rule"],
                severity=Severity.parse(row["severity"]),
                message=row["message"],
                autofixable=row["autofixable"],
            )
            for row in payload["findings"]
        )
        return CachedFile(
            facts=facts_from_dict(payload["facts"]),
            findings=findings,
            suppress_lines=tuple(
                (int(line), tuple(rules))
                for line, rules in payload["suppress_lines"]
            ),
            suppress_file=tuple(payload["suppress_file"]),
        )

    # ------------------------------------------------------------------
    # Manifest (``--changed`` support)
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    def manifest(self) -> Dict[str, str]:
        """Last-run ``path -> entry key`` map (empty when absent/torn)."""
        try:
            raw = json.loads(self._manifest_path().read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        return {
            str(path): str(key)
            for path, key in raw.items()
            if isinstance(path, str) and isinstance(key, str)
        }

    def write_manifest(self, mapping: Dict[str, str]) -> None:
        """Persist the ``path -> entry key`` map of a completed run."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self._manifest_path(), json.dumps(mapping, sort_keys=True)
        )
