"""Per-file syntactic facts: what the project model knows about a module.

Extraction is purely syntactic — no imports are executed, no types are
evaluated — and the result is a tree of frozen dataclasses built only
from strings, ints and tuples, so facts serialise losslessly to JSON
(the incremental cache's storage format) and two extractions of the
same source are byte-identical regardless of ``PYTHONHASHSEED``.

The vocabulary is deliberately small and rule-agnostic:

* every call site, with the dotted chain as written and the dotted
  references of any callable-looking arguments (``sim.process(run())``
  records the ``run`` reference; ``TrialSpec(fn=trial)`` records the
  ``trial`` reference under the ``fn`` key);
* import tables, module-level global bindings (classified by the shape
  of their right-hand side), and per-function reads/writes/mutations of
  non-local names;
* per-function flags interprocedural rules need (generator-ness,
  sim-time returns, ``==`` comparisons against call results);
* the ordered journal/mutation event stream of every method that
  touches ``self.journal`` or a ``self._*`` field (the JRN102 input).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.model import call_name

#: Method names treated as in-place container mutation.
MUTATING_METHODS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard",
    "appendleft", "popleft",
})

#: Sentinel reference for a lambda argument.
LAMBDA_REF = "<lambda>"


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body.

    Attributes:
        chain: The dotted target as written (``("self", "journal",
            "append")``); never empty.
        lineno: 1-based source line of the call.
        func_args: Callable-looking arguments: ``(key, kind, ref)``
            where ``key`` is the keyword name or ``"<posN>"``, ``kind``
            is ``"ref"`` (a bare name/attribute), ``"call"`` (the
            argument is itself an invocation, as in
            ``sim.process(run())``) or ``"lambda"``, and ``ref`` is the
            dotted chain (or :data:`LAMBDA_REF`).
    """

    chain: Tuple[str, ...]
    lineno: int
    func_args: Tuple[Tuple[str, str, str], ...] = ()


@dataclass(frozen=True)
class StoreEvent:
    """One entry of a method's ordered journal/mutation event stream.

    Attributes:
        kind: ``"append"`` (a ``self.journal.<anything>(...)`` call),
            ``"detach"`` (an assignment that rebinds ``self.journal``),
            or ``"mutate"`` (a write to a ``self._*`` field, directly or
            through a local alias).
        target: The mutated root (``"self._blocks"``) for ``mutate``
            events; empty otherwise.
        lineno: 1-based source line.
        guarded: For ``append``: True when every enclosing conditional
            tests ``self.journal`` (the standard attach-guard idiom) —
            such appends dominate everything after them.  Conditional
            appends only dominate lines inside their own branch.
        scope_start: First line of the innermost non-journal conditional
            block containing the event (the event's own line when the
            event is unconditional).
        scope_end: Last line of that block.
    """

    kind: str
    target: str
    lineno: int
    guarded: bool = True
    scope_start: int = 0
    scope_end: int = 0


@dataclass(frozen=True)
class FunctionFacts:
    """Everything the interprocedural rules need about one function."""

    qualname: str
    lineno: int
    is_generator: bool = False
    calls: Tuple[CallSite, ...] = ()
    global_reads: Tuple[str, ...] = ()
    global_writes: Tuple[str, ...] = ()
    global_mutations: Tuple[Tuple[str, str, int], ...] = ()
    returns_sim_time: bool = False
    compared_calls: Tuple[Tuple[str, int], ...] = ()
    store_events: Tuple[StoreEvent, ...] = ()
    params: Tuple[str, ...] = ()
    annotations: Tuple[Tuple[str, str], ...] = ()
    local_types: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ClassFacts:
    """Class-level facts (methods carry their own :class:`FunctionFacts`)."""

    name: str
    lineno: int
    bases: Tuple[str, ...] = ()
    record_type: Optional[str] = None
    assigns_journal_in_init: bool = False
    method_names: Tuple[str, ...] = ()


@dataclass(frozen=True)
class FileFacts:
    """The complete fact set of one module."""

    path: str
    module: str
    imports: Tuple[Tuple[str, str], ...] = ()
    from_imports: Tuple[Tuple[str, str, str], ...] = ()
    functions: Tuple[FunctionFacts, ...] = ()
    classes: Tuple[ClassFacts, ...] = ()
    module_globals: Tuple[Tuple[str, str], ...] = ()

    def function(self, qualname: str) -> Optional[FunctionFacts]:
        """Look up a function by qualified name."""
        for fn in self.functions:
            if fn.qualname == qualname:
                return fn
        return None


# ----------------------------------------------------------------------
# JSON codec (the cache's storage format)
# ----------------------------------------------------------------------
def facts_to_dict(facts: FileFacts) -> Dict[str, Any]:
    """A JSON-ready dict round-tripping through :func:`facts_from_dict`."""
    return _encode(facts)


def _encode(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    if isinstance(
        value, (FileFacts, FunctionFacts, ClassFacts, CallSite, StoreEvent)
    ):
        return {
            spec.name: _encode(getattr(value, spec.name))
            for spec in fields(value)
        }
    return value


def facts_from_dict(payload: Dict[str, Any]) -> FileFacts:
    """Rebuild :class:`FileFacts` from its JSON form."""
    return FileFacts(
        path=payload["path"],
        module=payload["module"],
        imports=_pairs(payload["imports"]),
        from_imports=_pairs(payload["from_imports"]),
        functions=tuple(
            _function_from_dict(item) for item in payload["functions"]
        ),
        classes=tuple(_class_from_dict(item) for item in payload["classes"]),
        module_globals=_pairs(payload["module_globals"]),
    )


def _pairs(items: List[List[str]]) -> Tuple[Tuple[str, ...], ...]:
    return tuple(tuple(item) for item in items)


def _function_from_dict(item: Dict[str, Any]) -> FunctionFacts:
    return FunctionFacts(
        qualname=item["qualname"],
        lineno=item["lineno"],
        is_generator=item["is_generator"],
        calls=tuple(
            CallSite(
                chain=tuple(call["chain"]),
                lineno=call["lineno"],
                func_args=_pairs(call["func_args"]),
            )
            for call in item["calls"]
        ),
        global_reads=tuple(item["global_reads"]),
        global_writes=tuple(item["global_writes"]),
        global_mutations=tuple(
            (m[0], m[1], m[2]) for m in item["global_mutations"]
        ),
        returns_sim_time=item["returns_sim_time"],
        compared_calls=tuple(
            (c[0], c[1]) for c in item["compared_calls"]
        ),
        store_events=tuple(
            StoreEvent(**event) for event in item["store_events"]
        ),
        params=tuple(item["params"]),
        annotations=_pairs(item["annotations"]),
        local_types=_pairs(item["local_types"]),
    )


def _class_from_dict(item: Dict[str, Any]) -> ClassFacts:
    return ClassFacts(
        name=item["name"],
        lineno=item["lineno"],
        bases=tuple(item["bases"]),
        record_type=item["record_type"],
        assigns_journal_in_init=item["assigns_journal_in_init"],
        method_names=tuple(item["method_names"]),
    )


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def extract_file_facts(
    path: str, module: str, tree: ast.Module
) -> FileFacts:
    """Extract the fact set of one parsed module.

    Args:
        path: Path findings will be reported under (stored verbatim).
        module: Dotted module name (``repro.cluster.block``).
        tree: The parsed module.
    """
    imports: List[Tuple[str, str]] = []
    from_imports: List[Tuple[str, str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                imports.append((bound, alias.name))
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                from_imports.append(
                    (alias.asname or alias.name, node.module, alias.name)
                )

    functions: List[FunctionFacts] = []
    classes: List[ClassFacts] = []
    _collect_scopes(tree, "", None, functions, classes)

    module_globals: List[Tuple[str, str]] = []
    for node in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                module_globals.append((target.id, _classify_value(value)))

    return FileFacts(
        path=path,
        module=module,
        imports=tuple(sorted(set(imports))),
        from_imports=tuple(sorted(set(from_imports))),
        functions=tuple(sorted(functions, key=lambda f: (f.qualname, f.lineno))),
        classes=tuple(sorted(classes, key=lambda c: (c.name, c.lineno))),
        module_globals=tuple(sorted(set(module_globals))),
    )


def _classify_value(value: Optional[ast.AST]) -> str:
    """The shape of a module-global's right-hand side."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        chain = call_name(value.func)
        return "call:" + ".".join(chain) if chain else "call:?"
    if isinstance(value, ast.Constant):
        return "const"
    return "other"


def _collect_scopes(
    scope: ast.AST,
    prefix: str,
    class_name: Optional[str],
    functions: List[FunctionFacts],
    classes: List[ClassFacts],
) -> None:
    """Recursively collect function/class facts with Python qualnames."""
    for node in ast.iter_child_nodes(scope):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            functions.append(_extract_function(node, qualname))
            _collect_scopes(
                node, f"{qualname}.<locals>.", None, functions, classes
            )
        elif isinstance(node, ast.ClassDef):
            qualname = f"{prefix}{node.name}"
            classes.append(_extract_class(node, qualname))
            _collect_scopes(node, f"{qualname}.", qualname, functions, classes)


def _extract_class(node: ast.ClassDef, qualname: str) -> ClassFacts:
    bases = tuple(
        sorted(
            ".".join(chain)
            for chain in (call_name(base) for base in node.bases)
            if chain is not None
        )
    )
    record_type: Optional[str] = None
    method_names: List[str] = []
    assigns_journal = False
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_names.append(statement.name)
            if statement.name == "__init__":
                assigns_journal = _init_assigns_journal(statement)
        else:
            target: Optional[ast.AST] = None
            if isinstance(statement, ast.AnnAssign):
                target = statement.target
            elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id == "record_type"
                and isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                record_type = statement.value.value
    return ClassFacts(
        name=qualname,
        lineno=node.lineno,
        bases=bases,
        record_type=record_type,
        assigns_journal_in_init=assigns_journal,
        method_names=tuple(sorted(method_names)),
    )


def _init_assigns_journal(init: ast.AST) -> bool:
    """True when ``__init__`` contains ``self.journal = None`` — the
    attach-later idiom that marks a class as a journaled store."""
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        if not (
            isinstance(node.value, ast.Constant) and node.value.value is None
        ):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "journal"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return True
    return False


# ----------------------------------------------------------------------
# Function bodies
# ----------------------------------------------------------------------
def _own_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, skipping nested def/class/lambda."""
    for child in ast.iter_child_nodes(root):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        yield child
        yield from _own_scope(child)


def _extract_function(node: ast.AST, qualname: str) -> FunctionFacts:
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg is not None:
        params.append(args.vararg.arg)
    if args.kwarg is not None:
        params.append(args.kwarg.arg)

    annotations: List[Tuple[str, str]] = []
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        chain = _annotation_chain(arg.annotation)
        if chain:
            annotations.append((arg.arg, chain))

    local_names: Set[str] = set(params)
    local_types: Dict[str, str] = {}
    aliases: Dict[str, str] = {}
    global_names: Set[str] = set()
    is_generator = False

    # First pass: bindings, so reads can be classified afterwards.
    for child in _own_scope(node):
        if isinstance(child, ast.Global):
            global_names.update(child.names)
        elif isinstance(child, (ast.Yield, ast.YieldFrom)):
            is_generator = True
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                _bind_targets(target, local_names)
            if len(child.targets) == 1 and isinstance(
                child.targets[0], ast.Name
            ):
                name = child.targets[0].id
                if isinstance(child.value, ast.Call):
                    chain = call_name(child.value.func)
                    if chain is not None:
                        local_types[name] = ".".join(chain)
                alias = _self_attr_root(child.value)
                if alias is not None:
                    aliases[name] = alias
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            _bind_targets(child.target, local_names)
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            _bind_targets(child.target, local_names)
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                if item.optional_vars is not None:
                    _bind_targets(item.optional_vars, local_names)
        elif isinstance(child, ast.ExceptHandler) and child.name:
            local_names.add(child.name)
        elif isinstance(
            child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in child.generators:
                _bind_targets(gen.target, local_names)
        elif isinstance(child, ast.NamedExpr):
            _bind_targets(child.target, local_names)
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_names.add(child.name)
    local_names -= global_names

    calls: List[CallSite] = []
    global_reads: Set[str] = set()
    global_writes: Set[str] = set()
    global_mutations: Set[Tuple[str, str, int]] = set()
    compared_calls: Set[Tuple[str, int]] = set()
    returns_sim_time = False

    sim_param = {
        name
        for name, chain in annotations
        if chain.split(".")[-1] == "Simulator"
    }

    for child in _own_scope(node):
        if isinstance(child, ast.Call):
            chain = call_name(child.func)
            if chain is not None:
                calls.append(_call_site(child))
            if (
                chain is not None
                and len(chain) >= 2
                and chain[-1] in MUTATING_METHODS
                and chain[0] not in local_names
                and chain[0] != "self"
                and chain[0] != "cls"
                and len(chain) == 2
            ):
                global_mutations.add((chain[0], chain[-1], child.lineno))
        elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            if child.id not in local_names:
                global_reads.add(child.id)
        elif isinstance(child, ast.Assign):
            for target in child.targets:
                for name in _name_targets(target):
                    if name in global_names:
                        global_writes.add(name)
                _subscript_mutation(
                    target, local_names, global_mutations, "setitem"
                )
        elif isinstance(child, ast.AugAssign):
            for name in _name_targets(child.target):
                if name in global_names:
                    global_writes.add(name)
            _subscript_mutation(
                child.target, local_names, global_mutations, "setitem"
            )
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                _subscript_mutation(
                    target, local_names, global_mutations, "delitem"
                )
        elif isinstance(child, ast.Return) and child.value is not None:
            if _mentions_sim_now(child.value, sim_param):
                returns_sim_time = True
        elif isinstance(child, ast.Compare):
            if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in child.ops):
                for expr in [child.left] + list(child.comparators):
                    if isinstance(expr, ast.Call):
                        chain = call_name(expr.func)
                        if chain is not None:
                            compared_calls.add(
                                (".".join(chain), child.lineno)
                            )

    store_events = _store_events(node, aliases)

    return FunctionFacts(
        qualname=qualname,
        lineno=node.lineno,
        is_generator=is_generator,
        calls=tuple(
            sorted(calls, key=lambda c: (c.lineno, c.chain, c.func_args))
        ),
        global_reads=tuple(sorted(global_reads)),
        global_writes=tuple(sorted(global_writes)),
        global_mutations=tuple(sorted(global_mutations)),
        returns_sim_time=returns_sim_time,
        compared_calls=tuple(sorted(compared_calls)),
        store_events=store_events,
        params=tuple(params),
        annotations=tuple(sorted(annotations)),
        local_types=tuple(sorted(local_types.items())),
    )


def _bind_targets(target: ast.AST, names: Set[str]) -> None:
    if isinstance(target, ast.Name):
        names.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind_targets(element, names)
    elif isinstance(target, ast.Starred):
        _bind_targets(target.value, names)


def _name_targets(target: ast.AST) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _name_targets(element)
    elif isinstance(target, ast.Starred):
        yield from _name_targets(target.value)


def _subscript_mutation(
    target: ast.AST,
    local_names: Set[str],
    out: Set[Tuple[str, str, int]],
    op: str,
) -> None:
    if (
        isinstance(target, ast.Subscript)
        and isinstance(target.value, ast.Name)
        and target.value.id not in local_names
    ):
        out.add((target.value.id, op, target.lineno))


def _annotation_chain(annotation: Optional[ast.AST]) -> str:
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        head = annotation.value.split("[", 1)[0].strip()
        try:
            annotation = ast.parse(head, mode="eval").body
        except SyntaxError:
            return ""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Constant):
        return ""
    chain = call_name(annotation)
    return ".".join(chain) if chain else ""


def _self_attr_root(value: ast.AST) -> Optional[str]:
    """``self._replicas[...]`` or ``self._replicas`` → ``"self._replicas"``."""
    if isinstance(value, ast.Subscript):
        value = value.value
    if (
        isinstance(value, ast.Attribute)
        and isinstance(value.value, ast.Name)
        and value.value.id == "self"
        and value.attr.startswith("_")
    ):
        return f"self.{value.attr}"
    return None


def _call_site(node: ast.Call) -> CallSite:
    chain = call_name(node.func)
    if chain is None:  # pragma: no cover — caller filters
        raise ValueError("call target is not a dotted-name chain")
    func_args: List[Tuple[str, str, str]] = []
    for index, arg in enumerate(node.args):
        entry = _func_arg_ref(f"<pos{index}>", arg)
        if entry is not None:
            func_args.append(entry)
    for keyword in node.keywords:
        if keyword.arg is not None:
            entry = _func_arg_ref(keyword.arg, keyword.value)
            if entry is not None:
                func_args.append(entry)
    return CallSite(
        chain=chain, lineno=node.lineno, func_args=tuple(func_args)
    )


def _func_arg_ref(key: str, arg: ast.AST) -> Optional[Tuple[str, str, str]]:
    if isinstance(arg, ast.Lambda):
        return (key, "lambda", LAMBDA_REF)
    if isinstance(arg, (ast.Name, ast.Attribute)):
        chain = call_name(arg)
        if chain is not None:
            return (key, "ref", ".".join(chain))
        return None
    if isinstance(arg, ast.Call):
        chain = call_name(arg.func)
        if chain is not None:
            return (key, "call", ".".join(chain))
    return None


# ----------------------------------------------------------------------
# Journal/mutation event stream (JRN102 input)
# ----------------------------------------------------------------------
def _mentions_self_journal(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and child.attr == "journal"
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            return True
    return False


def _mentions_sim_now(node: ast.AST, sim_params: Set[str]) -> bool:
    """True when the expression reads ``<sim>.now``."""
    for child in ast.walk(node):
        if not (isinstance(child, ast.Attribute) and child.attr == "now"):
            continue
        chain = call_name(child.value)
        if chain is None:
            continue
        if chain in (("sim",), ("self", "sim"), ("self", "_sim")):
            return True
        if len(chain) == 1 and chain[0] in sim_params:
            return True
    return False


def _store_events(fn: ast.AST, aliases: Dict[str, str]) -> Tuple[StoreEvent, ...]:
    """The ordered journal/mutation event stream of one function body."""
    events: List[StoreEvent] = []
    _walk_events(fn, aliases, events, guarded=True, scope=(0, 0))
    events.sort(key=lambda e: (e.lineno, e.kind, e.target))
    return tuple(events)


def _block_range(node: ast.AST) -> Tuple[int, int]:
    end = getattr(node, "end_lineno", None) or node.lineno
    return (node.lineno, end)


def _walk_events(
    node: ast.AST,
    aliases: Dict[str, str],
    events: List[StoreEvent],
    guarded: bool,
    scope: Tuple[int, int],
) -> None:
    for child in ast.iter_child_nodes(node):
        if isinstance(
            child,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        child_guarded = guarded
        child_scope = scope
        if isinstance(child, (ast.If, ast.While)):
            if not _mentions_self_journal(child.test):
                child_guarded = False
                child_scope = _block_range(child)
        _emit_events(child, aliases, events, child_guarded, child_scope)
        _walk_events(child, aliases, events, child_guarded, child_scope)


def _emit_events(
    node: ast.AST,
    aliases: Dict[str, str],
    events: List[StoreEvent],
    guarded: bool,
    scope: Tuple[int, int],
) -> None:
    def emit(kind: str, target: str, lineno: int) -> None:
        events.append(StoreEvent(
            kind=kind,
            target=target,
            lineno=lineno,
            guarded=guarded,
            scope_start=scope[0],
            scope_end=scope[1],
        ))

    if isinstance(node, ast.Call):
        chain = call_name(node.func)
        if chain is None:
            return
        if len(chain) >= 3 and chain[:2] == ("self", "journal"):
            emit("append", "", node.lineno)
        elif (
            len(chain) >= 2
            and chain[-1] in MUTATING_METHODS
        ):
            root = _event_root(chain[:-1], aliases)
            if root is not None:
                emit("mutate", root, node.lineno)
    elif isinstance(node, ast.Assign):
        for target in node.targets:
            _emit_store_target(target, aliases, emit)
    elif isinstance(node, ast.AugAssign):
        _emit_store_target(node.target, aliases, emit)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            _emit_store_target(target, aliases, emit, op="delitem")


def _event_root(
    chain: Tuple[str, ...], aliases: Dict[str, str]
) -> Optional[str]:
    """The journaled root a dotted mutation target resolves to, if any."""
    if (
        len(chain) == 2
        and chain[0] == "self"
        and chain[1].startswith("_")
    ):
        return f"self.{chain[1]}"
    if len(chain) == 1 and chain[0] in aliases:
        return aliases[chain[0]]
    return None


def _emit_store_target(
    target: ast.AST,
    aliases: Dict[str, str],
    emit,
    op: str = "setitem",
) -> None:
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _emit_store_target(element, aliases, emit, op)
        return
    if isinstance(target, ast.Attribute):
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if target.attr == "journal":
                emit("detach", "", target.lineno)
            elif target.attr.startswith("_"):
                emit("mutate", f"self.{target.attr}", target.lineno)
        return
    if isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Attribute):
            chain = call_name(base)
            if chain is not None:
                root = _event_root(chain, aliases)
                if root is not None:
                    emit("mutate", root, target.lineno)
        elif isinstance(base, ast.Name) and base.id in aliases:
            emit("mutate", aliases[base.id], target.lineno)
