"""Core data model: severities, findings, the rule base class, registry.

A rule is a class with metadata (id, severity, autofixable flag) and a
``check(ctx)`` method yielding findings over one parsed file.  Rules
self-register via the :func:`register` decorator, so adding a rule is one
file in ``repro/lint/rules/`` and nothing else.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.lint.config import LintConfig


class Severity(IntEnum):
    """Finding severities, ordered so comparisons mean what they say."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports and configuration."""
        return self.name.lower()

    @classmethod
    def parse(cls, value: str) -> "Severity":
        """Parse a severity label.

        Raises:
            ValueError: For labels that are not ``info``/``warning``/``error``.
        """
        try:
            return cls[value.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {value!r}; expected one of "
                f"{', '.join(s.label for s in cls)}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str
    autofixable: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (the JSON reporter's row)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.label,
            "message": self.message,
            "autofixable": self.autofixable,
        }


class FileContext:
    """Everything a rule may inspect about one file.

    Attributes:
        path: The path findings are reported under.
        source: Raw module text.
        tree: The parsed ``ast.Module``.
        config: Effective lint configuration.
    """

    def __init__(
        self, path: str, source: str, tree: ast.Module, config: LintConfig
    ) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self._parts = tuple(part for part in path.replace("\\", "/").split("/") if part)

    def in_scope(self, segments: Iterable[str]) -> bool:
        """True when any of ``segments`` appears as a path component.

        Used by path-scoped rules (DET002 applies only under ``sim/``,
        ``core/``, ``faults/``); a file named exactly ``<segment>.py``
        also counts, so single-module layouts stay covered.
        """
        for segment in segments:
            if segment in self._parts or f"{segment}.py" in self._parts:
                return True
        return False

    def functions(self) -> Iterator[ast.AST]:
        """Every function/async-function definition in the module."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes:
        rule_id: Stable identifier (``DET001``); used in reports,
            suppressions and configuration.
        name: Short human name.
        description: One-paragraph rationale shown by ``--explain``-style
            tooling and the docs.
        severity: Default severity; overridable via configuration.
        autofixable: Whether a mechanical rewrite exists (metadata only —
            reprolint reports, it does not rewrite).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    severity: Severity = Severity.ERROR
    autofixable: bool = False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding anchored at ``node``, honouring config overrides."""
        effective = ctx.config.severity_overrides.get(
            self.rule_id, severity if severity is not None else self.severity
        )
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=effective,
            message=message,
            autofixable=self.autofixable,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry.

    Raises:
        ValueError: On a missing or duplicate ``rule_id``.
    """
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rule classes, sorted by rule id (import side-effect free:
    importing ``repro.lint.rules`` is what populates the registry)."""
    import repro.lint.rules  # noqa: F401  — registers the builtin pack

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Type[Rule]:
    """Look up one registered rule class.

    Raises:
        KeyError: For unknown rule ids.
    """
    import repro.lint.rules  # noqa: F401

    return _REGISTRY[rule_id]


def call_name(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The dotted-name chain of a call target, or ``None``.

    ``random.Random`` → ``("random", "Random")``; ``a.b.c()`` →
    ``("a", "b", "c")``; anything not a plain name/attribute chain
    (subscripts, calls) → ``None``.  Shared helper for several rules.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None
