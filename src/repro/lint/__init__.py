"""reprolint — AST-based determinism & resource-safety linter.

EAR's claims (zero cross-rack encoding traffic, the Theorem-1 redraw
bounds, RR-equivalent load balance) are validated by *seeded*
discrete-event simulation: an unseeded RNG, a wall-clock read inside the
simulator, or a leaked link claim silently invalidates experiment results
without failing a single test.  reprolint walks the ``ast`` of every
module and enforces the invariants that keep runs byte-reproducible and
resource-safe:

========  ==============================================================
rule id   enforces
========  ==============================================================
DET001    no module-level / unseeded ``random`` use — randomness must
          flow through an injected, seeded ``random.Random``
DET002    no wall-clock reads (``time.time``, ``datetime.now``, …)
          inside simulation code — simulated time is ``sim.now``
DET003    no iteration over ``set`` values feeding ordered decisions
          without an explicit ``sorted(...)``
RES001    every ``acquire``/``request`` claim released under
          ``try/finally`` (the static form of PR 1's link-claim leak)
EXC001    no ``except Exception``/bare ``except`` that swallows
          ``TransferAborted``/``SimulationError`` without re-raise or
          use of the caught exception
FLT001    no ``==``/``!=`` between simulated-time floats
HYG001    no mutable default arguments
HYG002    no shadowed builtins
========  ==============================================================

Findings are suppressible per line (``# reprolint: disable=RID``) or per
file (``# reprolint: disable-file=RID``); configuration lives in
``[tool.reprolint]`` of ``pyproject.toml``.  Run via ``repro lint``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.model import Finding, Rule, Severity, all_rules, get_rule, register
from repro.lint.reporters import json_report, text_report

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "json_report",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "text_report",
]
