"""The lint driver: file discovery, rule execution, suppressions.

Suppression syntax (mirrors the usual linter conventions):

* ``# reprolint: disable=DET001`` on a line suppresses the listed rules
  (comma separated, or ``all``) for findings anchored on that line;
* ``# reprolint: disable-file=RES001`` anywhere in a file suppresses the
  listed rules (or ``all``) for the whole file.

Suppressions are honoured after severity overrides, so a suppressed
finding never reaches a reporter or the exit code.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import (
    FileContext,
    Finding,
    Severity,
    all_rules,
)

#: Pseudo rule id attached to files that fail to parse.
PARSE_RULE_ID = "PARSE001"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable-file|disable)\s*=\s*"
    r"(?P<rules>all|[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Matches every rule id when a suppression says ``all``.
_ALL = "*"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    def count(self, severity: Severity) -> int:
        """Findings at exactly ``severity``."""
        return sum(1 for f in self.findings if f.severity == severity)

    def count_at_least(self, severity: Severity) -> int:
        """Findings at or above ``severity``."""
        return sum(1 for f in self.findings if f.severity >= severity)

    def exit_code(self, config: LintConfig) -> int:
        """1 when any finding meets the configured fail threshold."""
        return 1 if self.count_at_least(config.fail_on) else 0


def parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Extract (per-line, per-file) suppression tables from source text.

    Returns:
        ``(line_table, file_table)`` where ``line_table`` maps a 1-based
        line number to the rule ids suppressed there and ``file_table``
        holds file-wide suppressed ids; ``"*"`` means every rule.
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "#" not in line:
            continue
        for match in _SUPPRESS_RE.finditer(line):
            rules_text = match.group("rules")
            rules = (
                {_ALL}
                if rules_text == "all"
                else {r.strip().upper() for r in rules_text.split(",") if r.strip()}
            )
            if match.group("kind") == "disable-file":
                per_file |= rules
            else:
                per_line.setdefault(lineno, set()).update(rules)
    return per_line, per_file


def _suppressed(
    finding: Finding,
    per_line: Dict[int, Set[str]],
    per_file: Set[str],
) -> bool:
    if _ALL in per_file or finding.rule_id in per_file:
        return True
    on_line = per_line.get(finding.line, ())
    return _ALL in on_line or finding.rule_id in on_line


def lint_source(
    source: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Lint one module's text; the core entry point everything else wraps.

    Parse failures are reported as a single ``PARSE001`` error finding
    rather than raised, so one broken file cannot hide findings in the
    rest of a run.
    """
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_RULE_ID,
                severity=Severity.ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree, config=config)
    per_line, per_file = parse_suppressions(source)
    findings: List[Finding] = []
    for rule_cls in all_rules():
        if getattr(rule_cls, "is_project", False):
            continue  # whole-program packs run under ``lint --project``
        if rule_cls.rule_id in config.disabled_rules:
            continue
        for finding in rule_cls().check(ctx):
            if not _suppressed(finding, per_line, per_file):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    config = config if config is not None else LintConfig()
    seen: Set[str] = set()
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(names):
                    if name.endswith(".py"):
                        candidate = os.path.join(root, name)
                        if candidate not in seen and not config.is_excluded(candidate):
                            seen.add(candidate)
                            out.append(candidate)
        elif path.endswith(".py") or os.path.isfile(path):
            if path not in seen and not config.is_excluded(path):
                seen.add(path)
                out.append(path)
    return out


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> LintResult:
    """Lint every Python file under ``paths`` (files or directories)."""
    config = config if config is not None else LintConfig()
    result = LintResult()
    for file_path in iter_python_files(paths, config):
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            result.findings.append(
                Finding(
                    path=file_path,
                    line=1,
                    col=0,
                    rule_id=PARSE_RULE_ID,
                    severity=Severity.ERROR,
                    message=f"file is unreadable: {exc}",
                )
            )
            continue
        result.files_checked += 1
        result.findings.extend(lint_source(source, file_path, config))
    result.findings.sort()
    return result
