"""The ``repro lint`` entry point (also runnable standalone).

Usage::

    PYTHONPATH=src python -m repro.cli lint src/repro
    PYTHONPATH=src python -m repro.cli lint src/repro --format json
    PYTHONPATH=src python -m repro.cli lint src/repro --project
    PYTHONPATH=src python -m repro.cli lint src/repro --project --changed
    PYTHONPATH=src python -m repro.lint.cli src/repro   # standalone

``--project`` runs the whole-program analysis (per-file rules plus the
interprocedural SIM1xx/PAR1xx/JRN1xx packs) with the incremental
fingerprint cache; ``--changed`` additionally restricts the report to
findings anchored in files whose fingerprint moved since the previous
run.  ``--no-cache`` forces a cold analysis.

Exit status is 1 when any finding meets the fail threshold (``error`` by
default, override with ``--fail-on`` or ``fail-on`` in pyproject), else 0
— that is the whole CI contract.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Optional, Sequence

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import lint_paths
from repro.lint.model import Severity
from repro.lint.reporters import json_report, sarif_report, text_report


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a parser (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format",
    )
    parser.add_argument(
        "--fail-on", choices=tuple(s.label for s in Severity), default=None,
        help="minimum severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml (default: nearest to the first path)",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="whole-program analysis: per-file rules plus the "
             "interprocedural SIM/PAR/JRN packs, with incremental caching",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="with --project: report only findings anchored in files "
             "whose fingerprint changed since the previous run",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="with --project: skip the incremental cache (cold analysis)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="with --project: cache directory "
             "(default: .repro-cache/lint)",
    )


def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    fail_on: Optional[str] = None,
    config_path: Optional[str] = None,
    project: bool = False,
    changed: bool = False,
    no_cache: bool = False,
    cache_dir: Optional[str] = None,
) -> int:
    """Run the linter and print a report; returns the process exit code."""
    start_dir = None
    if paths:
        first = paths[0]
        start_dir = first if os.path.isdir(first) else os.path.dirname(first) or "."
    config = load_config(pyproject_path=config_path, start_dir=start_dir)
    if fail_on is not None:
        config = replace(config, fail_on=Severity.parse(fail_on))
    if project:
        from repro.lint.project.cache import DEFAULT_CACHE_DIR, LintCache
        from repro.lint.project.engine import lint_project

        cache = None
        if not no_cache:
            cache = LintCache(cache_dir if cache_dir else DEFAULT_CACHE_DIR)
        result = lint_project(
            paths, config, cache=cache, changed_only=changed
        )
    else:
        result = lint_paths(paths, config)
    if fmt == "json":
        report = json_report(result)
    elif fmt == "sarif":
        report = sarif_report(result)
    else:
        report = text_report(result)
    print(report)
    return result.exit_code(config)


def cmd_lint(args: argparse.Namespace) -> int:
    """Adapter used by the top-level ``repro`` CLI."""
    return run_lint(
        paths=args.paths,
        fmt=args.format,
        fail_on=args.fail_on,
        config_path=args.config,
        project=args.project,
        changed=args.changed,
        no_cache=args.no_cache,
        cache_dir=args.cache_dir,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone entry point (``python -m repro.lint.cli``)."""
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based determinism & resource-safety linter.",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return cmd_lint(args)


if __name__ == "__main__":
    sys.exit(main())
