"""Configuration: ``[tool.reprolint]`` in ``pyproject.toml``.

Recognised keys::

    [tool.reprolint]
    disable = ["HYG002"]            # rule ids never reported
    exclude = ["lint/testdata"]     # path substrings skipped entirely
    fail-on = "error"               # minimum severity that fails the run

    [tool.reprolint.severity]
    FLT001 = "warning"              # per-rule severity overrides

    [tool.reprolint.det002]
    paths = ["sim", "core", "faults"]   # packages where wall-clock is banned

Parsing uses :mod:`tomllib` (Python 3.11+); on older interpreters the
defaults apply silently — the linter must never be the thing that breaks
a build for lack of a TOML parser.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on 3.11+
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Packages in which DET002 (wall-clock reads) applies by default.
DEFAULT_WALL_CLOCK_PATHS: Tuple[str, ...] = ("sim", "core", "faults", "journal")


@dataclass(frozen=True)
class LintConfig:
    """Effective linter configuration (immutable; defaults are safe)."""

    disabled_rules: frozenset = frozenset()
    exclude: Tuple[str, ...] = ()
    severity_overrides: Dict[str, "Severity"] = field(default_factory=dict)  # type: ignore[name-defined]  # noqa: F821
    wall_clock_paths: Tuple[str, ...] = DEFAULT_WALL_CLOCK_PATHS
    fail_on: "Severity" = None  # type: ignore[assignment]  # noqa: F821

    def __post_init__(self) -> None:
        from repro.lint.model import Severity

        if self.fail_on is None:
            object.__setattr__(self, "fail_on", Severity.ERROR)

    def is_excluded(self, path: str) -> bool:
        """True when ``path`` matches any configured exclude substring."""
        normalised = path.replace("\\", "/")
        return any(part and part in normalised for part in self.exclude)


def load_config(
    pyproject_path: Optional[str] = None, start_dir: Optional[str] = None
) -> LintConfig:
    """Load configuration, or the defaults when none is found.

    Args:
        pyproject_path: Explicit path to a ``pyproject.toml``.
        start_dir: When no explicit path is given, search upward from
            here (default: the current working directory) for a
            ``pyproject.toml``.

    Returns:
        The effective :class:`LintConfig`; malformed or missing files
        (or a missing TOML parser) yield the defaults.
    """
    path = pyproject_path
    if path is None:
        path = _find_pyproject(start_dir or os.getcwd())
    if path is None or tomllib is None or not os.path.isfile(path):
        return LintConfig()
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, ValueError):
        return LintConfig()
    section = data.get("tool", {}).get("reprolint", {})
    if not isinstance(section, dict):
        return LintConfig()
    return _from_section(section)


def _find_pyproject(start_dir: str) -> Optional[str]:
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, "pyproject.toml")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def _from_section(section: dict) -> LintConfig:
    from repro.lint.model import Severity

    config = LintConfig()

    disabled = section.get("disable", [])
    if isinstance(disabled, list):
        config = replace(
            config,
            disabled_rules=frozenset(
                str(r).upper() for r in disabled if isinstance(r, str)
            ),
        )

    exclude = section.get("exclude", [])
    if isinstance(exclude, list):
        config = replace(
            config,
            exclude=tuple(str(p) for p in exclude if isinstance(p, str)),
        )

    fail_on = section.get("fail-on", section.get("fail_on"))
    if isinstance(fail_on, str):
        try:
            config = replace(config, fail_on=Severity.parse(fail_on))
        except ValueError:
            pass

    overrides = section.get("severity", {})
    if isinstance(overrides, dict):
        parsed: Dict[str, Severity] = {}
        for rule_id, label in overrides.items():
            if not isinstance(label, str):
                continue
            try:
                parsed[str(rule_id).upper()] = Severity.parse(label)
            except ValueError:
                continue
        config = replace(config, severity_overrides=parsed)

    det002 = section.get("det002", {})
    if isinstance(det002, dict):
        paths = det002.get("paths", [])
        if isinstance(paths, list) and paths:
            config = replace(
                config,
                wall_clock_paths=tuple(
                    str(p) for p in paths if isinstance(p, str)
                ),
            )

    return config
