"""EXC001: broad exception handlers must not swallow silently.

A bare ``except:`` or ``except Exception:`` in the fault pipeline
swallows ``TransferAborted`` and ``SimulationError`` along with genuine
bugs; a repair that "succeeds" by ignoring its own failure is precisely
how data loss goes unnoticed in a drill.  A broad handler is acceptable
only when it *does something* with the exception: re-raises, or binds it
and actually uses the binding (records it, logs it, wraps it).
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.lint.model import FileContext, Finding, Rule, Severity, register

_BROAD = frozenset({"Exception", "BaseException"})


@register
class SwallowedExceptionRule(Rule):
    """EXC001: ``except Exception``/bare ``except`` that neither
    re-raises nor uses the caught exception."""

    rule_id = "EXC001"
    name = "swallowed-exception"
    description = (
        "A broad handler with no re-raise and no use of the caught "
        "exception swallows TransferAborted/SimulationError together "
        "with real bugs; narrow the type, re-raise, or record it."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad, label = self._broadness(node)
            if not broad:
                continue
            if self._reraises(node) or self._uses_binding(node):
                continue
            yield self.finding(
                ctx,
                node,
                f"{label} swallows every exception (including "
                "TransferAborted/SimulationError); narrow the type, "
                "re-raise, or record the failure",
            )

    def _broadness(self, handler: ast.ExceptHandler) -> Tuple[bool, str]:
        if handler.type is None:
            return True, "bare except"
        names = []
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            if isinstance(node, ast.Name):
                names.append(node.id)
            elif isinstance(node, ast.Attribute):
                names.append(node.attr)
        for name in names:
            if name in _BROAD:
                return True, f"except {name}"
        return False, ""

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(n, ast.Raise) for n in ast.walk(handler))

    @staticmethod
    def _uses_binding(handler: ast.ExceptHandler) -> bool:
        if handler.name is None:
            return False
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id == handler.name:
                    return True
        return False
