"""The builtin rule pack; importing this package registers every rule."""

from repro.lint.rules import (
    determinism,
    exceptions,
    floats,
    hygiene,
    journal,
    resources,
)

__all__ = [
    "determinism",
    "exceptions",
    "floats",
    "hygiene",
    "journal",
    "resources",
]
