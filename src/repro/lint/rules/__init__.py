"""The builtin rule pack; importing this package registers every rule.

The per-file rules live here; the interprocedural SIM1xx/PAR1xx/JRN1xx
packs live under :mod:`repro.lint.project` (they need the project
model) but are imported here so one import registers everything.
"""

from repro.lint.rules import (
    determinism,
    exceptions,
    floats,
    hygiene,
    journal,
    resources,
    simkernel,
)
from repro.lint.project import (
    rules_jrn,
    rules_par,
    rules_sim,
)

__all__ = [
    "determinism",
    "exceptions",
    "floats",
    "hygiene",
    "journal",
    "resources",
    "simkernel",
    "rules_jrn",
    "rules_par",
    "rules_sim",
]
