"""Classic hygiene rules: HYG001 (mutable defaults), HYG002 (shadowed
builtins).

Neither is determinism-specific, but both have bitten simulation code in
exactly this shape: a mutable default accumulating state across stripes,
and a shadowed ``sum``/``min`` silently changing a load-balance metric.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, Iterator

from repro.lint.model import FileContext, Finding, Rule, Severity, call_name, register

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque",
     "OrderedDict"}
)

#: Builtins worth protecting; dunder names and rarities are excluded.
_BUILTIN_NAMES = frozenset(
    name
    for name in dir(builtins)
    if not name.startswith("_") and name[0].islower()
)


@register
class MutableDefaultRule(Rule):
    """HYG001: mutable default argument values."""

    rule_id = "HYG001"
    name = "mutable-default"
    description = (
        "A mutable default is shared across every call; state leaks "
        "between stripes/experiments. Default to None and build inside."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ctx.functions():
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {func.name}(); "
                        "use None and construct inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = call_name(node.func)
            return chain is not None and chain[-1] in _MUTABLE_CONSTRUCTORS
        return False


@register
class ShadowedBuiltinRule(Rule):
    """HYG002: names that shadow Python builtins.

    Flags function/class names, parameters and plain-name assignments
    that reuse a builtin name (``list``, ``sum``, ``id`` …).  Warning
    severity by default: shadowing is legal and occasionally idiomatic,
    but inside numeric pipelines a shadowed ``sum`` or ``max`` is a bug
    that reads like correct code.
    """

    rule_id = "HYG002"
    name = "shadowed-builtin"
    description = (
        "Shadowing a builtin makes later uses of that builtin silently "
        "resolve to the local value."
    )
    severity = Severity.WARNING

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        # Methods live in their class's attribute namespace — a method
        # named ``format`` shadows nothing — so only flag plain functions.
        method_ids = {
            id(item)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(node) not in method_ids:
                    yield from self._check_def_name(ctx, node, "function")
                yield from self._check_args(ctx, node)
            elif isinstance(node, ast.ClassDef):
                yield from self._check_def_name(ctx, node, "class")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._check_target(ctx, target)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_target(ctx, node.target)
            elif isinstance(node, ast.comprehension):
                yield from self._check_target(ctx, node.target)

    def _check_def_name(
        self, ctx: FileContext, node: ast.AST, kind: str
    ) -> Iterator[Finding]:
        if node.name in _BUILTIN_NAMES:
            yield self.finding(
                ctx, node, f"{kind} name {node.name!r} shadows a builtin"
            )

    def _check_args(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        args = list(func.args.args) + list(func.args.kwonlyargs) + list(
            getattr(func.args, "posonlyargs", [])
        )
        for extra in (func.args.vararg, func.args.kwarg):
            if extra is not None:
                args.append(extra)
        for arg in args:
            if arg.arg in _BUILTIN_NAMES:
                yield self.finding(
                    ctx,
                    arg,
                    f"parameter {arg.arg!r} of {func.name}() shadows a builtin",
                )

    def _check_target(
        self, ctx: FileContext, target: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Name) and target.id in _BUILTIN_NAMES:
            yield self.finding(
                ctx, target, f"assignment to {target.id!r} shadows a builtin"
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(ctx, element)
