"""JRN001: journal records must be frozen, JSON-serializable dataclasses.

The durability layer's correctness rests on two properties of every
record in :mod:`repro.journal.records`: immutability (a record appended
to the write-ahead log must not be mutable afterwards — replay must see
exactly what was applied) and lossless JSON round-tripping (the on-disk
envelope is canonical JSON, so a ``dict``/``list``/object-typed field
would either fail to encode or come back as a different type).  This
rule enforces both statically, on any dataclass that declares itself a
journal record (a ``JournalRecord`` base or a ``record_type`` class
variable).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.lint.model import FileContext, Finding, Rule, Severity, register

#: Scalar annotation names that round-trip through canonical JSON.
_SCALAR_TYPES = frozenset({"int", "str", "bool", "float"})
#: Container heads allowed to wrap other allowed annotations.
_TUPLE_HEADS = frozenset({"Tuple", "tuple"})
_OPTIONAL_HEADS = frozenset({"Optional"})
_CLASSVAR_HEADS = frozenset({"ClassVar"})


def _head_name(node: ast.AST) -> Optional[str]:
    """The unqualified name of an annotation head (``typing.Tuple`` → Tuple)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_json_annotation(node: ast.AST) -> bool:
    """True when an annotation denotes a JSON-round-trippable field type."""
    head = _head_name(node)
    if head is not None and not isinstance(node, ast.Subscript):
        return head in _SCALAR_TYPES
    if isinstance(node, ast.Constant):
        if node.value is None:  # the None in Optional[...] unions
            return True
        if isinstance(node.value, str):  # string annotation: parse and recurse
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return False
            return _is_json_annotation(parsed)
        return False
    if isinstance(node, ast.Subscript):
        head = _head_name(node.value)
        inner = node.slice
        if head in _OPTIONAL_HEADS:
            return _is_json_annotation(inner)
        if head in _TUPLE_HEADS:
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            return all(
                _is_json_annotation(element)
                for element in elements
                if not (
                    isinstance(element, ast.Constant)
                    and element.value is Ellipsis
                )
            )
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: every arm must be allowed (None arms included).
        return _is_json_annotation(node.left) and _is_json_annotation(node.right)
    return False


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    """The ``@dataclass``/``@dataclass(...)`` decorator, if present."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _head_name(target)
        if name == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.AST) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _is_journal_record(node: ast.ClassDef) -> bool:
    """A class opts into the rule via its base or a record_type ClassVar."""
    for base in node.bases:
        if _head_name(base) == "JournalRecord":
            return True
    for statement in node.body:
        if (
            isinstance(statement, ast.AnnAssign)
            and isinstance(statement.target, ast.Name)
            and statement.target.id == "record_type"
            and _head_name_of_annotation_head(statement.annotation)
            in _CLASSVAR_HEADS
        ):
            return True
    return False


def _head_name_of_annotation_head(annotation: ast.AST) -> Optional[str]:
    if isinstance(annotation, ast.Subscript):
        return _head_name(annotation.value)
    return _head_name(annotation)


@register
class JournalRecordRule(Rule):
    """JRN001: journal record dataclasses must be frozen and JSON-typed.

    Flags a journal-record class (one with a ``JournalRecord`` base or a
    ``record_type`` ``ClassVar``) that is not a ``frozen=True``
    dataclass, and every field whose annotation is not built from
    ``int``/``str``/``bool``/``float``, ``Optional[...]`` and
    ``Tuple[...]`` — the only shapes that survive the canonical-JSON
    envelope losslessly.  ``ClassVar`` declarations are not fields and
    are ignored.
    """

    rule_id = "JRN001"
    name = "journal-record-shape"
    description = (
        "Journal records must be frozen dataclasses with only "
        "JSON-serializable field types (int/str/bool/float, "
        "Optional/Tuple thereof) so the write-ahead log round-trips "
        "losslessly."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_journal_record(node):
                continue
            yield from self._check_record(ctx, node)

    def _check_record(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        decorator = _dataclass_decorator(node)
        if decorator is None:
            yield self.finding(
                ctx,
                node,
                f"journal record {node.name} must be a "
                "@dataclass(frozen=True)",
            )
        elif not _is_frozen(decorator):
            yield self.finding(
                ctx,
                node,
                f"journal record {node.name} must be declared "
                "frozen=True; appended records may not mutate",
            )
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            if not isinstance(statement.target, ast.Name):
                continue
            if (
                _head_name_of_annotation_head(statement.annotation)
                in _CLASSVAR_HEADS
            ):
                continue
            if not _is_json_annotation(statement.annotation):
                source = ast.unparse(statement.annotation)
                yield self.finding(
                    ctx,
                    statement,
                    f"journal record field {node.name}."
                    f"{statement.target.id} has non-JSON-serializable "
                    f"type {source!r}; use int/str/bool/float, "
                    "Optional[...] or Tuple[...] of those",
                )
