"""Determinism rules: DET001 (unseeded RNG), DET002 (wall clock),
DET003 (unordered set iteration).

The experiment pipeline's reproducibility contract is that every run is a
pure function of its seed: placements, chaos schedules, repair orderings
and SWIM replays must be byte-identical across runs.  These rules catch
the three ways that contract silently breaks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.lint.model import FileContext, Finding, Rule, Severity, call_name, register

# ----------------------------------------------------------------------
# Import tracking shared by DET001/DET002
# ----------------------------------------------------------------------


def module_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Names that refer to ``module`` (``import random as r`` → ``{"r"}``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
    return aliases


def imported_names(tree: ast.Module, module: str) -> Dict[str, str]:
    """Local-name → original-name map for ``from <module> import ...``."""
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


@register
class UnseededRandomRule(Rule):
    """DET001: randomness must flow through an injected ``random.Random``.

    Flags calls through the ``random`` module's global instance
    (``random.choice(...)``, ``random.seed(...)``, names imported from
    ``random``) and unseeded constructions (``random.Random()`` with no
    arguments, ``numpy.random.default_rng()`` with no arguments, legacy
    ``numpy.random.*`` calls).  ``random.Random(seed)`` is fine — that is
    exactly the injected-RNG pattern the rule wants.
    """

    rule_id = "DET001"
    name = "unseeded-random"
    description = (
        "Module-level or unseeded random use makes experiment runs "
        "irreproducible; thread a seeded random.Random through instead."
    )
    severity = Severity.ERROR

    #: ``random`` attributes that are *not* global-RNG draws.
    _SAFE_ATTRS = frozenset({"Random", "SystemRandom"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        random_aliases = module_aliases(ctx.tree, "random")
        from_random = imported_names(ctx.tree, "random")
        numpy_aliases = module_aliases(ctx.tree, "numpy") | module_aliases(
            ctx.tree, "numpy.random"
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node.func)
            if chain is None:
                continue
            yield from self._check_stdlib(
                ctx, node, chain, random_aliases, from_random
            )
            yield from self._check_numpy(ctx, node, chain, numpy_aliases)

    def _check_stdlib(
        self,
        ctx: FileContext,
        node: ast.Call,
        chain: Tuple[str, ...],
        aliases: Set[str],
        from_random: Dict[str, str],
    ) -> Iterator[Finding]:
        target: Optional[str] = None
        if len(chain) == 2 and chain[0] in aliases:
            target = chain[1]
        elif len(chain) == 1 and chain[0] in from_random:
            target = from_random[chain[0]]
        if target is None:
            return
        if target in self._SAFE_ATTRS:
            if target == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed is irreproducible; "
                    "pass an explicit seed or inject a shared Random",
                )
            return
        yield self.finding(
            ctx,
            node,
            f"call to the process-global RNG (random.{target}); use an "
            "injected, seeded random.Random instead",
        )

    def _check_numpy(
        self,
        ctx: FileContext,
        node: ast.Call,
        chain: Tuple[str, ...],
        numpy_aliases: Set[str],
    ) -> Iterator[Finding]:
        if len(chain) < 3 or chain[0] not in numpy_aliases or chain[1] != "random":
            return
        attr = chain[2]
        if attr == "default_rng":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx,
                    node,
                    "numpy default_rng() without a seed is irreproducible",
                )
            return
        yield self.finding(
            ctx,
            node,
            f"legacy numpy global RNG call (np.random.{attr}); use a "
            "seeded numpy Generator instead",
        )


@register
class WallClockRule(Rule):
    """DET002: no wall-clock reads inside simulation code.

    Simulated time is ``sim.now``; a ``time.time()`` or ``datetime.now()``
    leaking into ``sim/``, ``core/`` or ``faults/`` couples results to the
    host machine.  The banned-path list comes from configuration
    (``[tool.reprolint.det002] paths``).
    """

    rule_id = "DET002"
    name = "wall-clock"
    description = (
        "Wall-clock reads inside simulation code couple experiment "
        "results to host timing; use the simulation clock (sim.now)."
    )
    severity = Severity.ERROR

    _TIME_FUNCS = frozenset(
        {"time", "time_ns", "monotonic", "monotonic_ns",
         "perf_counter", "perf_counter_ns", "process_time", "process_time_ns"}
    )
    _DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_scope(ctx.config.wall_clock_paths):
            return
        time_aliases = module_aliases(ctx.tree, "time")
        from_time = {
            local
            for local, original in imported_names(ctx.tree, "time").items()
            if original in self._TIME_FUNCS
        }
        datetime_aliases = module_aliases(ctx.tree, "datetime")
        from_datetime = {
            local
            for local, original in imported_names(ctx.tree, "datetime").items()
            if original in {"datetime", "date"}
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = call_name(node.func)
            if chain is None:
                continue
            if (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] in self._TIME_FUNCS
            ):
                yield self._flag(ctx, node, ".".join(chain))
            elif len(chain) == 1 and chain[0] in from_time:
                yield self._flag(ctx, node, chain[0])
            elif (
                len(chain) == 2
                and chain[0] in from_datetime
                and chain[1] in self._DATETIME_METHODS
            ):
                yield self._flag(ctx, node, ".".join(chain))
            elif (
                len(chain) == 3
                and chain[0] in datetime_aliases
                and chain[1] in {"datetime", "date"}
                and chain[2] in self._DATETIME_METHODS
            ):
                yield self._flag(ctx, node, ".".join(chain))

    def _flag(self, ctx: FileContext, node: ast.Call, what: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"wall-clock read ({what}()) inside simulation code; "
            "simulated time must come from the simulation clock",
        )


# ----------------------------------------------------------------------
# DET003 — set-order dependence
# ----------------------------------------------------------------------

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "MutableSet"})
#: Consumers for which a generator over a set is order-insensitive.
_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's own statements in source order, without descending
    into nested function definitions (they are their own scopes)."""
    yield root
    for child in ast.iter_child_nodes(root):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield from walk_scope(child)


class _SetTypes:
    """Per-scope syntactic tracking of set-typed names.

    A deliberately shallow approximation: a *name* is set-typed when an
    assignment (or annotation) **in the same scope** binds it to a set
    expression; a ``self.<attr>`` is set-typed when any method of the
    module assigns or annotates it as one.  Scoping matters — the same
    name may be a list in one function and a set in another.
    """

    def __init__(self, scope: ast.AST, tree: ast.Module) -> None:
        self.names: Set[str] = set()
        self.self_attrs: Set[str] = set()
        self._collect_attrs(tree)
        self._collect(scope)

    def _collect(self, scope: ast.AST) -> None:
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in list(scope.args.args) + list(scope.args.kwonlyargs):
                if arg.annotation is not None and self._is_set_annotation(
                    arg.annotation
                ):
                    self.names.add(arg.arg)
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._note_target(target, node.value)
            elif isinstance(node, ast.AnnAssign):
                if self._is_set_annotation(node.annotation):
                    self._note_target(node.target, None, force=True)
                elif node.value is not None:
                    self._note_target(node.target, node.value)

    def _collect_attrs(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            target_value = None
            if isinstance(node, ast.Assign):
                targets = node.targets
                target_value = node.value
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
                if self._is_set_annotation(node.annotation):
                    target_value = ast.Set(elts=[])  # sentinel: set-typed
                else:
                    target_value = node.value
            else:
                continue
            if target_value is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and self.is_set_expr(target_value)
                ):
                    self.self_attrs.add(target.attr)

    def _note_target(
        self, target: ast.AST, value: Optional[ast.AST], force: bool = False
    ) -> None:
        is_set = force or (value is not None and self.is_set_expr(value))
        if isinstance(target, ast.Name):
            if is_set:
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if is_set:
                self.self_attrs.add(target.attr)

    def _is_set_annotation(self, annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Name):
            return annotation.id in _SET_ANNOTATIONS
        if isinstance(annotation, ast.Subscript):
            return self._is_set_annotation(annotation.value)
        if isinstance(annotation, ast.Attribute):
            return annotation.attr in _SET_ANNOTATIONS
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            head = annotation.value.split("[", 1)[0].strip()
            return head.split(".")[-1] in _SET_ANNOTATIONS
        return False

    def is_set_expr(self, node: ast.AST) -> bool:
        """True when ``node`` is syntactically a set expression."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = call_name(node.func)
            if chain is not None and chain[-1] in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr
                in {"union", "intersection", "difference", "symmetric_difference",
                    "copy"}
                and self.is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr in self.self_attrs
        return False


@register
class UnorderedIterationRule(Rule):
    """DET003: ordered decisions must not consume raw set iteration order.

    Set iteration order depends on ``PYTHONHASHSEED`` and insertion
    history; a placement loop, a scheduling queue or a list built from a
    set inherits that nondeterminism.  Flags ``for`` loops, list/dict
    comprehensions and ``list()``/``tuple()``/``enumerate()`` conversions
    whose iterable is syntactically a set — wrap the iterable in
    ``sorted(...)`` (the autofix) or suppress where order provably cannot
    matter.  Order-insensitive reductions over generator expressions
    (``sum``, ``min``, ``any`` …) are not flagged.
    """

    rule_id = "DET003"
    name = "unordered-set-iteration"
    description = (
        "Iterating a set in an order-sensitive position makes placement "
        "and scheduling decisions hash-order dependent; use sorted(...)."
    )
    severity = Severity.ERROR
    autofixable = True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        scopes: List[ast.AST] = [ctx.tree]
        scopes.extend(ctx.functions())
        for scope in scopes:
            types = _SetTypes(scope, ctx.tree)
            yield from self._check_scope(ctx, scope, types)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, types: _SetTypes
    ) -> Iterator[Finding]:
        for node in walk_scope(scope):
            if isinstance(node, ast.For) and types.is_set_expr(node.iter):
                yield self._flag(ctx, node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                kind = (
                    "list comprehension"
                    if isinstance(node, ast.ListComp)
                    else "dict comprehension"
                )
                for gen in node.generators:
                    if types.is_set_expr(gen.iter):
                        yield self._flag(ctx, gen.iter, kind)
            elif isinstance(node, ast.Call):
                chain = call_name(node.func)
                if (
                    chain is not None
                    and len(chain) == 1
                    and chain[0] in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                ):
                    arg = node.args[0]
                    if types.is_set_expr(arg):
                        yield self._flag(ctx, arg, f"{chain[0]}() conversion")
                    elif isinstance(arg, ast.GeneratorExp) and any(
                        types.is_set_expr(gen.iter) for gen in arg.generators
                    ):
                        yield self._flag(ctx, arg, f"{chain[0]}() conversion")

    def _flag(self, ctx: FileContext, node: ast.AST, where: str) -> Finding:
        return self.finding(
            ctx,
            node,
            f"set iterated in an order-sensitive {where}; wrap the "
            "iterable in sorted(...) to pin the order",
        )
