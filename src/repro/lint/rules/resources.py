"""RES001: every claim released under ``try/finally``.

This is the static form of the link-claim leak PR 1 fixed by hand: a
transfer acquired its links, then an abort path returned without
releasing them, and the simulated network slowly wedged.  The rule runs
an intra-function control-flow approximation over the AST: a claim
(``x = r.acquire(...)`` / ``x = r.request(...)``) whose matching
``release(x)``/``cancel(x)`` is not inside a ``finally`` block is a leak
waiting for the first exception between the two lines.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.model import FileContext, Finding, Rule, Severity, register

_CLAIM_METHODS = frozenset({"acquire", "request", "claim"})
_RELEASE_METHODS = frozenset({"release", "cancel"})
#: Sinks that hand a claim to other code, transferring release duty.
_HANDOFF_CALL_ATTRS = frozenset({"append", "add", "put", "push", "setdefault"})


class _Claim:
    def __init__(self, name: str, node: ast.Call, stmt: ast.stmt) -> None:
        self.name = name
        self.node = node
        self.stmt = stmt
        self.released_guarded = False
        self.released_unguarded: Optional[ast.Call] = None
        self.handed_off = False


@register
class UnguardedClaimRule(Rule):
    """RES001: claims must be released in a ``finally`` (or handed off).

    Per function: every ``name = <obj>.acquire(...)`` (or ``request`` /
    ``claim``) must see a ``release(name)``/``cancel(name)`` inside some
    ``finally`` block, unless the claim escapes the function (returned,
    stored on an object, appended to a collection).  A release on the
    statement immediately after the claim is also accepted — there is no
    suspension point for an exception to slip through.  ``with`` blocks
    around the claim count as guarded by construction.
    """

    rule_id = "RES001"
    name = "unguarded-claim"
    description = (
        "A claim released outside try/finally leaks its resource on the "
        "first exception between acquire and release."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ctx.functions():
            yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext, func: ast.AST) -> Iterable[Finding]:
        claims = self._collect_claims(func)
        if not claims:
            return
        finally_nodes = self._finally_subtrees(func)
        with_nodes = self._with_subtrees(func)
        for claim in claims:
            if id(claim.node) in with_nodes:
                continue  # with-statement manages the claim
            self._scan_uses(func, claim, finally_nodes)
            if claim.released_guarded or claim.handed_off:
                continue
            if claim.released_unguarded is not None:
                if self._is_immediate(func, claim):
                    continue
                yield self.finding(
                    ctx,
                    claim.node,
                    f"claim {claim.name!r} is released outside try/finally; "
                    "an exception between acquire and release leaks it",
                )
            else:
                yield self.finding(
                    ctx,
                    claim.node,
                    f"claim {claim.name!r} is never released in this "
                    "function (and does not escape it)",
                )

    # ------------------------------------------------------------------
    def _collect_claims(self, func: ast.AST) -> List[_Claim]:
        claims: List[_Claim] = []
        for stmt in ast.walk(func):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            value = stmt.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _CLAIM_METHODS
            ):
                claims.append(_Claim(target.id, value, stmt))
        return claims

    def _finally_subtrees(self, func: ast.AST) -> Set[int]:
        ids: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        ids.add(id(sub))
        return ids

    def _with_subtrees(self, func: ast.AST) -> Set[int]:
        ids: Set[int] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        ids.add(id(sub))
        return ids

    def _scan_uses(
        self, func: ast.AST, claim: _Claim, finally_nodes: Set[int]
    ) -> None:
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and any(self._is_name(a, claim.name) for a in node.args)
                ):
                    if id(node) in finally_nodes:
                        claim.released_guarded = True
                    elif claim.released_unguarded is None:
                        claim.released_unguarded = node
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _HANDOFF_CALL_ATTRS
                    and any(
                        self._contains_name(a, claim.name) for a in node.args
                    )
                ):
                    claim.handed_off = True
            elif isinstance(node, ast.Return) and node.value is not None:
                if self._contains_name(node.value, claim.name):
                    claim.handed_off = True
            elif isinstance(node, ast.Assign) and node is not claim.stmt:
                stored = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stored and self._contains_name(node.value, claim.name):
                    claim.handed_off = True

    def _is_immediate(self, func: ast.AST, claim: _Claim) -> bool:
        """True when the release is the statement right after the claim."""
        release = claim.released_unguarded
        if release is None:
            return False
        for node in ast.walk(func):
            body = getattr(node, "body", None)
            if not isinstance(body, list):
                continue
            for index, stmt in enumerate(body):
                if stmt is claim.stmt:
                    nxt = body[index + 1] if index + 1 < len(body) else None
                    return nxt is not None and any(
                        sub is release for sub in ast.walk(nxt)
                    )
        return False

    @staticmethod
    def _is_name(node: ast.AST, name: str) -> bool:
        return isinstance(node, ast.Name) and node.id == name

    @staticmethod
    def _contains_name(node: ast.AST, name: str) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id == name
            for sub in ast.walk(node)
        )
