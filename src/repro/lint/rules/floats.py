"""FLT001: no exact equality between simulated-time floats.

Simulated timestamps are accumulated floats (``now + duration`` chains);
``finish_time == deadline`` silently flips with the order of additions.
Compare with a tolerance, or restructure so the comparison is on event
counts / integer ticks.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.model import FileContext, Finding, Rule, Severity, register

#: Exact identifier names treated as simulated-time values.
_TIME_NAMES = frozenset({"now", "deadline", "timestamp", "sim_time"})
#: Identifier suffixes treated as simulated-time values.
_TIME_SUFFIXES = ("_time", "_at", "_deadline")


def _time_like(node: ast.AST) -> Optional[str]:
    """The label of a time-like operand, or ``None``."""
    if isinstance(node, ast.Attribute):
        if node.attr in _TIME_NAMES or node.attr.endswith(_TIME_SUFFIXES):
            if isinstance(node.value, ast.Name):
                return f"{node.value.id}.{node.attr}"
            return node.attr
    if isinstance(node, ast.Name):
        if node.id in _TIME_NAMES or node.id.endswith(_TIME_SUFFIXES):
            return node.id
    if isinstance(node, ast.BinOp):
        return _time_like(node.left) or _time_like(node.right)
    return None


@register
class FloatTimeEqualityRule(Rule):
    """FLT001: ``==``/``!=`` between simulated-time floats."""

    rule_id = "FLT001"
    name = "float-time-equality"
    description = (
        "Exact equality between accumulated float timestamps flips with "
        "summation order; compare with a tolerance instead."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_none(left) or self._is_none(right):
                    continue
                label = _time_like(left) or _time_like(right)
                if label is None:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"exact float equality on simulated time ({label}); "
                    "accumulated timestamps need a tolerance "
                    "(e.g. abs(a - b) < eps)",
                )

    @staticmethod
    def _is_none(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and node.value is None
