"""SIM105 — the simulation kernel's event-queue monopoly.

The kernel's total event order lives behind the scheduler interface
(:mod:`repro.sim.scheduler`): every pending-event structure must go
through ``make_scheduler`` so the heap oracle / calendar-queue identity
contract covers it.  A stray ``heapq`` elsewhere under ``sim/`` is a
second event queue the identity tests never see — exactly the kind of
shadow ordering that made the calendar-queue migration risky in the
first place.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable

from repro.lint.model import FileContext, Finding, Rule, Severity, register

#: The one module allowed to import heapq under a ``sim`` path: the
#: scheduler layer itself, where the heap is the identity oracle.
SCHEDULER_BASENAME = "scheduler.py"


@register
class SimHeapOutsideSchedulerRule(Rule):
    """SIM105: ``heapq`` in simulation code outside the scheduler module."""

    rule_id = "SIM105"
    name = "sim-heapq-outside-scheduler"
    description = (
        "heapq imported in simulation code outside repro.sim.scheduler; "
        "event ordering must flow through the pluggable scheduler layer "
        "(make_scheduler) so the heap/calendar identity oracle covers it."
    )
    severity = Severity.ERROR

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_scope(("sim",)):
            return
        if os.path.basename(ctx.path.replace("\\", "/")) == SCHEDULER_BASENAME:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq":
                        yield self._flag(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq":
                    yield self._flag(ctx, node)

    def _flag(self, ctx: FileContext, node: ast.AST) -> Finding:
        return self.finding(
            ctx,
            node,
            "heapq import in simulation code outside the scheduler module; "
            "use the scheduler layer (repro.sim.scheduler.make_scheduler) "
            "so the heap/calendar identity contract covers this ordering",
        )
