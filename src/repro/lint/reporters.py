"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import LintResult
from repro.lint.model import Severity


def text_report(result: LintResult) -> str:
    """GCC-style ``path:line:col: severity RID message`` lines + summary."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.severity.label} "
        f"{f.rule_id} {f.message}"
        for f in result.findings
    ]
    counts = _severity_counts(result)
    summary = ", ".join(
        f"{counts[sev.label]} {sev.label}(s)"
        for sev in sorted(Severity, reverse=True)
        if counts[sev.label]
    )
    if not summary:
        summary = "no findings"
    lines.append(
        f"checked {result.files_checked} file(s): {summary}"
    )
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """A JSON document: findings plus per-severity counts."""
    payload = {
        "files_checked": result.files_checked,
        "counts": _severity_counts(result),
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _severity_counts(result: LintResult) -> Dict[str, int]:
    return {sev.label: result.count(sev) for sev in Severity}
