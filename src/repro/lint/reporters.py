"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF document is what the CI lint job uploads so findings render
as GitHub code-scanning annotations; it carries the full rule metadata
of every registered rule (sorted, so the report is byte-deterministic)
and one result per finding.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import PARSE_RULE_ID, LintResult
from repro.lint.model import Severity, all_rules


def text_report(result: LintResult) -> str:
    """GCC-style ``path:line:col: severity RID message`` lines + summary."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.severity.label} "
        f"{f.rule_id} {f.message}"
        for f in result.findings
    ]
    counts = _severity_counts(result)
    summary = ", ".join(
        f"{counts[sev.label]} {sev.label}(s)"
        for sev in sorted(Severity, reverse=True)
        if counts[sev.label]
    )
    if not summary:
        summary = "no findings"
    lines.append(
        f"checked {result.files_checked} file(s): {summary}"
    )
    return "\n".join(lines)


def json_report(result: LintResult) -> str:
    """A JSON document: findings plus per-severity counts."""
    payload = {
        "files_checked": result.files_checked,
        "counts": _severity_counts(result),
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _severity_counts(result: LintResult) -> Dict[str, int]:
    return {sev.label: result.count(sev) for sev in Severity}


#: Severity → SARIF result level.
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def sarif_report(result: LintResult) -> str:
    """A SARIF 2.1.0 document (GitHub code-scanning ingestible)."""
    rules = [
        {
            "id": rule_cls.rule_id,
            "name": rule_cls.name,
            "shortDescription": {"text": rule_cls.name},
            "fullDescription": {"text": rule_cls.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rule_cls.severity]
            },
        }
        for rule_cls in all_rules()
    ]
    rules.append({
        "id": PARSE_RULE_ID,
        "name": "file-does-not-parse",
        "shortDescription": {"text": "file-does-not-parse"},
        "fullDescription": {
            "text": "The file could not be parsed as Python source."
        },
        "defaultConfiguration": {"level": "error"},
    })
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        {
            "ruleId": f.rule_id,
            "ruleIndex": rule_index.get(f.rule_id, -1),
            "level": _SARIF_LEVELS[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in result.findings
    ]
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://github.com/paper-repro/ear"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
