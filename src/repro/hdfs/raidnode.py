"""The RaidNode: encoding-job construction and block recovery.

HDFS-RAID's RaidNode coordinates background encoding (Section IV-A): it
pulls stripe metadata from the NameNode, groups stripes into map tasks, and
submits a map-only MapReduce job.  The paper's second HDFS modification makes
each map task encode stripes sharing one core rack and attaches that rack's
nodes as the map's preferred nodes; the third modification flags the job so
the JobTracker never schedules those maps outside the core rack.

The RaidNode also drives recovery of lost blocks — the degraded-read path
whose cross-rack cost motivates the target-racks design of Section III-D.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.relocation import BlockMover, PlacementMonitor, RelocationPlan
from repro.core.stripe import Stripe, StripeState
from repro.faults.retry import RetryPolicy, with_retries
from repro.hdfs.encoder import StripeEncoder
from repro.hdfs.mapreduce import JobTracker, MapReduceJob, MapTask
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Simulator
from repro.sim.metrics import ResilienceMetrics
from repro.sim.netsim import Network, SourceUnavailable


@dataclass(frozen=True)
class EncodingJobSpec:
    """How an encoding job was carved into map tasks (for inspection)."""

    job_id: int
    stripes_per_task: Tuple[Tuple[int, ...], ...]
    preferred_racks: Tuple[Optional[RackId], ...]


@dataclass(frozen=True)
class RecoveryRecord:
    """Timing/traffic record of one block recovery."""

    block_id: int
    new_node: NodeId
    cross_rack_reads: int
    duration: float


@dataclass(frozen=True)
class DegradedReadRecord:
    """Timing/traffic record of one degraded read (no re-insertion)."""

    block_id: int
    reader_node: NodeId
    cross_rack_reads: int
    duration: float


class RaidNode:
    """Coordinates encoding jobs and block recovery.

    Args:
        sim: Simulation kernel.
        network: Link/disk model.
        namenode: Metadata server.
        encoder: The stripe encoder bound to the active policy's planner.
        rng: Random source (deterministic default — like every other
            simulation component, randomness must come by injection).
        retry: When given, block recovery and degraded reads survive
            transient faults: an aborted survivor download backs off and
            re-plans from an alternate replica source.
        resilience: Optional fault metrics fed by the retry loop.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        encoder: StripeEncoder,
        rng: Optional[random.Random] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceMetrics] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.encoder = encoder
        self.rng = rng if rng is not None else random.Random(0)
        self.retry = retry
        self.resilience = resilience
        self.job_specs: List[EncodingJobSpec] = []
        self.recoveries: List[RecoveryRecord] = []
        self.degraded_reads: List[DegradedReadRecord] = []

    # ------------------------------------------------------------------
    # Encoding jobs
    # ------------------------------------------------------------------
    def build_encoding_job(
        self,
        job_tracker: JobTracker,
        stripes: Sequence[Stripe],
        num_map_tasks: int,
    ) -> MapReduceJob:
        """Carve sealed stripes into an encoding MapReduce job.

        EAR stripes (which carry core racks) are grouped by core rack; each
        group may be split further to approach ``num_map_tasks`` maps, and
        every map's preferred nodes are its core rack's nodes with the
        restriction flag set.  RR stripes (no core rack) are dealt
        round-robin into unrestricted maps.
        """
        if num_map_tasks < 1:
            raise ValueError("need at least one map task")
        ear_stripes = [s for s in stripes if s.core_rack is not None]
        rr_stripes = [s for s in stripes if s.core_rack is None]

        assignments: List[Tuple[List[Stripe], Optional[RackId]]] = []
        if ear_stripes:
            assignments.extend(
                self._split_by_core_rack(ear_stripes, num_map_tasks)
            )
        if rr_stripes:
            budget = max(1, num_map_tasks - len(assignments))
            for chunk in self._deal(rr_stripes, budget):
                assignments.append((chunk, None))

        tasks: List[MapTask] = []
        for task_id, (chunk, rack) in enumerate(assignments):
            preferred: Tuple[NodeId, ...] = ()
            if rack is not None:
                preferred = tuple(self.namenode.topology.nodes_in_rack(rack))
            tasks.append(
                MapTask(
                    task_id=task_id,
                    work=self._task_body(chunk),
                    preferred_nodes=preferred,
                    restrict_to_preferred=rack is not None,
                )
            )
        job = MapReduceJob(
            job_id=job_tracker.new_job_id(),
            tasks=tasks,
            is_encoding_job=bool(ear_stripes),
        )
        self.job_specs.append(
            EncodingJobSpec(
                job_id=job.job_id,
                stripes_per_task=tuple(
                    tuple(s.stripe_id for s in chunk) for chunk, __ in assignments
                ),
                preferred_racks=tuple(rack for __, rack in assignments),
            )
        )
        return job

    def run_encoding(
        self,
        job_tracker: JobTracker,
        stripes: Sequence[Stripe],
        num_map_tasks: int,
    ) -> Generator:
        """Build and run an encoding job to completion (generator)."""
        job = self.build_encoding_job(job_tracker, stripes, num_map_tasks)
        results = yield from job_tracker.run_job(job)
        return results

    def _task_body(self, chunk: List[Stripe]):
        def work(node: NodeId) -> Generator:
            # Skip stripes already encoded so a re-executed map task (the
            # JobTracker retries crashed attempts) is idempotent: a task
            # that died halfway through its chunk only redoes the rest.
            todo = [s for s in chunk if s.state != StripeState.ENCODED]
            result = yield from self.encoder.encode_stripes(todo, node)
            return result

        return work

    def _split_by_core_rack(
        self, stripes: Sequence[Stripe], num_map_tasks: int
    ) -> List[Tuple[List[Stripe], RackId]]:
        by_rack: Dict[RackId, List[Stripe]] = {}
        for stripe in stripes:
            by_rack.setdefault(stripe.core_rack, []).append(stripe)
        # Distribute the map budget over racks proportionally to their
        # load: one map per rack minimum, and the *total* never exceeds
        # max(num_map_tasks, number of core racks).  Largest-remainder
        # apportionment keeps the sum exact (per-rack rounding used to
        # over-allocate far past the requested task count).
        racks = sorted(by_rack.items())
        total = len(stripes)
        budget = max(num_map_tasks, len(racks))
        shares = {rack: 1 for rack, __ in racks}
        spare = budget - len(racks)
        quotas = [
            (len(group) * (budget / total) - 1, rack) for rack, group in racks
        ]
        # Whole extra maps first, by integer part of each rack's quota...
        for quota, rack in quotas:
            extra = min(int(quota), len(by_rack[rack]) - shares[rack], spare)
            if extra > 0:
                shares[rack] += extra
                spare -= extra
        # ...then the remainders, largest first (rack id breaks ties).
        remainders = sorted(
            ((quota - int(quota), rack) for quota, rack in quotas),
            key=lambda item: (-item[0], item[1]),
        )
        for __, rack in remainders:
            if spare <= 0:
                break
            if shares[rack] < len(by_rack[rack]):
                shares[rack] += 1
                spare -= 1
        assignments: List[Tuple[List[Stripe], RackId]] = []
        for rack, group in racks:
            for chunk in self._deal(group, shares[rack]):
                assignments.append((chunk, rack))
        return assignments

    @staticmethod
    def _deal(items: Sequence, parts: int) -> List[List]:
        parts = max(1, min(parts, len(items)))
        chunks: List[List] = [[] for __ in range(parts)]
        for index, item in enumerate(items):
            chunks[index % parts].append(item)
        return [c for c in chunks if c]

    # ------------------------------------------------------------------
    # Relocation (the PlacementMonitor / BlockMover control loop)
    # ------------------------------------------------------------------
    def relocate_if_violating(
        self, stripe: Stripe, mover: BlockMover
    ) -> Generator:
        """Check one encoded stripe and repair it with real traffic.

        This is the control loop Facebook's HDFS runs periodically
        (Section II-B): the PlacementMonitor detects a rack fault-tolerance
        violation and the BlockMover relocates blocks — each move is a full
        block transfer across the simulated network, i.e. the cross-rack
        cost Experiment B.2 deliberately excluded.

        Returns:
            The executed :class:`~repro.core.relocation.RelocationPlan`
            (empty when the stripe already complies), as the generator's
            return value.
        """
        store = self.namenode.block_store
        if not mover.monitor.is_violating(store, stripe):
            return RelocationPlan(stripe.stripe_id, (), 0)
        plan = mover.plan(store, stripe)
        for move in plan.moves:
            size = store.block(move.block_id).size
            yield from self.network.transfer(
                move.src_node, move.dst_node, size
            )
            store.move_replica(move.block_id, move.src_node, move.dst_node)
        return plan

    # ------------------------------------------------------------------
    # Recovery (degraded reads)
    # ------------------------------------------------------------------
    def recover_block(
        self,
        stripe: Stripe,
        lost_block_id: int,
        new_node: NodeId,
    ) -> Generator:
        """Rebuild one lost block of an encoded stripe onto ``new_node``.

        The recovering node downloads ``k`` surviving blocks of the stripe
        (one per source node) and re-derives the lost block — Section
        III-D's cost model: one block may be local to the rack, the other
        ``k - 1`` arrive across racks when the stripe spans many racks.

        Returns:
            A :class:`RecoveryRecord` (generator return value).
        """
        start = self.sim.now
        cross = yield from self._download_survivors_retrying(
            stripe, lost_block_id, new_node
        )
        store = self.namenode.block_store
        if self.network.disk is not None:
            yield from self.network.disk_write(
                new_node, store.block(lost_block_id).size
            )
        store.add_replica(lost_block_id, new_node)
        record = RecoveryRecord(
            block_id=lost_block_id,
            new_node=new_node,
            cross_rack_reads=cross,
            duration=self.sim.now - start,
        )
        self.recoveries.append(record)
        return record

    def degraded_read(
        self,
        stripe: Stripe,
        lost_block_id: int,
        reader_node: NodeId,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """Serve a read of a lost block by on-the-fly reconstruction.

        HDFS-RAID answers reads of lost/corrupted blocks without waiting
        for recovery: the reader fetches ``k`` surviving blocks and decodes
        the requested one in memory.  Unlike :meth:`recover_block` the
        rebuilt block is *not* re-inserted.

        Args:
            retry: Per-call override of the node-level retry policy; a
                client with its own latency budget (the degraded-read
                path's bounded inline wait) passes a tighter policy here
                so a blocked read escalates within seconds instead of
                riding the repair pipeline's backoff ceiling.

        Returns:
            A :class:`DegradedReadRecord` (generator return value).
        """
        start = self.sim.now
        cross = yield from self._download_survivors_retrying(
            stripe, lost_block_id, reader_node, retry=retry
        )
        record = DegradedReadRecord(
            block_id=lost_block_id,
            reader_node=reader_node,
            cross_rack_reads=cross,
            duration=self.sim.now - start,
        )
        self.degraded_reads.append(record)
        return record

    def _download_survivors_retrying(
        self,
        stripe: Stripe,
        lost_block_id: int,
        target_node: NodeId,
        retry: Optional[RetryPolicy] = None,
    ) -> Generator:
        """``_download_k_survivors`` under the retry policy, when one is set.

        Every attempt re-runs the survivor selection, so an abort caused by
        a source dying mid-download re-plans from an alternate replica.
        ``retry`` overrides the node-level policy for this call.
        """
        policy = retry if retry is not None else self.retry
        if policy is None:
            cross = yield from self._download_k_survivors(
                stripe, lost_block_id, target_node
            )
            return cross
        cross = yield from with_retries(
            self.sim,
            lambda __: self._download_k_survivors(
                stripe, lost_block_id, target_node
            ),
            policy,
            self.rng,
            metrics=self.resilience,
            label=f"reconstruct block {lost_block_id}",
        )
        return cross

    def _download_k_survivors(
        self, stripe: Stripe, lost_block_id: int, target_node: NodeId
    ) -> Generator:
        """Fetch k surviving blocks of ``stripe`` to ``target_node``.

        Returns the number of cross-rack reads (generator return value).

        Raises:
            RuntimeError: If fewer than ``k`` uncorrupted blocks survive
                anywhere in the metadata (true data loss).
            SourceUnavailable: If enough blocks survive but fewer than
                ``k`` are on endpoints that are currently up (transient —
                retry loops outwait the outage).
        """
        store = self.namenode.block_store
        k = stripe.k
        survivors: List[Tuple[int, NodeId]] = []
        unavailable = 0
        for block_id in stripe.all_block_ids():
            if block_id == lost_block_id:
                continue
            nodes = store.healthy_replica_nodes(block_id)
            if not nodes:
                continue
            up = [n for n in nodes if self.network.is_up(n)]
            if not up:
                unavailable += 1
                continue
            survivors.append((block_id, up[0]))
        if len(survivors) < k:
            if len(survivors) + unavailable >= k:
                raise SourceUnavailable(target_node, target_node, target_node)
            raise RuntimeError(
                f"stripe {stripe.stripe_id} has only "
                f"{len(survivors) + unavailable} surviving blocks; need {k}"
            )
        # Prefer sources close to the target node.
        target_rack = self.namenode.topology.rack_of(target_node)
        survivors.sort(
            key=lambda item: 0
            if self.namenode.topology.rack_of(item[1]) == target_rack
            else 1
        )
        chosen = survivors[:k]

        transfers = []
        cross = 0
        for block_id, source in chosen:
            size = store.block(block_id).size
            if self.network.is_cross_rack(source, target_node):
                cross += 1
            transfers.append(
                self.sim.process(
                    self.network.transfer(
                        source, target_node, size, write_disk=False
                    )
                )
            )
        yield self.sim.all_of(transfers)
        return cross
