"""HDFS-style control path: NameNode, clients, RaidNode, MapReduce.

Models Facebook's HDFS + HDFS-RAID stack (Section IV) at the level the
paper's experiments need:

* :mod:`repro.hdfs.namenode` — block metadata, the pluggable placement
  policy, and the pre-encoding store.
* :mod:`repro.hdfs.client` — the replication write pipeline and reads.
* :mod:`repro.hdfs.encoder` — the per-stripe encoding operation (download
  k blocks, upload n-k parity, trim replicas) as a simulation process.
* :mod:`repro.hdfs.mapreduce` — JobTracker/TaskTracker with map slots and
  locality scheduling, including the paper's core-rack pinning of encoding
  jobs.
* :mod:`repro.hdfs.raidnode` — groups sealed stripes into encoding jobs
  (with preferred nodes per map task) and drives recovery planning.
"""

from repro.hdfs.client import CFSClient, WriteResult
from repro.hdfs.encoder import StripeEncoder
from repro.hdfs.failures import FailureInjector, FailureReport
from repro.hdfs.files import FileMetadata, FileNamespace, read_file, write_file
from repro.hdfs.mapreduce import JobTracker, MapReduceJob, MapTask, TaskTracker
from repro.hdfs.namenode import NameNode
from repro.hdfs.raidnode import EncodingJobSpec, RaidNode

__all__ = [
    "CFSClient",
    "EncodingJobSpec",
    "FailureInjector",
    "FailureReport",
    "FileMetadata",
    "FileNamespace",
    "JobTracker",
    "MapReduceJob",
    "MapTask",
    "NameNode",
    "RaidNode",
    "StripeEncoder",
    "TaskTracker",
    "WriteResult",
    "read_file",
    "write_file",
]
