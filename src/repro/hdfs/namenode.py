"""The NameNode: metadata, placement, and the pre-encoding store.

The paper's first HDFS modification (Section IV-B) adds the EAR placement
algorithm and a *pre-encoding store* to the NameNode.  This model owns:

* the :class:`~repro.cluster.block.BlockStore` (block -> replica locations);
* the pluggable :class:`~repro.core.policy.PlacementPolicy`;
* the :class:`~repro.core.stripe.PreEncodingStore` mapping stripes to block
  lists (filled by EAR at placement time, by RR in metadata order).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cluster.block import Block, BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId, DEFAULT_BLOCK_SIZE
from repro.core.ear import EncodingAwareReplication
from repro.core.parity import EARPlanner, EncodingPlanner, RRPlanner
from repro.core.policy import PlacementDecision, PlacementPolicy
from repro.core.random_replication import RandomReplication
from repro.core.stripe import PreEncodingStore, Stripe
from repro.erasure.codec import CodeParams


class NameNode:
    """Metadata server binding a placement policy to the block store.

    Args:
        topology: Cluster layout.
        policy: Placement policy (RR, preliminary EAR, or EAR).  The policy
            must expose a ``store`` attribute (its pre-encoding store) to
            participate in encoding; both shipped policies do when
            configured with one.
        block_size: Default size of allocated blocks (64 MB).

    Example:
        >>> topo = ClusterTopology.large_scale()
        >>> code = CodeParams(14, 10)
        >>> ear = EncodingAwareReplication(topo, code, rng=random.Random(1))
        >>> namenode = NameNode(topo, ear)
        >>> block, decision = namenode.allocate_block()
        >>> namenode.block_locations(block.block_id) == decision.node_ids
        True
    """

    def __init__(
        self,
        topology: ClusterTopology,
        policy: PlacementPolicy,
        block_size: int = DEFAULT_BLOCK_SIZE,
        journal=None,
    ) -> None:
        self.topology = topology
        self.policy = policy
        self.block_size = block_size
        self.block_store = BlockStore(topology)
        self.journal = journal
        if journal is not None:
            journal.attach(
                block_store=self.block_store,
                stripe_store=self.pre_encoding_store,
            )

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def allocate_block(
        self,
        size: Optional[int] = None,
        writer_node: Optional[NodeId] = None,
    ) -> Tuple[Block, PlacementDecision]:
        """Create a block, run the placement policy, record the replicas."""
        block = self.block_store.create_block(
            self.block_size if size is None else size
        )
        decision = self.policy.place_block(block.block_id, writer_node=writer_node)
        self.block_store.add_replicas(block.block_id, decision.node_ids)
        if decision.stripe_id is not None:
            self.block_store.assign_stripe(block.block_id, decision.stripe_id)
        return block, decision

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def block_locations(self, block_id: BlockId) -> Tuple[NodeId, ...]:
        """Replica locations of a block (what clients ask the NameNode)."""
        return self.block_store.replica_nodes(block_id)

    @property
    def pre_encoding_store(self) -> Optional[PreEncodingStore]:
        """The stripe registry, when the policy maintains one."""
        return getattr(self.policy, "store", None)

    def sealed_stripes(self) -> List[Stripe]:
        """Stripes eligible for encoding, in sealing order."""
        store = self.pre_encoding_store
        if store is None:
            return []
        return store.sealed_stripes()

    # ------------------------------------------------------------------
    # Encoding support
    # ------------------------------------------------------------------
    def make_planner(
        self,
        code: CodeParams,
        rng: Optional[random.Random] = None,
        reserve_core_for_parity: Optional[bool] = None,
    ) -> EncodingPlanner:
        """Build the encoding planner matching the configured policy.

        ``reserve_core_for_parity`` defaults to whatever the EAR policy was
        configured with, keeping placement and encoding consistent.
        """
        if isinstance(self.policy, EncodingAwareReplication):
            if reserve_core_for_parity is None:
                reserve_core_for_parity = self.policy.core_reserve > 0
            return EARPlanner(
                self.topology,
                self.block_store,
                code,
                c=self.policy.c,
                rng=rng,
                reserve_core_for_parity=reserve_core_for_parity,
            )
        return RRPlanner(self.topology, self.block_store, code, rng=rng)

    def record_encoding(self, stripe: Stripe, plan) -> List[Block]:
        """Apply an :class:`~repro.core.parity.EncodingPlan` to the metadata.

        Creates the parity blocks at their planned nodes, deletes the
        redundant data replicas, and marks the stripe encoded.

        Concurrent failures may have removed replicas the plan wanted to
        retain (a node died while the encode was in flight).  In that case
        the block keeps an arbitrary surviving replica instead — the
        resulting layout may violate rack fault tolerance, which the
        PlacementMonitor then flags, exactly as in real HDFS.

        When a journal is attached the whole commit is bracketed as an
        atomic intent/commit pair: ``begin_stripe_commit`` (carrying the
        full plan) is durable before any mutation, the per-step effects
        journal as ``parity_add`` / ``delete_replica`` records, and
        ``end_stripe_commit`` seals the bracket.  A crash anywhere
        inside is rolled forward by recovery from the intent record.

        Returns:
            The created parity blocks, in stripe order.
        """
        journal = self.block_store.journal
        if journal is not None:
            journal.begin_stripe_commit(
                stripe.stripe_id,
                tuple(plan.parity_nodes),
                self.block_size,
                tuple(plan.retained.items()),
            )
        parity_blocks: List[Block] = []
        for node_id in plan.parity_nodes:
            parity_blocks.append(self.block_store.add_parity_block(
                self.block_size, stripe.stripe_id, node_id
            ))
        for block_id, node_id in plan.retained.items():
            survivors = self.block_store.replica_nodes(block_id)
            if not survivors:
                # Every copy vanished mid-encode; recovery (from the parity
                # just written) is the RaidNode's job, not retention's.
                continue
            keeper = node_id if node_id in survivors else survivors[0]
            self.block_store.retain_only(block_id, keeper)
        if journal is not None:
            journal.end_stripe_commit(
                stripe.stripe_id, tuple(b.block_id for b in parity_blocks)
            )
        stripe.mark_encoded([b.block_id for b in parity_blocks])
        return parity_blocks
