"""CFS client operations: the replication write pipeline and block reads.

A write replicates a block along a chain (client -> first replica -> second
replica -> ...), the way HDFS daisy-chains its write pipeline.  Hops are
simulated as sequential whole-block transfers — matching the testbed's
observed ~1.4 s response time for a 64 MB block over two 1 Gb/s hops — and
each receiving DataNode flushes the block to its disk asynchronously when
disks are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.block import Block, BlockId
from repro.cluster.topology import NodeId
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Simulator
from repro.sim.metrics import ResponseTimeStats
from repro.sim.netsim import Network


@dataclass(frozen=True)
class WriteResult:
    """Outcome of one block write.

    Attributes:
        block: The written block.
        node_ids: Replica chain, primary first.
        start_time: Simulation time the write began.
        response_time: Seconds until the last pipeline hop completed.
    """

    block: Block
    node_ids: Tuple[NodeId, ...]
    start_time: float
    response_time: float


class CFSClient:
    """Issues writes and reads against the simulated CFS.

    Args:
        sim: Simulation kernel.
        network: Link/disk model.
        namenode: Metadata server (holds the placement policy).
        stats: Optional response-time collector for write latencies.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        stats: Optional[ResponseTimeStats] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.stats = stats

    # ------------------------------------------------------------------
    def write_block(
        self,
        size: Optional[int] = None,
        writer_node: Optional[NodeId] = None,
    ) -> Generator:
        """Write one block through the replication pipeline.

        Args:
            size: Block size in bytes (NameNode default when omitted).
            writer_node: Originating endpoint.  May be a DataNode id or an
                external endpoint id from ``network.add_external``; when
                omitted the placement policy picks the primary rack freely
                and the chain starts at the primary replica (a local write).

        Yields:
            Simulation events.

        Returns:
            A :class:`WriteResult` (via the generator's return value).
        """
        start = self.sim.now
        placement_hint = writer_node if self._is_datanode(writer_node) else None
        block, decision = self.namenode.allocate_block(
            size=size, writer_node=placement_hint
        )
        chain: List[NodeId] = list(decision.node_ids)
        previous = writer_node if writer_node is not None else chain[0]
        for node in chain:
            if node != previous:
                yield from self.network.transfer(
                    previous, node, block.size, read_disk=False, write_disk=False
                )
            if self.network.disk is not None:
                # The DataNode flushes asynchronously; the pipeline moves on.
                self.sim.process(self.network.disk_write(node, block.size))
            previous = node
        response = self.sim.now - start
        if self.stats is not None:
            self.stats.record(start, response)
        return WriteResult(block, tuple(chain), start, response)

    def read_block(
        self, block_id: BlockId, reader_node: NodeId
    ) -> Generator:
        """Read one block, preferring the closest replica.

        Replica preference mirrors HDFS: local copy, then same-rack copy,
        then any copy.

        Returns:
            The node the block was served from (generator return value).
        """
        block = self.namenode.block_store.block(block_id)
        replicas = self.namenode.block_locations(block_id)
        if not replicas:
            raise KeyError(f"block {block_id} has no replicas")
        source = self._closest_replica(replicas, reader_node)
        if source == reader_node:
            if self.network.disk is not None:
                yield from self.network.disk_read(source, block.size)
        else:
            yield from self.network.transfer(
                source,
                reader_node,
                block.size,
                write_disk=False,
            )
        return source

    # ------------------------------------------------------------------
    def _closest_replica(
        self, replicas: Tuple[NodeId, ...], reader_node: NodeId
    ) -> NodeId:
        if reader_node in replicas:
            return reader_node
        reader_rack = self.network.rack_of(reader_node)
        if reader_rack is not None:
            same_rack = [
                n for n in replicas if self.network.rack_of(n) == reader_rack
            ]
            if same_rack:
                return same_rack[0]
        return replicas[0]

    def _is_datanode(self, node_id: Optional[NodeId]) -> bool:
        return node_id is not None and node_id >= 0
