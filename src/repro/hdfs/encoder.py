"""The per-stripe encoding operation as a simulation process.

Section II-A's three steps, timed against the network/disk model:

1. the encoder downloads one replica of each of the ``k`` data blocks (in
   parallel; a copy on the encoder itself is a local disk read);
2. it computes the ``n - k`` parity blocks (optional CPU cost) and uploads
   them to their planned nodes (in parallel);
3. it keeps one replica of each data block and deletes the rest (metadata
   only — deletion moves no data).

The placement decisions come from an
:class:`~repro.core.parity.EncodingPlanner`, so the same process serves EAR
(core-rack encoder, matched retention) and RR (random encoder, best-effort
retention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.cluster.topology import NodeId
from repro.core.parity import EncodingPlan, EncodingPlanner, download_plan
from repro.core.stripe import Stripe
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Simulator
from repro.sim.metrics import ThroughputMeter, TimeSeries
from repro.sim.netsim import Network


@dataclass(frozen=True)
class EncodedStripe:
    """Timing record of one completed stripe encoding."""

    stripe_id: int
    encoder_node: NodeId
    start_time: float
    finish_time: float
    cross_rack_downloads: int
    cross_rack_uploads: int

    @property
    def duration(self) -> float:
        """Wall-clock seconds the stripe's encoding took."""
        return self.finish_time - self.start_time


class StripeEncoder:
    """Runs the encoding operation for stripes.

    Args:
        sim: Simulation kernel.
        network: Link/disk model.
        namenode: Metadata server whose block store is updated in step 3.
        planner: Retention/parity planner matching the placement policy.
        compute_bandwidth: Encoder CPU throughput in bytes/second for the
            Reed-Solomon computation; ``None`` makes computation free (the
            paper treats the network as the only bottleneck).
        throughput: Optional meter fed with each stripe's data volume.
        timeline: Optional series receiving stripe completion times
            (Figure 12's "encoded stripes vs time").
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        planner: EncodingPlanner,
        compute_bandwidth: Optional[float] = None,
        throughput: Optional[ThroughputMeter] = None,
        timeline: Optional[TimeSeries] = None,
    ) -> None:
        if compute_bandwidth is not None and compute_bandwidth <= 0:
            raise ValueError("compute bandwidth must be positive")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.planner = planner
        self.compute_bandwidth = compute_bandwidth
        self.throughput = throughput
        self.timeline = timeline
        self.records: List[EncodedStripe] = []

    # ------------------------------------------------------------------
    def encode_stripe(
        self, stripe: Stripe, encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode one sealed stripe (generator; run inside a process).

        Args:
            stripe: A sealed stripe from the pre-encoding store.
            encoder_node: Node running the work; the planner chooses when
                omitted (random core-rack node for EAR, random node for RR).

        Returns:
            The :class:`EncodedStripe` record (generator return value).
        """
        start = self.sim.now
        if encoder_node is None:
            encoder_node = self.planner.pick_encoder_node(stripe)
        plan = self.planner.plan(stripe, encoder_node=encoder_node)
        store = self.namenode.block_store

        # Step 1: parallel downloads of the k data blocks.
        sources = download_plan(
            self.namenode.topology, store, stripe, encoder_node
        )
        downloads = []
        data_bytes = 0
        for block_id, source in sources.items():
            size = store.block(block_id).size
            data_bytes += size
            downloads.append(
                self.sim.process(
                    self.network.transfer(
                        source, encoder_node, size, write_disk=False
                    )
                )
            )
        if downloads:
            yield self.sim.all_of(downloads)

        # Step 2: compute parity, then parallel uploads.
        if self.compute_bandwidth is not None:
            yield self.sim.timeout(data_bytes / self.compute_bandwidth)
        uploads = []
        for node_id in plan.parity_nodes:
            uploads.append(
                self.sim.process(
                    self.network.transfer(
                        encoder_node,
                        node_id,
                        self.namenode.block_size,
                        read_disk=False,
                    )
                )
            )
        if uploads:
            yield self.sim.all_of(uploads)

        # Step 3: retain one replica per block, delete the rest (metadata).
        self.namenode.record_encoding(stripe, plan)

        record = EncodedStripe(
            stripe_id=stripe.stripe_id,
            encoder_node=encoder_node,
            start_time=start,
            finish_time=self.sim.now,
            cross_rack_downloads=plan.cross_rack_downloads,
            cross_rack_uploads=plan.cross_rack_uploads,
        )
        self.records.append(record)
        if self.throughput is not None:
            self.throughput.record(self.sim.now, data_bytes)
        if self.timeline is not None:
            self.timeline.record(self.sim.now, record.stripe_id)
        return record

    def encode_stripes(
        self, stripes: List[Stripe], encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode several stripes back to back (one map task's work)."""
        records = []
        for stripe in stripes:
            record = yield from self.encode_stripe(stripe, encoder_node)
            records.append(record)
        return records
