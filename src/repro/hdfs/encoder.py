"""The per-stripe encoding operation as a simulation process.

Section II-A's three steps, timed against the network/disk model:

1. the encoder downloads one replica of each of the ``k`` data blocks (in
   parallel; a copy on the encoder itself is a local disk read);
2. it computes the ``n - k`` parity blocks (optional CPU cost) and uploads
   them to their planned nodes (in parallel);
3. it keeps one replica of each data block and deletes the rest (metadata
   only — deletion moves no data).

The placement decisions come from an
:class:`~repro.core.parity.EncodingPlanner`, so the same process serves EAR
(core-rack encoder, matched retention) and RR (random encoder, best-effort
retention).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Tuple

from repro.cluster.topology import NodeId
from repro.core.parity import (
    EncodingPlan,
    EncodingPlanner,
    SourceFilter,
    download_plan,
)
from repro.core.stripe import Stripe
from repro.erasure.stream import StreamingDataPlane
from repro.faults.retry import RetryPolicy, with_retries
from repro.hdfs.namenode import NameNode
from repro.sim.engine import Simulator
from repro.sim.metrics import ResilienceMetrics, ThroughputMeter, TimeSeries
from repro.sim.netsim import Network, SourceUnavailable


@dataclass(frozen=True)
class EncodedStripe:
    """Timing record of one completed stripe encoding."""

    stripe_id: int
    encoder_node: NodeId
    start_time: float
    finish_time: float
    cross_rack_downloads: int
    cross_rack_uploads: int

    @property
    def duration(self) -> float:
        """Wall-clock seconds the stripe's encoding took."""
        return self.finish_time - self.start_time


class StripeEncoder:
    """Runs the encoding operation for stripes.

    Args:
        sim: Simulation kernel.
        network: Link/disk model.
        namenode: Metadata server whose block store is updated in step 3.
        planner: Retention/parity planner matching the placement policy.
        compute_bandwidth: Encoder CPU throughput in bytes/second for the
            Reed-Solomon computation; ``None`` makes computation free (the
            paper treats the network as the only bottleneck).
        throughput: Optional meter fed with each stripe's data volume.
        timeline: Optional series receiving stripe completion times
            (Figure 12's "encoded stripes vs time").
        retry: When given, every stripe encode survives transient faults:
            aborted transfers are retried under this policy, each attempt
            re-plans its sources against current liveness, and when an EAR
            stripe's core rack is entirely down the encode degrades to a
            cross-rack encoder node instead of failing the map task.
        resilience: Optional fault metrics fed by the retry loop.
        rng: Random source for retry jitter and degraded encoder choice
            (deterministic default).
        data_plane: Optional :class:`~repro.erasure.stream.StreamingDataPlane`.
            When given, each encode streams the stripe's real block bytes
            through the chunked GF pipeline and commits the resulting parity
            payloads against the block ids ``record_encoding`` mints — the
            simulation then carries verifiable bytes, not just timing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        planner: EncodingPlanner,
        compute_bandwidth: Optional[float] = None,
        throughput: Optional[ThroughputMeter] = None,
        timeline: Optional[TimeSeries] = None,
        retry: Optional[RetryPolicy] = None,
        resilience: Optional[ResilienceMetrics] = None,
        rng: Optional[random.Random] = None,
        data_plane: Optional[StreamingDataPlane] = None,
    ) -> None:
        if compute_bandwidth is not None and compute_bandwidth <= 0:
            raise ValueError("compute bandwidth must be positive")
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.planner = planner
        self.compute_bandwidth = compute_bandwidth
        self.throughput = throughput
        self.timeline = timeline
        self.retry = retry
        self.resilience = resilience
        self.rng = rng if rng is not None else random.Random(0)
        self.data_plane = data_plane
        self.records: List[EncodedStripe] = []

    # ------------------------------------------------------------------
    def encode_stripe(
        self, stripe: Stripe, encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode one sealed stripe (generator; run inside a process).

        Args:
            stripe: A sealed stripe from the pre-encoding store.
            encoder_node: Node running the work; the planner chooses when
                omitted (random core-rack node for EAR, random node for RR).

        Returns:
            The :class:`EncodedStripe` record (generator return value).

        Raises:
            RetryExhausted: In retry mode, when the configured attempts
                all died to transfer aborts or unavailable sources.
        """
        if self.retry is None:
            record = yield from self._encode_once(stripe, encoder_node)
            return record
        record = yield from with_retries(
            self.sim,
            lambda __: self._encode_attempt(stripe, encoder_node),
            self.retry,
            self.rng,
            metrics=self.resilience,
            label=f"encode stripe {stripe.stripe_id}",
        )
        return record

    def _encode_attempt(
        self, stripe: Stripe, pinned_node: Optional[NodeId]
    ) -> Generator:
        """One fault-aware encode attempt: re-plan against current liveness."""
        node = pinned_node
        if node is not None and not self.network.is_up(node):
            node = None  # the map's node died; pick a live one instead
        degraded = False
        if node is None:
            node, degraded = self._choose_live_encoder(stripe)
        elif stripe.core_rack is not None:
            core_nodes = self.namenode.topology.nodes_in_rack(stripe.core_rack)
            degraded = not any(self.network.is_up(n) for n in core_nodes)

        def source_ok(block_id: int, source: NodeId) -> bool:
            return self.network.is_up(source) and not (
                self.namenode.block_store.is_corrupted(block_id, source)
            )

        record = yield from self._encode_once(
            stripe,
            node,
            source_ok=source_ok,
            allow_foreign_encoder=True if degraded else None,
        )
        return record

    def _choose_live_encoder(self, stripe: Stripe) -> Tuple[NodeId, bool]:
        """A live encoder node, degrading to any rack when none is eligible.

        Returns ``(node, degraded)`` where ``degraded`` means the node sits
        outside the stripe's eligible set (e.g. the EAR core rack is down)
        and planning must allow a foreign encoder.
        """
        eligible = [
            n
            for n in self.planner.eligible_encoder_nodes(stripe)
            if self.network.is_up(n)
        ]
        if eligible:
            return self.rng.choice(eligible), False
        anywhere = [
            n for n in self.namenode.topology.node_ids() if self.network.is_up(n)
        ]
        if not anywhere:
            first = next(iter(self.namenode.topology.node_ids()))
            raise SourceUnavailable(first, first, first)
        return self.rng.choice(anywhere), True

    def _encode_once(
        self,
        stripe: Stripe,
        encoder_node: Optional[NodeId] = None,
        source_ok: Optional[SourceFilter] = None,
        allow_foreign_encoder: Optional[bool] = None,
    ) -> Generator:
        start = self.sim.now
        if encoder_node is None:
            encoder_node = self.planner.pick_encoder_node(stripe)
        plan = self.planner.plan(
            stripe,
            encoder_node=encoder_node,
            allow_foreign_encoder=allow_foreign_encoder,
        )
        store = self.namenode.block_store

        # Step 1: parallel downloads of the k data blocks.
        sources = download_plan(
            self.namenode.topology, store, stripe, encoder_node,
            source_ok=source_ok,
        )
        downloads = []
        data_bytes = 0
        for block_id, source in sources.items():
            size = store.block(block_id).size
            data_bytes += size
            downloads.append(
                self.sim.process(
                    self.network.transfer(
                        source, encoder_node, size, write_disk=False
                    )
                )
            )
        if downloads:
            yield self.sim.all_of(downloads)

        # Step 2: compute parity, then parallel uploads.  With a data plane
        # attached the parity bytes are real: the stripe's block payloads
        # are streamed chunk-at-a-time through the GF pipeline.  Payload
        # synthesis is deterministic per block, so a retried attempt
        # recomputes identical bytes (idempotent).
        parity_payloads = None
        if self.data_plane is not None:
            parity_payloads = self.data_plane.encode_stripe(stripe, store)
        if self.compute_bandwidth is not None:
            yield self.sim.timeout(data_bytes / self.compute_bandwidth)
        uploads = []
        for node_id in plan.parity_nodes:
            uploads.append(
                self.sim.process(
                    self.network.transfer(
                        encoder_node,
                        node_id,
                        self.namenode.block_size,
                        read_disk=False,
                    )
                )
            )
        if uploads:
            yield self.sim.all_of(uploads)

        # Step 3: retain one replica per block, delete the rest (metadata).
        parity_blocks = self.namenode.record_encoding(stripe, plan)
        if self.data_plane is not None and parity_payloads is not None:
            self.data_plane.commit_parity(parity_blocks, parity_payloads)

        record = EncodedStripe(
            stripe_id=stripe.stripe_id,
            encoder_node=encoder_node,
            start_time=start,
            finish_time=self.sim.now,
            cross_rack_downloads=plan.cross_rack_downloads,
            cross_rack_uploads=plan.cross_rack_uploads,
        )
        self.records.append(record)
        if self.throughput is not None:
            self.throughput.record(self.sim.now, data_bytes)
        if self.timeline is not None:
            self.timeline.record(self.sim.now, record.stripe_id)
        return record

    def encode_stripes(
        self, stripes: List[Stripe], encoder_node: Optional[NodeId] = None
    ) -> Generator:
        """Encode several stripes back to back (one map task's work)."""
        records = []
        for stripe in stripes:
            record = yield from self.encode_stripe(stripe, encoder_node)
            records.append(record)
        return records
