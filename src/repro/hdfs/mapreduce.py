"""MapReduce control path: JobTracker, TaskTrackers, slots, locality.

Models the scheduling behaviour the paper relies on (Section IV):

* every DataNode runs a TaskTracker with a fixed number of map slots;
* the JobTracker dispatches queued tasks to free slots, honouring each
  task's *preferred nodes* (MapReduce locality);
* jobs flagged as *encoding jobs* are pinned: their tasks run **only** on
  preferred nodes (the paper's third HDFS modification, which stops the
  JobTracker from pushing an encode map outside the core rack).

Task bodies are simulation generators parameterised by the node they were
scheduled on, so the same machinery runs encoding work, SWIM map tasks, and
shuffle/reduce work.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology, NodeId
from repro.sim.engine import Event, Simulator


class TaskFailed(RuntimeError):
    """A map task crashed on every allowed attempt; carries the last error."""

    def __init__(self, task_id: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"task {task_id} failed after {attempts} attempt(s): {cause!r}"
        )
        self.task_id = task_id
        self.attempts = attempts
        self.cause = cause

#: A task body: given the node the task landed on, yield simulation events.
TaskBody = Callable[[NodeId], Generator]


@dataclass
class MapTask:
    """One schedulable unit of work.

    Attributes:
        task_id: Identifier unique within the job.
        work: The task body, invoked with the scheduled node.
        preferred_nodes: Locality hints, most preferred first.
        restrict_to_preferred: When True the task may *only* run on a
            preferred node (set for encoding jobs).
    """

    task_id: int
    work: TaskBody
    preferred_nodes: Tuple[NodeId, ...] = ()
    restrict_to_preferred: bool = False

    def __post_init__(self) -> None:
        if self.restrict_to_preferred and not self.preferred_nodes:
            raise ValueError("a restricted task needs preferred nodes")


@dataclass
class MapReduceJob:
    """A bag of tasks submitted together.

    Attributes:
        job_id: Unique identifier.
        tasks: The job's tasks.
        is_encoding_job: The paper's Boolean flag: encoding jobs schedule
            tasks only onto their preferred (core-rack) nodes.
    """

    job_id: int
    tasks: List[MapTask]
    is_encoding_job: bool = False

    def __post_init__(self) -> None:
        if self.is_encoding_job:
            for task in self.tasks:
                task.restrict_to_preferred = True


class TaskTracker:
    """Per-node task executor with a fixed slot count."""

    def __init__(self, node_id: NodeId, slots: int) -> None:
        if slots < 1:
            raise ValueError("a TaskTracker needs at least one slot")
        self.node_id = node_id
        self.slots = slots
        self.busy = 0

    @property
    def free_slots(self) -> int:
        """Slots available right now."""
        return self.slots - self.busy


class JobTracker:
    """Dispatches job tasks onto TaskTracker slots.

    Args:
        sim: Simulation kernel.
        topology: Cluster layout (one TaskTracker per node).
        slots_per_node: Map slots per TaskTracker (the paper's Experiment
            A.3 uses 4).
        rng: Random source for tie-breaking among equally good nodes.
        health: Optional liveness oracle (usually ``network.is_up``): the
            scheduler never dispatches onto a node reported down.  When a
            *restricted* task's preferred nodes are all down, the
            restriction is relaxed and the task degrades to any live node
            (the encoder then pays cross-rack downloads instead of the map
            failing outright).
        max_task_attempts: Times a crashed task is re-executed before its
            completion event fails with :class:`TaskFailed` (1 = the
            original fail-fast behaviour).
    """

    def __init__(
        self,
        sim: Simulator,
        topology: ClusterTopology,
        slots_per_node: int = 4,
        rng: Optional[random.Random] = None,
        health: Optional[Callable[[NodeId], bool]] = None,
        max_task_attempts: int = 1,
    ) -> None:
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be at least 1")
        self.sim = sim
        self.topology = topology
        self.rng = rng if rng is not None else random.Random(0)
        self.health = health
        self.max_task_attempts = max_task_attempts
        self.trackers: Dict[NodeId, TaskTracker] = {
            node_id: TaskTracker(node_id, slots_per_node)
            for node_id in topology.node_ids()
        }
        self._pending: List[Tuple[MapTask, Event, int]] = []
        self._job_ids = itertools.count()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def new_job_id(self) -> int:
        """Allocate a job id."""
        return next(self._job_ids)

    def run_job(self, job: MapReduceJob) -> Generator:
        """Submit a job and wait for every task to finish (generator).

        Returns:
            List of per-task results, in task order (generator return
            value).
        """
        completions: List[Event] = []
        for task in job.tasks:
            done = self.sim.event()
            completions.append(done)
            self._pending.append((task, done, 1))
        self._dispatch()
        results = yield self.sim.all_of(completions)
        return results

    def submit(self, job: MapReduceJob) -> Event:
        """Submit without waiting; returns the job's completion event."""
        return self.sim.process(self.run_job(job))

    def watch_network(self, network) -> None:
        """Re-dispatch queued tasks whenever an endpoint comes back up.

        Without this, a job whose only eligible nodes are transiently down
        would sit queued forever: slot state never changes, so nothing
        re-triggers the scheduler.
        """
        network.on_endpoint_change(
            lambda __, is_up: self._dispatch() if is_up else None
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        scheduled_any = True
        while scheduled_any:
            scheduled_any = False
            for index, (task, done, attempt) in enumerate(self._pending):
                node = self._pick_node(task)
                if node is None:
                    continue
                del self._pending[index]
                self._start(task, node, done, attempt)
                scheduled_any = True
                break  # restart the scan: slot state changed

    def _is_healthy(self, node: NodeId) -> bool:
        return self.health is None or self.health(node)

    def _pick_node(self, task: MapTask) -> Optional[NodeId]:
        for node in task.preferred_nodes:
            if self._is_healthy(node) and self.trackers[node].free_slots > 0:
                return node
        if task.restrict_to_preferred:
            # Graceful degradation: only when every preferred node is DOWN
            # (not merely busy) may a restricted task drift off-rack.
            if any(self._is_healthy(n) for n in task.preferred_nodes):
                return None
        free = [
            tracker.node_id
            for tracker in self.trackers.values()
            if tracker.free_slots > 0 and self._is_healthy(tracker.node_id)
        ]
        if not free:
            return None
        most = max(self.trackers[n].free_slots for n in free)
        return self.rng.choice(
            [n for n in free if self.trackers[n].free_slots == most]
        )

    def _start(self, task: MapTask, node: NodeId, done: Event, attempt: int) -> None:
        self.trackers[node].busy += 1
        self.sim.process(self._run(task, node, done, attempt))

    def _run(
        self, task: MapTask, node: NodeId, done: Event, attempt: int
    ) -> Generator:
        try:
            result = yield from task.work(node)
        except Exception as exc:  # the task crashed on this node
            self.trackers[node].busy -= 1
            if attempt < self.max_task_attempts:
                # Re-execute: back into the queue for a fresh placement.
                self._pending.append((task, done, attempt + 1))
                self._dispatch()
                return
            self._dispatch()
            done.fail(TaskFailed(task.task_id, attempt, exc))
            return
        self.trackers[node].busy -= 1
        self._dispatch()
        done.succeed(result)
