"""File namespace: HDFS files as append-only block collections.

The paper's CFS model (Section II-A) "uses append-only writes and stores
files as a collection of fixed-size blocks".  Facebook's HDFS performs
*inter-file encoding*: "the data blocks of a stripe may belong to different
files" (Section IV-A) — which both placement policies here support
naturally, since stripes group blocks regardless of their file.

``FileNamespace`` provides the file -> blocks mapping on the NameNode side;
``CFSClient``-level helpers in this module write and read whole files
through the replication pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.cluster.block import BlockId
from repro.cluster.topology import NodeId
from repro.hdfs.client import CFSClient
from repro.journal.records import FileAppendBlock, FileCreate, FileDelete


class DuplicateFileError(KeyError):
    """Raised when creating a file whose name is taken."""


#: Deprecated alias — the old name shadowed the ``FileExistsError``
#: builtin (reprolint HYG002); use :class:`DuplicateFileError` instead.
FileExistsError_ = DuplicateFileError


@dataclass
class FileMetadata:
    """NameNode-side record of one file.

    Attributes:
        name: Absolute path-style name, unique in the namespace.
        block_ids: The file's blocks in append order.
        size: Logical file size in bytes (last block may be partial).
    """

    name: str
    block_ids: List[BlockId] = field(default_factory=list)
    size: int = 0

    @property
    def num_blocks(self) -> int:
        """Blocks the file currently spans."""
        return len(self.block_ids)


class FileNamespace:
    """The file table: name -> metadata, block -> owning file.

    With a :class:`~repro.journal.journal.MetadataJournal` attached
    (``self.journal``), every namespace mutation is journaled before it
    is applied; ``restore_file`` is the recovery-only entry point.
    """

    def __init__(self) -> None:
        self.journal = None
        self._files: Dict[str, FileMetadata] = {}
        self._owner: Dict[BlockId, str] = {}

    def create(self, name: str) -> FileMetadata:
        """Create an empty file.

        Raises:
            DuplicateFileError: If the name is already taken.
        """
        if not name:
            raise ValueError("file name cannot be empty")
        if name in self._files:
            raise DuplicateFileError(f"file {name!r} already exists")
        if self.journal is not None:
            self.journal.append(FileCreate(name=name))
        meta = FileMetadata(name)
        self._files[name] = meta
        return meta

    def append_block(self, name: str, block_id: BlockId, size: int) -> None:
        """Record a block appended to a file."""
        meta = self.lookup(name)
        if block_id in self._owner:
            raise ValueError(f"block {block_id} already belongs to a file")
        if self.journal is not None:
            self.journal.append(FileAppendBlock(
                name=name, block_id=block_id, size=size
            ))
        meta.block_ids.append(block_id)
        meta.size += size
        self._owner[block_id] = name

    def restore_file(
        self, name: str, block_ids: List[BlockId], size: int
    ) -> FileMetadata:
        """Re-register a file from a checkpoint (recovery only)."""
        if name in self._files:
            raise DuplicateFileError(f"file {name!r} already exists")
        meta = FileMetadata(name, list(block_ids), size)
        self._files[name] = meta
        for block_id in meta.block_ids:
            self._owner[block_id] = name
        return meta

    def lookup(self, name: str) -> FileMetadata:
        """Metadata of a file.

        Raises:
            KeyError: For unknown names.
        """
        try:
            return self._files[name]
        except KeyError:
            raise KeyError(f"no such file: {name!r}") from None

    def owner_of(self, block_id: BlockId) -> Optional[str]:
        """The file a block belongs to, if any."""
        return self._owner.get(block_id)

    def exists(self, name: str) -> bool:
        """True when the name is taken."""
        return name in self._files

    def files(self) -> List[FileMetadata]:
        """All files, in creation order."""
        return list(self._files.values())

    def delete(self, name: str) -> FileMetadata:
        """Remove a file from the namespace (blocks are the caller's to
        clean up, mirroring HDFS's asynchronous block deletion)."""
        meta = self.lookup(name)
        if self.journal is not None:
            self.journal.append(FileDelete(name=name))
        del self._files[name]
        for block_id in meta.block_ids:
            self._owner.pop(block_id, None)
        return meta

    def __len__(self) -> int:
        return len(self._files)


def write_file(
    client: CFSClient,
    namespace: FileNamespace,
    name: str,
    size: int,
    writer_node: Optional[NodeId] = None,
) -> Generator:
    """Write a whole file through the replication pipeline (generator).

    Splits ``size`` bytes into full blocks plus a final partial block, each
    written through :meth:`CFSClient.write_block` (and therefore placed by
    the active policy, joining stripes like any other block).

    Returns:
        The file's :class:`FileMetadata` (generator return value).
    """
    if size <= 0:
        raise ValueError("file size must be positive")
    namespace.create(name)
    block_size = client.namenode.block_size
    remaining = size
    while remaining > 0:
        chunk = min(remaining, block_size)
        result = yield from client.write_block(
            size=chunk, writer_node=writer_node
        )
        namespace.append_block(name, result.block.block_id, chunk)
        remaining -= chunk
    return namespace.lookup(name)


def read_file(
    client: CFSClient,
    namespace: FileNamespace,
    name: str,
    reader_node: NodeId,
) -> Generator:
    """Read every block of a file to ``reader_node`` (generator).

    Returns:
        List of source nodes, one per block (generator return value).
    """
    meta = namespace.lookup(name)
    sources: List[NodeId] = []
    for block_id in meta.block_ids:
        source = yield from client.read_block(block_id, reader_node)
        sources.append(source)
    return sources
