"""Time-driven failure injection and automatic recovery.

Drives the full fault loop inside the simulation: at a scheduled time a
node (or a whole rack) fails, its replicas vanish from the metadata, and
the RaidNode rebuilds every block that became singly-lost from an encoded
stripe — with real recovery traffic competing on the links.  Blocks that
still have surviving replicas (pre-encoding data) are re-replicated from a
survivor instead.

This is the machinery behind failure-injection tests and the recovery
ablations; production HDFS spreads the same work over re-replication and
RaidNode repair queues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Set

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.stripe import PreEncodingStore, Stripe, StripeState
from repro.faults.retry import RetryPolicy, with_retries
from repro.hdfs.namenode import NameNode
from repro.hdfs.raidnode import RaidNode
from repro.sim.engine import Simulator
from repro.sim.netsim import Network, SourceUnavailable


@dataclass(frozen=True)
class FailureReport:
    """What one injected failure cost to repair."""

    failed_nodes: tuple
    blocks_lost: int
    blocks_recovered: int
    blocks_rereplicated: int
    unrecoverable: tuple
    repair_time: float


@dataclass(frozen=True)
class PlacementViolation:
    """A repair forced a block into a rack already at the stripe's cap.

    Recorded instead of silently violating the ``<= c`` blocks-per-rack
    constraint; with a repair queue attached, a relocation is also
    enqueued so the violation is temporary.
    """

    block_id: BlockId
    node_id: NodeId
    rack_id: RackId
    time: float


class FailureInjector:
    """Schedules node/rack failures and repairs their damage.

    Args:
        sim: Simulation kernel.
        network: Link model (recovery traffic flows through it).
        namenode: Metadata server.
        raidnode: Provides erasure-coded block reconstruction.
        rng: Random source for replacement-node choices (deterministic
            default — injection is the only sanctioned randomness source).
        retry: When given, re-replication transfers survive transient
            faults by backing off and re-planning source and target.
        repair_queue: When given, lost blocks are enqueued on this
            prioritized queue (most-at-risk stripes first) instead of
            being repaired inline in discovery order; the injector waits
            for the queue to finish before emitting its report.
        fail_endpoints: When True, failed nodes are also taken down in the
            network model, so in-flight transfers touching them raise
            ``TransferAborted`` instead of silently completing.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        raidnode: RaidNode,
        rng: Optional[random.Random] = None,
        retry: Optional[RetryPolicy] = None,
        repair_queue=None,
        fail_endpoints: bool = False,
    ) -> None:
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.raidnode = raidnode
        self.rng = rng if rng is not None else random.Random(0)
        self.retry = retry
        self.repair_queue = repair_queue
        self.fail_endpoints = fail_endpoints
        self.reports: List[FailureReport] = []
        self.violations: List[PlacementViolation] = []

    # ------------------------------------------------------------------
    def fail_node_at(self, when: float, node_id: NodeId) -> Generator:
        """Fail one node at time ``when`` and repair (run as a process)."""
        delay = when - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        report = yield from self._fail_and_repair([node_id])
        return report

    def fail_rack_at(self, when: float, rack_id: RackId) -> Generator:
        """Fail every node of a rack at time ``when`` and repair."""
        delay = when - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        nodes = list(self.namenode.topology.nodes_in_rack(rack_id))
        report = yield from self._fail_and_repair(nodes)
        return report

    # ------------------------------------------------------------------
    def _fail_and_repair(self, failed: List[NodeId]) -> Generator:
        store = self.namenode.block_store
        failed_set = set(failed)
        start = self.sim.now

        if self.fail_endpoints:
            for node_id in failed:
                self.network.fail_endpoint(node_id)

        lost: List[BlockId] = []
        for node_id in failed:
            for block_id in list(store.blocks_on_node(node_id)):
                store.remove_replica(block_id, node_id)
                lost.append(block_id)

        if self.repair_queue is not None:
            outcome = yield from self._repair_via_queue(lost)
            recovered, rereplicated, unrecoverable = outcome
        else:
            outcome = yield from self._repair_inline(lost, failed_set)
            recovered, rereplicated, unrecoverable = outcome

        report = FailureReport(
            failed_nodes=tuple(failed),
            blocks_lost=len(lost),
            blocks_recovered=recovered,
            blocks_rereplicated=rereplicated,
            unrecoverable=tuple(unrecoverable),
            repair_time=self.sim.now - start,
        )
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    # Repair strategies
    # ------------------------------------------------------------------
    def _repair_inline(
        self, lost: List[BlockId], failed_set: Set[NodeId]
    ) -> Generator:
        """Repair lost blocks sequentially, in discovery order."""
        store = self.namenode.block_store
        recovered = 0
        rereplicated = 0
        unrecoverable: List[BlockId] = []
        for block_id in lost:
            # State is re-read at execution time: a concurrent encoding may
            # have trimmed or re-homed this block while earlier repairs ran.
            survivors = store.replica_nodes(block_id)
            if survivors:
                stripe = self._stripe_of(block_id)
                if stripe is not None and stripe.state == StripeState.ENCODED:
                    # The encode retained a surviving copy: one copy is the
                    # target for erasure-coded blocks, nothing to repair.
                    continue
                # Replicated block: copy from a survivor (re-replication).
                try:
                    yield from self._rereplicate(block_id, failed_set)
                    rereplicated += 1
                except RuntimeError:
                    unrecoverable.append(block_id)
                continue
            stripe = self._stripe_of(block_id)
            if stripe is None or stripe.state != StripeState.ENCODED:
                unrecoverable.append(block_id)
                continue
            target = self._replacement_node(store, block_id, failed_set)
            if target is None:
                unrecoverable.append(block_id)
                continue
            try:
                yield from self.raidnode.recover_block(stripe, block_id, target)
                recovered += 1
            except RuntimeError:
                unrecoverable.append(block_id)
        return recovered, rereplicated, unrecoverable

    def _rereplicate(
        self, block_id: BlockId, failed_set: Set[NodeId]
    ) -> Generator:
        """Copy a replicated block from a survivor onto a fresh node.

        With a retry policy, each attempt re-picks both the source and the
        target against current liveness, so a transient flap mid-transfer
        costs a backoff instead of the block.
        """
        if self.retry is None:
            yield from self._rereplicate_once(block_id, failed_set)
            return
        yield from with_retries(
            self.sim,
            lambda __: self._rereplicate_once(block_id, failed_set),
            self.retry,
            self.rng,
            label=f"re-replicate block {block_id}",
        )

    def _rereplicate_once(
        self, block_id: BlockId, failed_set: Set[NodeId]
    ) -> Generator:
        store = self.namenode.block_store
        survivors = [
            n
            for n in store.healthy_replica_nodes(block_id)
            if self.network.is_up(n)
        ]
        if not survivors:
            all_replicas = store.replica_nodes(block_id)
            if all_replicas:
                # Copies exist but are transiently down/corrupted: retryable.
                raise SourceUnavailable(
                    all_replicas[0], all_replicas[0], all_replicas[0]
                )
            raise RuntimeError(f"block {block_id} has no surviving replica")
        target = self._replacement_node(store, block_id, failed_set)
        if target is None:
            raise RuntimeError(f"no replacement node for block {block_id}")
        size = store.block(block_id).size
        yield from self.network.transfer(survivors[0], target, size)
        # The stripe may have finished encoding while the copy was in
        # flight, trimming the block to its single retained replica —
        # committing ours now would leave an over-replicated block the
        # PlacementMonitor cannot reason about.  Drop the copy instead.
        stripe = self._stripe_of(block_id)
        if (
            stripe is not None
            and stripe.state == StripeState.ENCODED
            and store.replica_nodes(block_id)
        ):
            return
        store.add_replica(block_id, target)

    def _repair_via_queue(self, lost: List[BlockId]) -> Generator:
        """Hand the lost blocks to the prioritized repair queue and wait."""
        seen: Set[BlockId] = set()
        ordered: List[BlockId] = []
        completions = []
        for block_id in lost:
            if block_id in seen:
                continue
            seen.add(block_id)
            ordered.append(block_id)
            completions.append(self.repair_queue.enqueue(block_id))
        recovered = 0
        rereplicated = 0
        unrecoverable: List[BlockId] = []
        if completions:
            outcomes = yield self.sim.all_of(completions)
        else:
            outcomes = []
        for block_id, outcome in zip(ordered, outcomes):
            if outcome == "decoded":
                recovered += 1
            elif outcome == "rereplicated":
                rereplicated += 1
            elif outcome == "unrecoverable":
                unrecoverable.append(block_id)
            # "noop": encoded stripe already holds its retained copy.
        return recovered, rereplicated, unrecoverable

    def _stripe_of(self, block_id: BlockId) -> Optional[Stripe]:
        pre_store = self.namenode.pre_encoding_store
        if pre_store is None:
            return None
        stripe = pre_store.stripe_of_block(block_id)
        if stripe is not None:
            return stripe
        stripe_id = self.namenode.block_store.block(block_id).stripe_id
        if stripe_id is None:
            return None
        try:
            return pre_store.stripe(stripe_id)
        except KeyError:
            return None

    def _rack_cap(self) -> int:
        """The stripe's ``c`` blocks-per-rack fault-tolerance cap."""
        return getattr(self.namenode.policy, "c", 1)

    def _replacement_node(
        self, store: BlockStore, block_id: BlockId, failed: Set[NodeId]
    ) -> Optional[NodeId]:
        """A live node not already holding the block, preserving diversity.

        For ENCODED stripes the choice honours the ``<= c`` blocks-per-rack
        constraint; when no compliant candidate exists the violation is
        *recorded* (and a relocation enqueued when a repair queue is
        attached) rather than silently committed.  Replicated blocks keep
        the softer rack-diversity preference.
        """
        topology = self.namenode.topology
        stripe = self._stripe_of(block_id)
        rack_usage: Dict[RackId, int] = {}
        if stripe is not None:
            for member in stripe.all_block_ids():
                for node in store.replica_nodes(member):
                    rack = topology.rack_of(node)
                    rack_usage[rack] = rack_usage.get(rack, 0) + 1
        candidates = [
            n
            for n in topology.node_ids()
            if n not in failed
            and block_id not in store.blocks_on_node(n)
            and self.network.is_up(n)
        ]
        if not candidates:
            return None
        if stripe is not None and stripe.state == StripeState.ENCODED:
            cap = self._rack_cap()
            compliant = [
                n for n in candidates if rack_usage.get(topology.rack_of(n), 0) < cap
            ]
            if compliant:
                return self.rng.choice(compliant)
            choice = self.rng.choice(candidates)
            self.violations.append(
                PlacementViolation(
                    block_id=block_id,
                    node_id=choice,
                    rack_id=topology.rack_of(choice),
                    time=self.sim.now,
                )
            )
            if self.repair_queue is not None:
                self.repair_queue.request_relocation(stripe)
            return choice
        diverse = [n for n in candidates if topology.rack_of(n) not in rack_usage]
        return self.rng.choice(diverse or candidates)
