"""Time-driven failure injection and automatic recovery.

Drives the full fault loop inside the simulation: at a scheduled time a
node (or a whole rack) fails, its replicas vanish from the metadata, and
the RaidNode rebuilds every block that became singly-lost from an encoded
stripe — with real recovery traffic competing on the links.  Blocks that
still have surviving replicas (pre-encoding data) are re-replicated from a
survivor instead.

This is the machinery behind failure-injection tests and the recovery
ablations; production HDFS spreads the same work over re-replication and
RaidNode repair queues.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional, Set

from repro.cluster.block import BlockId, BlockStore
from repro.cluster.topology import ClusterTopology, NodeId, RackId
from repro.core.stripe import PreEncodingStore, Stripe, StripeState
from repro.hdfs.namenode import NameNode
from repro.hdfs.raidnode import RaidNode
from repro.sim.engine import Simulator
from repro.sim.netsim import Network


@dataclass(frozen=True)
class FailureReport:
    """What one injected failure cost to repair."""

    failed_nodes: tuple
    blocks_lost: int
    blocks_recovered: int
    blocks_rereplicated: int
    unrecoverable: tuple
    repair_time: float


class FailureInjector:
    """Schedules node/rack failures and repairs their damage.

    Args:
        sim: Simulation kernel.
        network: Link model (recovery traffic flows through it).
        namenode: Metadata server.
        raidnode: Provides erasure-coded block reconstruction.
        rng: Random source for replacement-node choices.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        namenode: NameNode,
        raidnode: RaidNode,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.namenode = namenode
        self.raidnode = raidnode
        self.rng = rng if rng is not None else random.Random()
        self.reports: List[FailureReport] = []

    # ------------------------------------------------------------------
    def fail_node_at(self, when: float, node_id: NodeId) -> Generator:
        """Fail one node at time ``when`` and repair (run as a process)."""
        delay = when - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        report = yield from self._fail_and_repair([node_id])
        return report

    def fail_rack_at(self, when: float, rack_id: RackId) -> Generator:
        """Fail every node of a rack at time ``when`` and repair."""
        delay = when - self.sim.now
        if delay > 0:
            yield self.sim.timeout(delay)
        nodes = list(self.namenode.topology.nodes_in_rack(rack_id))
        report = yield from self._fail_and_repair(nodes)
        return report

    # ------------------------------------------------------------------
    def _fail_and_repair(self, failed: List[NodeId]) -> Generator:
        store = self.namenode.block_store
        failed_set = set(failed)
        start = self.sim.now

        lost: List[BlockId] = []
        for node_id in failed:
            for block_id in list(store.blocks_on_node(node_id)):
                store.remove_replica(block_id, node_id)
                lost.append(block_id)

        recovered = 0
        rereplicated = 0
        unrecoverable: List[BlockId] = []
        for block_id in lost:
            # State is re-read at execution time: a concurrent encoding may
            # have trimmed or re-homed this block while earlier repairs ran.
            survivors = store.replica_nodes(block_id)
            if survivors:
                stripe = self._stripe_of(block_id)
                if stripe is not None and stripe.state == StripeState.ENCODED:
                    # The encode retained a surviving copy: one copy is the
                    # target for erasure-coded blocks, nothing to repair.
                    continue
                # Replicated block: copy from a survivor (re-replication).
                target = self._replacement_node(store, block_id, failed_set)
                if target is None:
                    unrecoverable.append(block_id)
                    continue
                size = store.block(block_id).size
                yield from self.network.transfer(survivors[0], target, size)
                store.add_replica(block_id, target)
                rereplicated += 1
                continue
            stripe = self._stripe_of(block_id)
            if stripe is None or stripe.state != StripeState.ENCODED:
                unrecoverable.append(block_id)
                continue
            target = self._replacement_node(store, block_id, failed_set)
            if target is None:
                unrecoverable.append(block_id)
                continue
            try:
                yield from self.raidnode.recover_block(stripe, block_id, target)
                recovered += 1
            except RuntimeError:
                unrecoverable.append(block_id)

        report = FailureReport(
            failed_nodes=tuple(failed),
            blocks_lost=len(lost),
            blocks_recovered=recovered,
            blocks_rereplicated=rereplicated,
            unrecoverable=tuple(unrecoverable),
            repair_time=self.sim.now - start,
        )
        self.reports.append(report)
        return report

    def _stripe_of(self, block_id: BlockId) -> Optional[Stripe]:
        pre_store = self.namenode.pre_encoding_store
        if pre_store is None:
            return None
        stripe = pre_store.stripe_of_block(block_id)
        if stripe is not None:
            return stripe
        stripe_id = self.namenode.block_store.block(block_id).stripe_id
        if stripe_id is None:
            return None
        try:
            return pre_store.stripe(stripe_id)
        except KeyError:
            return None

    def _replacement_node(
        self, store: BlockStore, block_id: BlockId, failed: Set[NodeId]
    ) -> Optional[NodeId]:
        """A live node not already holding the block, preferring racks not
        used by the block's stripe (to preserve rack diversity)."""
        topology = self.namenode.topology
        stripe = self._stripe_of(block_id)
        occupied_racks: Set[RackId] = set()
        if stripe is not None:
            for member in stripe.all_block_ids():
                for node in store.replica_nodes(member):
                    occupied_racks.add(topology.rack_of(node))
        candidates = [
            n
            for n in topology.node_ids()
            if n not in failed and block_id not in store.blocks_on_node(n)
        ]
        if not candidates:
            return None
        diverse = [
            n for n in candidates if topology.rack_of(n) not in occupied_racks
        ]
        return self.rng.choice(diverse or candidates)
