"""GF(2^8) finite-field arithmetic with numpy-vectorised kernels.

The field is constructed over the AES/Rijndael-compatible primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the polynomial used by most storage
erasure-coding libraries (e.g. Jerasure, ISA-L).  Single-element operations
work on Python ints; bulk operations accept numpy ``uint8`` arrays and use
precomputed log/antilog tables.

Bulk kernels come in two generations.  The log/antilog path
(:meth:`GF256.addmul_array`) masks out zeros and gathers through two tables;
the full 256x256 multiplication table (:meth:`GF256.mul_table`,
:meth:`GF256.mul_bulk`) trades 64 KiB of memory for a single ``np.take``
gather per operation — the same trade Jerasure's "big table" variant makes —
and is what the fused matrix kernels in :mod:`repro.erasure.matrix` build
on.  Bulk calls report counted work ("gf.kernel_calls", "gf.symbol_mults")
into :data:`repro.sim.metrics.PERF` for the benchmark harness.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro.sim.metrics import PERF

#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (decimal 285).
PRIMITIVE_POLY = 0x11D

#: Order of the multiplicative group of GF(2^8).
GROUP_ORDER = 255

ArrayLike = Union[int, np.ndarray]


def _build_tables():
    """Precompute exp/log tables for the multiplicative group."""
    exp = np.zeros(512, dtype=np.int32)
    log = np.zeros(256, dtype=np.int32)
    value = 1
    for power in range(GROUP_ORDER):
        exp[power] = value
        log[value] = power
        value <<= 1
        if value & 0x100:
            value ^= PRIMITIVE_POLY
    # Duplicate the table so exp[a + b] works without a modulo for a,b < 255.
    exp[GROUP_ORDER : 2 * GROUP_ORDER] = exp[:GROUP_ORDER]
    exp[2 * GROUP_ORDER :] = exp[: 512 - 2 * GROUP_ORDER]
    return exp, log


_EXP, _LOG = _build_tables()


def _build_mul_table() -> np.ndarray:
    """The full 256x256 product table ``T[a, b] = a * b`` over GF(2^8)."""
    logs = _LOG[np.arange(256)]
    table = _EXP[logs[:, None] + logs[None, :]].astype(np.uint8)
    # log[0] is a placeholder; zero annihilates, so fix row and column 0.
    table[0, :] = 0
    table[:, 0] = 0
    table.setflags(write=False)
    return table


_MUL_TABLE = _build_mul_table()

#: Rows of the multiplication table as immutable ``bytes`` — the pure-Python
#: streaming backend indexes ``row[byte]`` in a tight loop, and a ``bytes``
#: row avoids a numpy scalar boxing per byte.
_MUL_ROWS = tuple(bytes(_MUL_TABLE[value]) for value in range(256))


class GF256:
    """Arithmetic in GF(2^8).

    All methods are static; the class exists as a namespace so call sites
    read as ``GF256.mul(a, b)``.

    Example:
        >>> GF256.mul(3, 7)
        9
        >>> GF256.mul(GF256.inv(5), 5)
        1
    """

    ORDER = 256

    @staticmethod
    def add(a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Addition is XOR in characteristic-2 fields."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.bitwise_xor(a, b)
        return a ^ b

    #: Subtraction equals addition in GF(2^8).
    sub = add

    @staticmethod
    def mul(a: int, b: int) -> int:
        """Scalar multiply."""
        if a == 0 or b == 0:
            return 0
        return int(_EXP[_LOG[a] + _LOG[b]])

    @staticmethod
    def div(a: int, b: int) -> int:
        """Scalar divide.

        Raises:
            ZeroDivisionError: When ``b`` is zero.
        """
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^8)")
        if a == 0:
            return 0
        return int(_EXP[(_LOG[a] - _LOG[b]) % GROUP_ORDER])

    @staticmethod
    def inv(a: int) -> int:
        """Multiplicative inverse.

        Raises:
            ZeroDivisionError: When ``a`` is zero.
        """
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^8)")
        return int(_EXP[GROUP_ORDER - _LOG[a]])

    @staticmethod
    def pow(a: int, exponent: int) -> int:
        """Raise ``a`` to an integer power (negative powers allowed)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("zero has no negative powers")
            return 0
        return int(_EXP[(_LOG[a] * exponent) % GROUP_ORDER])

    @staticmethod
    def mul_table() -> np.ndarray:
        """The full 256x256 multiplication table (read-only).

        ``mul_table()[a, b] == mul(a, b)`` for every pair of field elements;
        batched kernels gather rows of this table instead of masking through
        the log/antilog pair.
        """
        return _MUL_TABLE

    @staticmethod
    def mul_row(scalar: int) -> bytes:
        """Row ``scalar`` of the multiplication table as read-only ``bytes``.

        ``mul_row(a)[b] == mul(a, b)`` for every field element ``b``.  The
        scalar streaming backend (:mod:`repro.erasure.stream`) walks this row
        byte-by-byte; keeping it as ``bytes`` means each lookup is a plain
        ``list``-style index with no numpy scalar round-trip.
        """
        if not 0 <= scalar < 256:
            raise ValueError(f"scalar {scalar} outside GF(2^8)")
        return _MUL_ROWS[scalar]

    @staticmethod
    def mul_array(scalar: int, data: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``data`` by ``scalar`` (vectorised).

        One ``np.take`` gather through the scalar's row of the 256x256
        table; zero rows make the old zero-masking unnecessary.

        Args:
            scalar: Field element in [0, 255].
            data: ``uint8`` array of any shape.

        Returns:
            A new ``uint8`` array of the same shape.
        """
        if not 0 <= scalar < 256:
            raise ValueError(f"scalar {scalar} outside GF(2^8)")
        data = np.asarray(data, dtype=np.uint8)
        PERF.bump("gf.kernel_calls")
        PERF.bump("gf.symbol_mults", data.size)
        if scalar == 0:
            return np.zeros_like(data)
        if scalar == 1:
            return data.copy()
        return np.take(_MUL_TABLE[scalar], data)

    @staticmethod
    def mul_bulk(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two byte arrays in one table gather.

        Args:
            a: ``uint8`` array (or scalar) of field elements.
            b: ``uint8`` array (or scalar); broadcast against ``a``.

        Returns:
            ``uint8`` array of the broadcast shape with ``out = a * b``.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        out = _MUL_TABLE[a, b]
        PERF.bump("gf.kernel_calls")
        PERF.bump("gf.symbol_mults", out.size)
        return out

    @staticmethod
    def addmul_array(acc: np.ndarray, scalar: int, data: np.ndarray) -> None:
        """In-place ``acc ^= scalar * data`` — the scalar-path inner loop."""
        if scalar == 0:
            return
        if scalar == 1:
            PERF.bump("gf.kernel_calls")
            PERF.bump("gf.symbol_mults", np.asarray(data).size)
            np.bitwise_xor(acc, data, out=acc)
            return
        np.bitwise_xor(acc, GF256.mul_array(scalar, data), out=acc)

    @staticmethod
    def elements() -> Iterable[int]:
        """All 256 field elements."""
        return range(256)
