"""Systematic Cauchy Reed-Solomon coding over GF(2^8).

Cauchy RS codes [Blomer et al.] replace the Vandermonde construction with a
Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` for disjoint sets of field
elements ``{x_i}`` and ``{y_j}``.  Every square sub-matrix of a Cauchy matrix
is invertible, so an ``(n - k) x k`` Cauchy parity matrix stacked under the
identity yields a systematic MDS code directly — no matrix transformation
needed.  The paper cites Cauchy RS [3] as one of the erasure codes CFSes use.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.erasure import matrix as gfm
from repro.erasure.galois import GF256


def cauchy_matrix(x_points: Sequence[int], y_points: Sequence[int]) -> np.ndarray:
    """The Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` over GF(2^8).

    Raises:
        ValueError: If the point sets overlap or contain duplicates (either
            would make some denominator zero or break invertibility).
    """
    xs = list(x_points)
    ys = list(y_points)
    if len(set(xs)) != len(xs) or len(set(ys)) != len(ys):
        raise ValueError("x and y points must each be distinct")
    if set(xs) & set(ys):
        raise ValueError("x and y point sets must be disjoint")
    out = np.zeros((len(xs), len(ys)), dtype=np.uint8)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = GF256.inv(GF256.add(x, y))
    return out


@lru_cache(maxsize=64)
def generator_matrix(n: int, k: int) -> np.ndarray:
    """Cached, **read-only** systematic generator (copy before mutating)."""
    if not 0 < k < n:
        raise ValueError(f"require 0 < k < n, got n={n}, k={k}")
    if n > 256:
        raise ValueError("Cauchy RS over GF(2^8) supports at most n = 256")
    parity = cauchy_matrix(range(k, n), range(k))
    generator = np.concatenate([gfm.identity(k), parity], axis=0)
    generator.setflags(write=False)
    return generator


def build_generator_matrix(n: int, k: int) -> np.ndarray:
    """A fresh, writable ``n x k`` generator: identity on a Cauchy matrix."""
    return generator_matrix(n, k).copy()


@lru_cache(maxsize=256)
def decode_matrix(n: int, k: int, indices: Tuple[int, ...]) -> np.ndarray:
    """Cached, read-only decode matrix keyed by (n, k, erasure pattern)."""
    matrix = gfm.invert(generator_matrix(n, k)[list(indices), :])
    matrix.setflags(write=False)
    return matrix


def parity_matrix(n: int, k: int) -> np.ndarray:
    """The ``(n - k) x k`` Cauchy parity matrix."""
    return generator_matrix(n, k)[k:, :]


def encode(data_shards: np.ndarray, n: int, k: int) -> np.ndarray:
    """Compute ``n - k`` Cauchy RS parity shards for ``k`` data shards."""
    data_shards = np.asarray(data_shards, dtype=np.uint8)
    if data_shards.ndim != 2 or data_shards.shape[0] != k:
        raise ValueError(f"expected {k} data shards, got shape {data_shards.shape}")
    return gfm.apply_to_shards(parity_matrix(n, k), data_shards)


def decode(
    available_shards: np.ndarray,
    available_indices: Sequence[int],
    n: int,
    k: int,
) -> np.ndarray:
    """Reconstruct the ``k`` data shards from any ``k`` surviving shards."""
    indices = list(available_indices)
    if len(indices) != k or len(set(indices)) != k:
        raise ValueError(f"need exactly k={k} distinct shard indices, got {indices}")
    if not all(0 <= i < n for i in indices):
        raise ValueError(f"shard indices must lie in [0, {n}), got {indices}")
    available_shards = np.asarray(available_shards, dtype=np.uint8)
    if available_shards.shape[0] != k:
        raise ValueError(
            f"expected {k} shard rows, got shape {available_shards.shape}"
        )
    return gfm.apply_to_shards(
        decode_matrix(n, k, tuple(indices)), available_shards
    )
