"""Locally repairable codes (LRC) — an extension from the paper's related
work (Section VI: "Local repairable codes are a new family of erasure codes
that reduce I/O during recovery", deployed by Azure and evaluated on HDFS).

An ``(k, l, g)`` LRC splits the ``k`` data blocks into ``l`` local groups,
adds one *local parity* (the XOR of its group) per group, and ``g`` *global
parities* (Reed-Solomon rows over all ``k`` blocks).  A single lost data
block is repaired from its local group — ``k/l`` reads instead of ``k`` —
which is exactly the cross-rack recovery cost Section III-D of the paper
worries about.

The implementation is generator-matrix based: decoding inverts the rows of
available blocks, so any failure pattern whose surviving rows have full
rank is recovered (this covers all single failures and most multi-failure
patterns up to ``g + 1`` erasures; LRCs are not MDS).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure import matrix as gfm
from repro.erasure import reed_solomon
from repro.erasure.codec import DECODE_CACHE_SIZE, ErasureCodec
from repro.sim.metrics import PERF


@dataclass(frozen=True)
class LRCParams:
    """Parameters of a ``(k, l, g)`` locally repairable code.

    Attributes:
        k: Data blocks per stripe.
        local_groups: Number of local groups ``l`` (each gets one local
            parity).  Must divide ``k``.
        global_parities: Number of Reed-Solomon global parities ``g``.

    Azure's production code is ``LRCParams(12, 2, 2)``: 16 blocks total,
    1.33x overhead, single-failure repairs read 6 blocks instead of 12.
    """

    k: int
    local_groups: int
    global_parities: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.local_groups < 1 or self.k % self.local_groups:
            raise ValueError("local_groups must divide k")
        if self.global_parities < 1:
            raise ValueError("need at least one global parity")
        if self.n > 256:
            raise ValueError("codes over GF(2^8) support at most n = 256")

    @property
    def n(self) -> int:
        """Total blocks per stripe: data + local + global parities."""
        return self.k + self.local_groups + self.global_parities

    @property
    def group_size(self) -> int:
        """Data blocks per local group."""
        return self.k // self.local_groups

    @property
    def storage_overhead(self) -> float:
        """Redundancy factor ``n / k``."""
        return self.n / self.k

    def group_of(self, data_index: int) -> int:
        """The local group a data block belongs to."""
        if not 0 <= data_index < self.k:
            raise ValueError(f"data index {data_index} outside [0, {self.k})")
        return data_index // self.group_size

    def group_members(self, group: int) -> List[int]:
        """Stripe indices of a group's data blocks."""
        if not 0 <= group < self.local_groups:
            raise ValueError(f"group {group} outside [0, {self.local_groups})")
        start = group * self.group_size
        return list(range(start, start + self.group_size))

    def local_parity_index(self, group: int) -> int:
        """Stripe index of a group's local parity block."""
        if not 0 <= group < self.local_groups:
            raise ValueError(f"group {group} outside [0, {self.local_groups})")
        return self.k + group

    def __str__(self) -> str:
        return f"LRC({self.k},{self.local_groups},{self.global_parities})"


class LocalReconstructionCodec:
    """Azure-style LRC over GF(2^8) with byte-level encode/decode/repair.

    Block layout within a stripe: indices ``0..k-1`` are data, ``k..k+l-1``
    the local parities (one per group), ``k+l..n-1`` the global parities.

    Example:
        >>> codec = LocalReconstructionCodec(LRCParams(4, 2, 2))
        >>> parity = codec.encode([b"ab", b"cd", b"ef", b"gh"])
        >>> len(parity)
        4
    """

    def __init__(self, params: LRCParams) -> None:
        self.params = params
        self._generator = self._build_generator()
        # Caches keyed by the survivor pattern: the invertible-subset search
        # is combinatorial in the worst case and the k x k inversion is the
        # decode hot spot, so both are LRU-memoised per erasure pattern.
        self._subset_cache: "OrderedDict[Tuple[int, ...], Optional[Tuple[int, ...]]]" = (
            OrderedDict()
        )
        self._decode_cache: "OrderedDict[Tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )

    def _build_generator(self) -> np.ndarray:
        p = self.params
        rows: List[np.ndarray] = [gfm.identity(p.k)]
        local = np.zeros((p.local_groups, p.k), dtype=np.uint8)
        for group in range(p.local_groups):
            for index in p.group_members(group):
                local[group, index] = 1  # XOR of the group
        rows.append(local)
        # Global parities: the parity rows of a systematic RS code over the
        # k data blocks (any g of them are independent combinations).
        rs_parity = reed_solomon.parity_matrix(p.k + p.global_parities, p.k)
        rows.append(rs_parity)
        return np.concatenate(rows, axis=0)

    @property
    def generator(self) -> np.ndarray:
        """The ``n x k`` generator matrix (identity on top)."""
        return self._generator.copy()

    # ------------------------------------------------------------------
    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Compute the ``l + g`` parity blocks for ``k`` data blocks."""
        shards = ErasureCodec._stack(data_blocks, expected=self.params.k)
        parity = gfm.apply_to_shards(self._generator[self.params.k :], shards)
        return [row.tobytes() for row in parity]

    def decode(self, available: Dict[int, bytes]) -> List[bytes]:
        """Reconstruct all data blocks from any decodable survivor set.

        Raises:
            ValueError: If fewer than ``k`` blocks are available, or the
                available rows are not full rank (the failure pattern is
                information-theoretically unrecoverable for this LRC).
        """
        if len(available) < self.params.k:
            raise ValueError(
                f"need at least k={self.params.k} blocks, got {len(available)}"
            )
        # Try subsets greedily: the lowest-index k rows usually suffice;
        # fall back to widening until an invertible subset appears.
        indices = sorted(available)
        shards = ErasureCodec._stack(
            [available[i] for i in indices], expected=len(indices)
        )
        subset = self._invertible_subset_cached(tuple(indices))
        if subset is None:
            raise ValueError(
                "failure pattern is unrecoverable for this LRC "
                f"(survivors: {indices})"
            )
        rows = [indices.index(i) for i in subset]
        data = gfm.apply_to_shards(self._decode_matrix(subset), shards[rows, :])
        return [row.tobytes() for row in data]

    def repair(
        self, lost_index: int, available: Dict[int, bytes]
    ) -> Tuple[bytes, List[int]]:
        """Repair one lost block, preferring the cheap local path.

        Returns:
            ``(rebuilt_bytes, indices_read)`` — for a single data or local
            parity loss the indices read are just the local group (the LRC
            selling point); otherwise the repair falls back to a global
            decode.
        """
        p = self.params
        local = self._local_repair_set(lost_index)
        if local is not None and all(i in available for i in local):
            length = max(len(available[i]) for i in local)
            acc = np.zeros(length, dtype=np.uint8)
            for i in local:
                block = np.frombuffer(
                    available[i].ljust(length, b"\0"), dtype=np.uint8
                )
                np.bitwise_xor(acc, block, out=acc)
            return acc.tobytes(), sorted(local)

        data = self.decode(available)
        shards = ErasureCodec._stack(data, expected=p.k)
        row = self._generator[lost_index : lost_index + 1, :]
        rebuilt = gfm.apply_to_shards(row, shards)[0].tobytes()
        used = sorted(available)[: p.k]
        return rebuilt, used

    def verify(self, blocks: Dict[int, bytes]) -> bool:
        """Check a full stripe's parities against its data blocks."""
        p = self.params
        if sorted(blocks) != list(range(p.n)):
            raise ValueError("verify requires all n blocks of the stripe")
        expected = self.encode([blocks[i] for i in range(p.k)])
        length = max(len(b) for b in blocks.values())
        return all(
            blocks[p.k + offset].ljust(length, b"\0") == parity
            for offset, parity in enumerate(expected)
        )

    # ------------------------------------------------------------------
    def repair_cost(self, lost_index: int) -> int:
        """Blocks read to repair ``lost_index`` with all others alive.

        ``k/l`` for data and local-parity losses, ``k`` for global ones —
        the comparison the LRC literature (and the extension benchmark)
        makes against plain RS.
        """
        return len(self._local_repair_set(lost_index) or range(self.params.k))

    def _local_repair_set(self, lost_index: int) -> Optional[List[int]]:
        p = self.params
        if not 0 <= lost_index < p.n:
            raise ValueError(f"index {lost_index} outside the stripe")
        if lost_index < p.k:
            group = p.group_of(lost_index)
        elif lost_index < p.k + p.local_groups:
            group = lost_index - p.k
        else:
            return None  # global parity: needs a global decode
        members = p.group_members(group) + [p.local_parity_index(group)]
        return [i for i in members if i != lost_index]

    def _invertible_subset_cached(
        self, indices: Tuple[int, ...]
    ) -> Optional[Tuple[int, ...]]:
        """LRU-memoised :meth:`_invertible_subset` keyed by survivor set."""
        if indices in self._subset_cache:
            self._subset_cache.move_to_end(indices)
            PERF.bump("lrc.subset_hits")
            return self._subset_cache[indices]
        PERF.bump("lrc.subset_misses")
        subset = self._invertible_subset(list(indices))
        result = None if subset is None else tuple(subset)
        self._subset_cache[indices] = result
        if len(self._subset_cache) > DECODE_CACHE_SIZE:
            self._subset_cache.popitem(last=False)
        return result

    def _decode_matrix(self, subset: Tuple[int, ...]) -> np.ndarray:
        """LRU-cached inverse of the chosen survivors' generator rows."""
        cached = self._decode_cache.get(subset)
        if cached is not None:
            self._decode_cache.move_to_end(subset)
            PERF.bump("lrc.decode_matrix_hits")
            return cached
        PERF.bump("lrc.decode_matrix_misses")
        matrix = gfm.invert(self._generator[list(subset), :])
        matrix.setflags(write=False)
        self._decode_cache[subset] = matrix
        if len(self._decode_cache) > DECODE_CACHE_SIZE:
            self._decode_cache.popitem(last=False)
        return matrix

    def _invertible_subset(self, indices: List[int]) -> Optional[List[int]]:
        """Find k available rows forming an invertible matrix."""
        import itertools

        k = self.params.k
        # Fast path: data rows plus whatever parity fills the gaps.
        candidates = sorted(indices, key=lambda i: (i >= k, i))
        head = candidates[:k]
        if gfm.rank(self._generator[head, :]) == k:
            return head
        for subset in itertools.combinations(indices, k):
            if gfm.rank(self._generator[list(subset), :]) == k:
                return list(subset)
        return None
