"""Systematic Reed-Solomon coding over GF(2^8).

Builds the generator matrix the way production RS libraries do: start from an
``n x k`` Vandermonde matrix (any ``k`` rows independent), then transform it
so the top ``k x k`` sub-matrix is the identity.  The row-space property is
preserved by the transformation, so any ``k`` of the ``n`` encoded shards
still suffice to reconstruct the data — and the first ``k`` shards *are* the
data (systematic form), matching HDFS-RAID's behaviour of keeping the data
blocks intact.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from repro.erasure import matrix as gfm


@lru_cache(maxsize=64)
def generator_matrix(n: int, k: int) -> np.ndarray:
    """The cached, **read-only** systematic generator for an (n, k) RS code.

    Building a generator costs a Vandermonde construction plus a ``k x k``
    inversion, so the result is memoised per ``(n, k)`` and shared; callers
    that need to mutate it must copy (:func:`build_generator_matrix` does).

    The first ``k`` rows form the identity; the remaining ``n - k`` rows are
    the parity coefficients.

    Raises:
        ValueError: If the parameters do not satisfy ``0 < k < n <= 256``.
    """
    if not 0 < k < n:
        raise ValueError(f"require 0 < k < n, got n={n}, k={k}")
    if n > 256:
        raise ValueError("RS over GF(2^8) supports at most n = 256")
    vander = gfm.vandermonde(n, k)
    top_inverse = gfm.invert(vander[:k, :])
    generator = gfm.matmul(vander, top_inverse)
    # Guard against arithmetic mistakes: the top must now be the identity.
    if not np.array_equal(generator[:k, :], gfm.identity(k)):
        raise AssertionError("generator matrix is not systematic")
    generator.setflags(write=False)
    return generator


def build_generator_matrix(n: int, k: int) -> np.ndarray:
    """A fresh, writable copy of the ``n x k`` systematic generator matrix."""
    return generator_matrix(n, k).copy()


@lru_cache(maxsize=256)
def decode_matrix(n: int, k: int, indices: Tuple[int, ...]) -> np.ndarray:
    """Cached, read-only inverse of the survivors' generator rows.

    Keyed by ``(n, k, erasure pattern)``: repairing many stripes that lost
    the same shard set (the common case during a rack outage) inverts the
    ``k x k`` system once.
    """
    return _freeze(gfm.invert(generator_matrix(n, k)[list(indices), :]))


def _freeze(matrix: np.ndarray) -> np.ndarray:
    matrix.setflags(write=False)
    return matrix


def parity_matrix(n: int, k: int) -> np.ndarray:
    """Just the ``(n - k) x k`` parity rows of the generator matrix."""
    return generator_matrix(n, k)[k:, :]


def encode(data_shards: np.ndarray, n: int, k: int) -> np.ndarray:
    """Compute the ``n - k`` parity shards for ``k`` data shards.

    Args:
        data_shards: ``(k, L)`` uint8 array, one row per data block.
        n: Total shards per stripe.
        k: Data shards per stripe.

    Returns:
        ``(n - k, L)`` uint8 array of parity shards.
    """
    data_shards = np.asarray(data_shards, dtype=np.uint8)
    if data_shards.ndim != 2 or data_shards.shape[0] != k:
        raise ValueError(f"expected {k} data shards, got shape {data_shards.shape}")
    return gfm.apply_to_shards(parity_matrix(n, k), data_shards)


def decode(
    available_shards: np.ndarray,
    available_indices: Sequence[int],
    n: int,
    k: int,
) -> np.ndarray:
    """Reconstruct the ``k`` original data shards from any ``k`` survivors.

    Args:
        available_shards: ``(k, L)`` array of surviving shards (data or
            parity), one row per shard.
        available_indices: Stripe index (0..n-1) of each surviving shard;
            indices < k are data shards, >= k parity shards.
        n: Total shards per stripe.
        k: Data shards per stripe.

    Returns:
        ``(k, L)`` array holding the original data shards in order.

    Raises:
        ValueError: If fewer/more than ``k`` distinct shard indices are given.
    """
    indices = list(available_indices)
    if len(indices) != k or len(set(indices)) != k:
        raise ValueError(f"need exactly k={k} distinct shard indices, got {indices}")
    if not all(0 <= i < n for i in indices):
        raise ValueError(f"shard indices must lie in [0, {n}), got {indices}")
    available_shards = np.asarray(available_shards, dtype=np.uint8)
    if available_shards.shape[0] != k:
        raise ValueError(
            f"expected {k} shard rows, got shape {available_shards.shape}"
        )
    return gfm.apply_to_shards(
        decode_matrix(n, k, tuple(indices)), available_shards
    )


def reconstruct_shard(
    target_index: int,
    available_shards: np.ndarray,
    available_indices: Sequence[int],
    n: int,
    k: int,
) -> np.ndarray:
    """Repair a single lost shard (data or parity) from any ``k`` survivors.

    This is the degraded-read / recovery path discussed in Section III-D: the
    repairing node downloads ``k`` blocks and re-derives the missing one.
    """
    data = decode(available_shards, available_indices, n, k)
    if target_index < k:
        return data[target_index].copy()
    generator = generator_matrix(n, k)
    return gfm.apply_to_shards(generator[target_index : target_index + 1, :], data)[0]
