"""High-level erasure codec interface used by the rest of the library.

``CodeParams`` captures the ``(n, k)`` parameters that appear everywhere in
the paper; ``ErasureCodec`` wraps the matrix machinery behind an API phrased
in terms of stripes of byte blocks, padding uneven inputs the way HDFS-RAID
zero-pads the tail of a file.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure import cauchy, reed_solomon
from repro.sim.metrics import PERF

#: Decode matrices retained per codec instance, keyed by erasure pattern.
DECODE_CACHE_SIZE = 128


@dataclass(frozen=True)
class CodeParams:
    """Parameters of an ``(n, k)`` systematic erasure code.

    Attributes:
        n: Total blocks per stripe (data + parity).
        k: Data blocks per stripe; any ``k`` of the ``n`` blocks reconstruct
            the stripe.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k < self.n:
            raise ValueError(f"require 0 < k < n, got n={self.n}, k={self.k}")
        if self.n > 256:
            raise ValueError("codes over GF(2^8) support at most n = 256")

    @property
    def num_parity(self) -> int:
        """Number of parity blocks per stripe, ``n - k``."""
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Redundancy factor ``n / k`` (e.g. 1.4 for (14, 10))."""
        return self.n / self.k

    @property
    def node_failures_tolerated(self) -> int:
        """Node failures survivable with one block per node: ``n - k``."""
        return self.n - self.k

    def rack_failures_tolerated(self, c: int) -> int:
        """Rack failures survivable with at most ``c`` stripe blocks per rack.

        Section III-B: a stripe tolerates ``floor((n - k) / c)`` rack
        failures.
        """
        if c <= 0:
            raise ValueError("c must be positive")
        return (self.n - self.k) // c

    def min_racks(self, c: int) -> int:
        """Minimum racks needed to place a stripe: ``ceil(n / c)``."""
        if c <= 0:
            raise ValueError("c must be positive")
        return -(-self.n // c)

    def __str__(self) -> str:
        return f"({self.n},{self.k})"


class ErasureCodec:
    """A systematic (n, k) erasure codec operating on lists of byte blocks.

    Subclasses supply the parity matrix; this base class handles padding,
    shard stacking, and the encode/decode/repair workflows.

    Args:
        params: The ``(n, k)`` code parameters.
    """

    #: Human-readable scheme name, overridden by subclasses.
    scheme = "abstract"

    def __init__(self, params: CodeParams) -> None:
        self.params = params
        self._generator = self._build_generator(params.n, params.k)
        # LRU of decode matrices keyed by the surviving-shard pattern: a
        # burst of repairs after a node/rack failure hits the same pattern
        # for every affected stripe and inverts the k x k system once.
        self._decode_cache: "OrderedDict[Tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )

    # -- hooks ----------------------------------------------------------
    def _build_generator(self, n: int, k: int) -> np.ndarray:
        raise NotImplementedError

    # -- caching --------------------------------------------------------
    def _decode_matrix(self, chosen: Tuple[int, ...]) -> np.ndarray:
        """The (cached) inverse of the chosen survivors' generator rows."""
        cached = self._decode_cache.get(chosen)
        if cached is not None:
            self._decode_cache.move_to_end(chosen)
            PERF.bump("codec.decode_matrix_hits")
            return cached
        PERF.bump("codec.decode_matrix_misses")
        from repro.erasure import matrix as gfm

        matrix = gfm.invert(self._generator[list(chosen), :])
        matrix.setflags(write=False)
        self._decode_cache[chosen] = matrix
        if len(self._decode_cache) > DECODE_CACHE_SIZE:
            self._decode_cache.popitem(last=False)
        return matrix

    # -- public API -----------------------------------------------------
    def encode(self, data_blocks: Sequence[bytes]) -> List[bytes]:
        """Compute the stripe's parity blocks.

        Args:
            data_blocks: Exactly ``k`` byte strings.  Shorter blocks are
                zero-padded to the longest block's length, mirroring
                HDFS-RAID's treatment of a file's final partial block.

        Returns:
            ``n - k`` parity blocks, each as long as the longest data block.
        """
        shards = self._stack(data_blocks, expected=self.params.k)
        parity_rows = self._generator[self.params.k :, :]
        parity = self._apply(parity_rows, shards)
        return [row.tobytes() for row in parity]

    def decode(
        self, available: Dict[int, bytes], original_lengths: Optional[Sequence[int]] = None
    ) -> List[bytes]:
        """Reconstruct all ``k`` data blocks from any ``k`` surviving blocks.

        Args:
            available: Mapping stripe-index -> block bytes; must contain at
                least ``k`` entries.  Indices ``< k`` are data blocks.
            original_lengths: Optional true lengths of the data blocks so the
                zero padding can be stripped.

        Returns:
            The ``k`` data blocks in stripe order.
        """
        if len(available) < self.params.k:
            raise ValueError(
                f"need at least k={self.params.k} blocks, got {len(available)}"
            )
        chosen = sorted(available)[: self.params.k]
        shards = self._stack([available[i] for i in chosen], expected=self.params.k)
        data = self._apply(self._decode_matrix(tuple(chosen)), shards)
        blocks = [row.tobytes() for row in data]
        if original_lengths is not None:
            if len(original_lengths) != self.params.k:
                raise ValueError("original_lengths must have k entries")
            blocks = [b[:length] for b, length in zip(blocks, original_lengths)]
        return blocks

    def reconstruct(self, target_index: int, available: Dict[int, bytes]) -> bytes:
        """Repair one lost block (data or parity) from any ``k`` survivors."""
        if not 0 <= target_index < self.params.n:
            raise ValueError(f"target index {target_index} outside stripe")
        data = self.decode(available)
        if target_index < self.params.k:
            return data[target_index]
        shards = self._stack(data, expected=self.params.k)
        row = self._generator[target_index : target_index + 1, :]
        return self._apply(row, shards)[0].tobytes()

    def verify(self, blocks: Dict[int, bytes]) -> bool:
        """Check that a full stripe is internally consistent.

        Args:
            blocks: All ``n`` blocks of a stripe, keyed by stripe index.

        Returns:
            True iff re-encoding the data blocks reproduces every parity
            block (the RaidNode's periodic corruption check).
        """
        if sorted(blocks) != list(range(self.params.n)):
            raise ValueError("verify requires all n blocks of the stripe")
        expected = self.encode([blocks[i] for i in range(self.params.k)])
        length = max(len(b) for b in blocks.values())
        for offset, parity in enumerate(expected):
            actual = blocks[self.params.k + offset]
            if actual.ljust(length, b"\0") != parity:
                return False
        return True

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _stack(blocks: Sequence[bytes], expected: int) -> np.ndarray:
        if len(blocks) != expected:
            raise ValueError(f"expected {expected} blocks, got {len(blocks)}")
        if any(len(b) == 0 for b in blocks):
            raise ValueError("blocks must be non-empty")
        length = max(len(b) for b in blocks)
        out = np.zeros((expected, length), dtype=np.uint8)
        for i, b in enumerate(blocks):
            out[i, : len(b)] = np.frombuffer(bytes(b), dtype=np.uint8)
        return out

    @staticmethod
    def _apply(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
        from repro.erasure import matrix as gfm

        return gfm.apply_to_shards(coeffs, shards)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.params})"


class ReedSolomonCodec(ErasureCodec):
    """Systematic Vandermonde Reed-Solomon codec (HDFS-RAID's default)."""

    scheme = "reed-solomon"

    def _build_generator(self, n: int, k: int) -> np.ndarray:
        return reed_solomon.generator_matrix(n, k)


class CauchyRSCodec(ErasureCodec):
    """Systematic Cauchy Reed-Solomon codec."""

    scheme = "cauchy-rs"

    def _build_generator(self, n: int, k: int) -> np.ndarray:
        return cauchy.generator_matrix(n, k)


_SCHEMES = {
    ReedSolomonCodec.scheme: ReedSolomonCodec,
    CauchyRSCodec.scheme: CauchyRSCodec,
    "rs": ReedSolomonCodec,
    "cauchy": CauchyRSCodec,
}


def make_codec(n: int, k: int, scheme: str = "reed-solomon") -> ErasureCodec:
    """Factory for codecs by scheme name.

    Args:
        n: Total blocks per stripe.
        k: Data blocks per stripe.
        scheme: ``"reed-solomon"``/``"rs"`` or ``"cauchy-rs"``/``"cauchy"``.
    """
    try:
        cls = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    return cls(CodeParams(n, k))
