"""High-level erasure codec interface used by the rest of the library.

``CodeParams`` captures the ``(n, k)`` parameters that appear everywhere in
the paper; ``ErasureCodec`` wraps the matrix machinery behind an API phrased
in terms of stripes of byte blocks, padding uneven inputs the way HDFS-RAID
zero-pads the tail of a file.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.erasure import cauchy, reed_solomon
from repro.sim.metrics import PERF

#: Decode matrices retained per codec instance, keyed by erasure pattern.
DECODE_CACHE_SIZE = 128

#: Wire layout of :class:`StreamTrailer`: magic, version, true byte length,
#: chunk size (little-endian, fixed 21 bytes).
_TRAILER_STRUCT = struct.Struct("<4sBQQ")

#: Magic bytes identifying a packed stream trailer.
TRAILER_MAGIC = b"RPST"

#: Trailer wire-format version.
TRAILER_VERSION = 1


def zero_pad(chunk: bytes, size: int) -> bytes:
    """Zero-pad ``chunk`` up to exactly ``size`` bytes.

    The streaming chunk contract: every *stored* chunk of an encoded stream
    is exactly ``chunk_size`` bytes, with the short final chunk of the
    source zero-filled on the right (the same convention HDFS-RAID uses for
    a file's partial tail block).  The true length travels separately in the
    :class:`StreamTrailer`, so padding is always recoverable.

    Raises:
        ValueError: If ``chunk`` is already longer than ``size``.
    """
    if len(chunk) > size:
        raise ValueError(f"chunk of {len(chunk)} bytes exceeds size {size}")
    if len(chunk) == size:
        return bytes(chunk)
    return bytes(chunk) + b"\0" * (size - len(chunk))


@dataclass(frozen=True)
class StreamTrailer:
    """The length/chunking contract of a streamed payload.

    Zero padding makes every stored chunk the same size, which is what lets
    the decode path treat all stripes uniformly — but it destroys the true
    payload length.  The trailer records that length (plus the chunk size
    used) explicitly, so ``strip`` can always undo the padding.  Two edge
    cases the per-stripe API never exercised are now well-defined:

    * **empty source** — ``length == 0``: zero chunks, zero stripes, and
      decoding yields ``b""``;
    * **exactly one chunk** — ``length == chunk_size``: one full chunk and
      *no* padding bytes (padding is never a full extra chunk).

    Attributes:
        length: True payload length in bytes (before any zero padding).
        chunk_size: Fixed chunk size the payload was split into.
    """

    length: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )

    @property
    def num_chunks(self) -> int:
        """Chunks the payload occupies: ``ceil(length / chunk_size)``."""
        return -(-self.length // self.chunk_size)

    @property
    def padding(self) -> int:
        """Zero bytes appended to fill the final chunk (0 when aligned)."""
        return self.num_chunks * self.chunk_size - self.length

    def num_stripes(self, k: int) -> int:
        """Stripes of ``k`` data chunks the payload spans."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return -(-self.num_chunks // k)

    def padded_length(self, k: int) -> int:
        """Total stored data bytes after stripe-alignment zero padding."""
        return self.num_stripes(k) * k * self.chunk_size

    def strip(self, padded: bytes) -> bytes:
        """Undo the zero padding: the first ``length`` bytes of ``padded``.

        Raises:
            ValueError: If ``padded`` is shorter than the recorded length.
        """
        if len(padded) < self.length:
            raise ValueError(
                f"padded payload of {len(padded)} bytes shorter than "
                f"recorded length {self.length}"
            )
        return padded[: self.length]

    def pack(self) -> bytes:
        """Serialise to the fixed 21-byte wire form."""
        return _TRAILER_STRUCT.pack(
            TRAILER_MAGIC, TRAILER_VERSION, self.length, self.chunk_size
        )

    @classmethod
    def unpack(cls, data: bytes) -> "StreamTrailer":
        """Parse a packed trailer.

        Raises:
            ValueError: On wrong size, magic, or version.
        """
        if len(data) != _TRAILER_STRUCT.size:
            raise ValueError(
                f"trailer must be {_TRAILER_STRUCT.size} bytes, got {len(data)}"
            )
        magic, version, length, chunk_size = _TRAILER_STRUCT.unpack(data)
        if magic != TRAILER_MAGIC:
            raise ValueError(f"bad trailer magic {magic!r}")
        if version != TRAILER_VERSION:
            raise ValueError(f"unsupported trailer version {version}")
        return cls(length=length, chunk_size=chunk_size)


@dataclass(frozen=True)
class CodeParams:
    """Parameters of an ``(n, k)`` systematic erasure code.

    Attributes:
        n: Total blocks per stripe (data + parity).
        k: Data blocks per stripe; any ``k`` of the ``n`` blocks reconstruct
            the stripe.
    """

    n: int
    k: int

    def __post_init__(self) -> None:
        if not 0 < self.k < self.n:
            raise ValueError(f"require 0 < k < n, got n={self.n}, k={self.k}")
        if self.n > 256:
            raise ValueError("codes over GF(2^8) support at most n = 256")

    @property
    def num_parity(self) -> int:
        """Number of parity blocks per stripe, ``n - k``."""
        return self.n - self.k

    @property
    def storage_overhead(self) -> float:
        """Redundancy factor ``n / k`` (e.g. 1.4 for (14, 10))."""
        return self.n / self.k

    @property
    def node_failures_tolerated(self) -> int:
        """Node failures survivable with one block per node: ``n - k``."""
        return self.n - self.k

    def rack_failures_tolerated(self, c: int) -> int:
        """Rack failures survivable with at most ``c`` stripe blocks per rack.

        Section III-B: a stripe tolerates ``floor((n - k) / c)`` rack
        failures.
        """
        if c <= 0:
            raise ValueError("c must be positive")
        return (self.n - self.k) // c

    def min_racks(self, c: int) -> int:
        """Minimum racks needed to place a stripe: ``ceil(n / c)``."""
        if c <= 0:
            raise ValueError("c must be positive")
        return -(-self.n // c)

    def __str__(self) -> str:
        return f"({self.n},{self.k})"


class ErasureCodec:
    """A systematic (n, k) erasure codec operating on lists of byte blocks.

    Subclasses supply the parity matrix; this base class handles padding,
    shard stacking, and the encode/decode/repair workflows.

    Args:
        params: The ``(n, k)`` code parameters.
    """

    #: Human-readable scheme name, overridden by subclasses.
    scheme = "abstract"

    def __init__(self, params: CodeParams) -> None:
        self.params = params
        self._generator = self._build_generator(params.n, params.k)
        # LRU of decode matrices keyed by the surviving-shard pattern: a
        # burst of repairs after a node/rack failure hits the same pattern
        # for every affected stripe and inverts the k x k system once.
        self._decode_cache: "OrderedDict[Tuple[int, ...], np.ndarray]" = (
            OrderedDict()
        )

    # -- hooks ----------------------------------------------------------
    def _build_generator(self, n: int, k: int) -> np.ndarray:
        raise NotImplementedError

    # -- caching --------------------------------------------------------
    def _decode_matrix(self, chosen: Tuple[int, ...]) -> np.ndarray:
        """The (cached) inverse of the chosen survivors' generator rows."""
        cached = self._decode_cache.get(chosen)
        if cached is not None:
            self._decode_cache.move_to_end(chosen)
            PERF.bump("codec.decode_matrix_hits")
            return cached
        PERF.bump("codec.decode_matrix_misses")
        from repro.erasure import matrix as gfm

        matrix = gfm.invert(self._generator[list(chosen), :])
        matrix.setflags(write=False)
        self._decode_cache[chosen] = matrix
        if len(self._decode_cache) > DECODE_CACHE_SIZE:
            self._decode_cache.popitem(last=False)
        return matrix

    # -- public API -----------------------------------------------------
    def encode(
        self, data_blocks: Sequence[bytes], length: Optional[int] = None
    ) -> List[bytes]:
        """Compute the stripe's parity blocks.

        Args:
            data_blocks: Exactly ``k`` byte strings.  Shorter blocks are
                zero-padded to the longest block's length, mirroring
                HDFS-RAID's treatment of a file's final partial block.
            length: Explicit padded block length.  When given, every block
                is zero-padded to exactly ``length`` bytes — the streaming
                chunk contract — and empty blocks (a stripe's virtual
                all-zero tail chunks) are legal.  ``length=0`` encodes the
                empty source to ``n - k`` empty parities.  Without it the
                legacy behaviour applies: pad to the longest block, which
                must be non-empty.

        Returns:
            ``n - k`` parity blocks, each ``length`` bytes (or as long as
            the longest data block when ``length`` is omitted).
        """
        shards = self._stack(data_blocks, expected=self.params.k, length=length)
        parity_rows = self._generator[self.params.k :, :]
        parity = self._apply(parity_rows, shards)
        return [row.tobytes() for row in parity]

    def decode(
        self, available: Dict[int, bytes], original_lengths: Optional[Sequence[int]] = None
    ) -> List[bytes]:
        """Reconstruct all ``k`` data blocks from any ``k`` surviving blocks.

        Args:
            available: Mapping stripe-index -> block bytes; must contain at
                least ``k`` entries.  Indices ``< k`` are data blocks.
            original_lengths: Optional true lengths of the data blocks so the
                zero padding can be stripped.

        Returns:
            The ``k`` data blocks in stripe order.
        """
        if len(available) < self.params.k:
            raise ValueError(
                f"need at least k={self.params.k} blocks, got {len(available)}"
            )
        chosen = sorted(available)[: self.params.k]
        shards = self._stack([available[i] for i in chosen], expected=self.params.k)
        data = self._apply(self._decode_matrix(tuple(chosen)), shards)
        blocks = [row.tobytes() for row in data]
        if original_lengths is not None:
            if len(original_lengths) != self.params.k:
                raise ValueError("original_lengths must have k entries")
            blocks = [b[:length] for b, length in zip(blocks, original_lengths)]
        return blocks

    def reconstruct(self, target_index: int, available: Dict[int, bytes]) -> bytes:
        """Repair one lost block (data or parity) from any ``k`` survivors."""
        if not 0 <= target_index < self.params.n:
            raise ValueError(f"target index {target_index} outside stripe")
        data = self.decode(available)
        if target_index < self.params.k:
            return data[target_index]
        shards = self._stack(data, expected=self.params.k)
        row = self._generator[target_index : target_index + 1, :]
        return self._apply(row, shards)[0].tobytes()

    def verify(self, blocks: Dict[int, bytes]) -> bool:
        """Check that a full stripe is internally consistent.

        Args:
            blocks: All ``n`` blocks of a stripe, keyed by stripe index.

        Returns:
            True iff re-encoding the data blocks reproduces every parity
            block (the RaidNode's periodic corruption check).
        """
        if sorted(blocks) != list(range(self.params.n)):
            raise ValueError("verify requires all n blocks of the stripe")
        expected = self.encode([blocks[i] for i in range(self.params.k)])
        length = max(len(b) for b in blocks.values())
        for offset, parity in enumerate(expected):
            actual = blocks[self.params.k + offset]
            if actual.ljust(length, b"\0") != parity:
                return False
        return True

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _stack(
        blocks: Sequence[bytes], expected: int, length: Optional[int] = None
    ) -> np.ndarray:
        if len(blocks) != expected:
            raise ValueError(f"expected {expected} blocks, got {len(blocks)}")
        if length is None:
            # Legacy contract: pad to the longest block, all non-empty.
            if any(len(b) == 0 for b in blocks):
                raise ValueError("blocks must be non-empty")
            length = max(len(b) for b in blocks)
        else:
            # Streaming contract: explicit padded length, empty blocks legal
            # (they are a stripe's virtual all-zero tail chunks).
            if length < 0:
                raise ValueError(f"length must be non-negative, got {length}")
            oversize = next((b for b in blocks if len(b) > length), None)
            if oversize is not None:
                raise ValueError(
                    f"block of {len(oversize)} bytes exceeds padded "
                    f"length {length}"
                )
        out = np.zeros((expected, length), dtype=np.uint8)
        for i, b in enumerate(blocks):
            out[i, : len(b)] = np.frombuffer(bytes(b), dtype=np.uint8)
        return out

    @staticmethod
    def _apply(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
        from repro.erasure import matrix as gfm

        return gfm.apply_to_shards(coeffs, shards)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(params={self.params})"


class ReedSolomonCodec(ErasureCodec):
    """Systematic Vandermonde Reed-Solomon codec (HDFS-RAID's default)."""

    scheme = "reed-solomon"

    def _build_generator(self, n: int, k: int) -> np.ndarray:
        return reed_solomon.generator_matrix(n, k)


class CauchyRSCodec(ErasureCodec):
    """Systematic Cauchy Reed-Solomon codec."""

    scheme = "cauchy-rs"

    def _build_generator(self, n: int, k: int) -> np.ndarray:
        return cauchy.generator_matrix(n, k)


_SCHEMES = {
    ReedSolomonCodec.scheme: ReedSolomonCodec,
    CauchyRSCodec.scheme: CauchyRSCodec,
    "rs": ReedSolomonCodec,
    "cauchy": CauchyRSCodec,
}


def make_codec(n: int, k: int, scheme: str = "reed-solomon") -> ErasureCodec:
    """Factory for codecs by scheme name.

    Args:
        n: Total blocks per stripe.
        k: Data blocks per stripe.
        scheme: ``"reed-solomon"``/``"rs"`` or ``"cauchy-rs"``/``"cauchy"``.
    """
    try:
        cls = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from {sorted(_SCHEMES)}"
        ) from None
    return cls(CodeParams(n, k))
