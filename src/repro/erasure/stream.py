"""Chunked streaming erasure data plane.

The per-stripe :class:`~repro.erasure.codec.ErasureCodec` API materialises
whole blocks in memory; this module streams instead.  A byte source of any
length is cut into fixed-size chunks by :class:`ChunkReader` (the
``FileEncoder``/``ChunkReader`` idiom of real chunk-server file systems),
round-robined across the ``k`` data shards, and parity is accumulated one
chunk at a time into preallocated buffers — a fused multiply-XOR per chunk,
no per-coefficient temporaries and no ``(k, L)`` stripe matrix.

Two interchangeable inner-loop backends exist, selected by the
``REPRO_GF_BACKEND`` environment variable (or an explicit ``backend=``
argument):

* ``numpy`` (default) — one 256x256-table gather plus one in-place XOR per
  chunk (:func:`repro.erasure.matrix.accumulate_products`).
* ``scalar`` — a pure-Python ``bytearray`` loop indexing
  :meth:`GF256.mul_row`; orders of magnitude slower, retained as the
  byte-identity oracle the differential tests pin the numpy path against.

The streaming chunk contract (see :class:`~repro.erasure.codec.StreamTrailer`):
every stored chunk is exactly ``chunk_size`` bytes, the short final source
chunk is zero-padded, a stripe's missing tail chunks are virtual all-zero
chunks, and the true payload length travels in the stream metadata so decode
can strip the padding — including the empty-source (zero stripes) and
exactly-one-chunk (no padding) edge cases.

Large payloads shard across processes at stripe boundaries through the
PR5 :class:`~repro.parallel.executor.SweepExecutor`
(:func:`sharded_stream_encode`); stripes are independent, so the sharded
result is byte-identical to the sequential one and op attribution stays
hermetic (the executor resets the GF memo caches per trial).

:class:`StreamingDataPlane` carries real bytes through the simulated
cluster's archival path: the :class:`~repro.hdfs.encoder.StripeEncoder`
feeds it block streams and commits the resulting parity payloads against
the block ids minted by ``NameNode.record_encoding``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.erasure import matrix as gfm
from repro.erasure.codec import (
    CodeParams,
    ErasureCodec,
    StreamTrailer,
    make_codec,
    zero_pad,
)
from repro.erasure.galois import GF256
from repro.erasure.lrc import LocalReconstructionCodec, LRCParams
from repro.sim.metrics import PERF

#: Environment variable choosing the GF inner-loop backend.
BACKEND_ENV = "REPRO_GF_BACKEND"

#: Recognised backend names.
BACKENDS = ("numpy", "scalar")

#: Default streaming chunk size (64 KiB — the HDFS checksum-chunk scale).
DEFAULT_CHUNK_SIZE = 1 << 16

#: Schemes the streaming plane accepts (canonical names).
STREAM_SCHEMES = ("reed-solomon", "cauchy-rs", "lrc")

ByteSource = Union[bytes, bytearray, memoryview, Iterable[bytes], Any]


def resolve_backend(backend: Optional[str] = None) -> str:
    """The effective GF backend: explicit argument, else ``REPRO_GF_BACKEND``.

    Raises:
        ValueError: On an unrecognised backend name (argument or env var).
    """
    chosen = backend if backend is not None else os.environ.get(BACKEND_ENV, "")
    if not chosen:
        chosen = "numpy"
    if chosen not in BACKENDS:
        raise ValueError(
            f"unknown GF backend {chosen!r}; choose from {list(BACKENDS)}"
        )
    return chosen


class ChunkReader:
    """Fixed-size chunk iterator over an arbitrary-length byte source.

    Accepts ``bytes``/``bytearray``/``memoryview`` (sliced zero-copy as
    read-only memoryviews), binary file-like objects (``.read(size)``), or
    any iterable of byte pieces (re-chunked through an internal buffer).
    Every yielded chunk is exactly ``chunk_size`` bytes except the final
    one, which may be short; an empty source yields nothing.

    The reader never opens or closes anything — callers own their file
    handles.
    """

    def __init__(self, source: ByteSource, chunk_size: int) -> None:
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        self._source = source

    def __iter__(self) -> Iterator[memoryview]:
        size = self.chunk_size
        source = self._source
        if isinstance(source, (bytes, bytearray, memoryview)):
            view = memoryview(source)
            if view.ndim != 1 or view.itemsize != 1:
                view = view.cast("B")
            view = view.toreadonly()
            for start in range(0, len(view), size):
                yield view[start : start + size]
            return
        yield from self._rechunk(self._pieces(source), size)

    @staticmethod
    def _pieces(source: ByteSource) -> Iterator[bytes]:
        read = getattr(source, "read", None)
        if read is not None and callable(read):
            while True:
                piece = read(1 << 20)
                if not piece:
                    return
                yield piece
            return
        for piece in source:
            if piece:
                yield bytes(piece)

    @staticmethod
    def _rechunk(pieces: Iterator[bytes], size: int) -> Iterator[memoryview]:
        buffer = bytearray()
        for piece in pieces:
            if not buffer and len(piece) >= size:
                view = memoryview(piece).toreadonly()
                full = (len(piece) // size) * size
                for start in range(0, full, size):
                    yield view[start : start + size]
                buffer.extend(view[full:])
                continue
            buffer.extend(piece)
            while len(buffer) >= size:
                yield memoryview(bytes(buffer[:size]))
                del buffer[:size]
        if buffer:
            yield memoryview(bytes(buffer))


@dataclass(frozen=True)
class StreamMeta:
    """Self-describing metadata of an encoded stream.

    Attributes:
        scheme: Canonical scheme name (``"reed-solomon"``, ``"cauchy-rs"``
            or ``"lrc"``).
        n: Total shards per stripe.
        k: Data shards per stripe.
        chunk_size: Fixed stored-chunk size in bytes.
        length: True payload length in bytes (the trailer value).
        lrc: ``(k, local_groups, global_parities)`` when ``scheme`` is
            ``"lrc"``, else ``None``.
    """

    scheme: str
    n: int
    k: int
    chunk_size: int
    length: int
    lrc: Optional[Tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        if self.scheme not in STREAM_SCHEMES:
            raise ValueError(
                f"unknown scheme {self.scheme!r}; choose from "
                f"{list(STREAM_SCHEMES)}"
            )
        if not 0 < self.k < self.n:
            raise ValueError(f"require 0 < k < n, got n={self.n}, k={self.k}")
        if self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if self.length < 0:
            raise ValueError(f"length must be non-negative, got {self.length}")
        if self.scheme == "lrc":
            if self.lrc is None:
                raise ValueError("scheme 'lrc' requires the lrc parameters")
            params = LRCParams(*self.lrc)
            if (params.n, params.k) != (self.n, self.k):
                raise ValueError(
                    f"lrc parameters {self.lrc} imply (n, k) = "
                    f"({params.n}, {params.k}), got ({self.n}, {self.k})"
                )
        elif self.lrc is not None:
            raise ValueError("lrc parameters are only valid with scheme='lrc'")

    @property
    def trailer(self) -> StreamTrailer:
        """The padding/length contract of this stream."""
        return StreamTrailer(length=self.length, chunk_size=self.chunk_size)

    @property
    def num_parity(self) -> int:
        """Parity shards per stripe."""
        return self.n - self.k

    @property
    def num_stripes(self) -> int:
        """Stripes the payload spans (0 for an empty source)."""
        return self.trailer.num_stripes(self.k)

    @property
    def shard_bytes(self) -> int:
        """Stored bytes per shard: ``num_stripes * chunk_size``."""
        return self.num_stripes * self.chunk_size

    def codec(self) -> Union[ErasureCodec, LocalReconstructionCodec]:
        """A fresh codec instance matching this stream's parameters."""
        if self.scheme == "lrc":
            assert self.lrc is not None
            return LocalReconstructionCodec(LRCParams(*self.lrc))
        return make_codec(self.n, self.k, self.scheme)


@dataclass(frozen=True)
class EncodedStream:
    """A fully encoded stream: ``n`` shards of ``num_stripes`` chunks each.

    Data layout is striped: source chunk ``c`` lives at shard ``c % k``,
    stripe ``c // k`` — so shard ``i`` holds chunks ``i, k+i, 2k+i, ...``.
    Every stored chunk is exactly ``meta.chunk_size`` bytes (tail chunks
    zero-padded per the trailer contract).
    """

    meta: StreamMeta
    shards: Tuple[Tuple[bytes, ...], ...]

    def __post_init__(self) -> None:
        if len(self.shards) != self.meta.n:
            raise ValueError(
                f"expected {self.meta.n} shards, got {len(self.shards)}"
            )
        stripes = self.meta.num_stripes
        for index, chunks in enumerate(self.shards):
            if len(chunks) != stripes:
                raise ValueError(
                    f"shard {index} holds {len(chunks)} chunks, "
                    f"expected {stripes}"
                )
            bad = next(
                (c for c in chunks if len(c) != self.meta.chunk_size), None
            )
            if bad is not None:
                raise ValueError(
                    f"shard {index} violates the chunk contract: chunk of "
                    f"{len(bad)} bytes, expected {self.meta.chunk_size}"
                )

    def shard(self, index: int) -> bytes:
        """One shard's chunks joined into a single byte string."""
        return b"".join(self.shards[index])

    def available(
        self, exclude: Sequence[int] = ()
    ) -> Dict[int, Tuple[bytes, ...]]:
        """Survivor view of the shards, omitting ``exclude`` — the shape
        :func:`stream_decode`/:func:`stream_repair` consume."""
        lost = set(exclude)
        return {
            i: chunks
            for i, chunks in enumerate(self.shards)
            if i not in lost
        }

    def payload(self) -> bytes:
        """The original source bytes (padding stripped via the trailer)."""
        meta = self.meta
        parts: List[bytes] = []
        for stripe in range(meta.num_stripes):
            for i in range(meta.k):
                parts.append(self.shards[i][stripe])
        return meta.trailer.strip(b"".join(parts))


# ---------------------------------------------------------------------------
# Backend inner loops
# ---------------------------------------------------------------------------


def _scalar_addmul(
    acc: bytearray, offset: int, coeff: int, chunk: memoryview
) -> None:
    """Pure-Python ``acc[offset:] ^= coeff * chunk`` — the oracle inner loop."""
    if coeff == 0:
        return
    PERF.bump("gf.kernel_calls")
    PERF.bump("gf.symbol_mults", len(chunk))
    position = offset
    if coeff == 1:
        for value in chunk:
            acc[position] ^= value
            position += 1
        return
    row = GF256.mul_row(coeff)
    for value in chunk:
        acc[position] ^= row[value]
        position += 1


class _Accumulator:
    """Preallocated output buffers accepting fused multiply-XOR of chunks.

    Given an ``(r, m)`` coefficient matrix, ``accumulate(column, chunk)``
    folds one input shard's chunk into all ``r`` output buffers:
    ``out[i, offset:offset+len] ^= coeffs[i, column] * chunk``.  The numpy
    backend does it with one table gather; the scalar backend walks the
    bytes in Python.  Both bump the same PERF counter names, and both are
    byte-identical to :func:`repro.erasure.matrix.apply_to_shards_scalar`
    applied to the full stripe.
    """

    def __init__(self, coeffs: np.ndarray, length: int, backend: str) -> None:
        coeffs = np.asarray(coeffs, dtype=np.uint8)
        if coeffs.ndim != 2:
            raise ValueError(f"coeffs must be 2-D, got shape {coeffs.shape}")
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self.backend = backend
        self.length = length
        self.rows_count, self.columns = coeffs.shape
        if backend == "numpy":
            self._coeffs = coeffs
            self._buffers = np.zeros((self.rows_count, length), dtype=np.uint8)
        else:
            self._coeff_rows = [[int(c) for c in row] for row in coeffs]
            self._scalar_buffers = [
                bytearray(length) for _ in range(self.rows_count)
            ]

    def accumulate(
        self, column: int, chunk: memoryview, offset: int = 0
    ) -> None:
        if not 0 <= column < self.columns:
            raise ValueError(f"column {column} outside [0, {self.columns})")
        if offset + len(chunk) > self.length:
            raise ValueError(
                f"chunk of {len(chunk)} bytes at offset {offset} overruns "
                f"buffer of {self.length}"
            )
        if len(chunk) == 0:
            return
        if self.backend == "numpy":
            data = np.frombuffer(chunk, dtype=np.uint8)
            window = self._buffers[:, offset : offset + data.size]
            gfm.accumulate_products(window, self._coeffs[:, column], data)
            return
        for i in range(self.rows_count):
            _scalar_addmul(
                self._scalar_buffers[i], offset, self._coeff_rows[i][column],
                chunk,
            )

    def rows(self) -> List[bytes]:
        """The accumulated output buffers as immutable byte strings."""
        if self.backend == "numpy":
            return [row.tobytes() for row in self._buffers]
        return [bytes(buffer) for buffer in self._scalar_buffers]


# ---------------------------------------------------------------------------
# Code resolution
# ---------------------------------------------------------------------------


def _resolve_code(
    scheme: str,
    n: Optional[int],
    k: Optional[int],
    lrc: Optional[Sequence[int]],
) -> Tuple[Any, str, int, int, Optional[Tuple[int, int, int]]]:
    """Normalise (scheme, n, k, lrc) and build the matching codec."""
    if scheme == "lrc":
        if lrc is None:
            raise ValueError("scheme 'lrc' requires lrc=(k, local, global)")
        params = LRCParams(*lrc)
        if n not in (None, params.n) or k not in (None, params.k):
            raise ValueError(
                f"lrc parameters {tuple(lrc)} imply (n, k) = "
                f"({params.n}, {params.k}); drop the explicit n/k"
            )
        codec = LocalReconstructionCodec(params)
        return codec, "lrc", params.n, params.k, (
            params.k, params.local_groups, params.global_parities
        )
    if lrc is not None:
        raise ValueError("lrc parameters are only valid with scheme='lrc'")
    if n is None or k is None:
        raise ValueError(f"scheme {scheme!r} requires explicit n and k")
    codec = make_codec(n, k, scheme)
    return codec, codec.scheme, n, k, None


def _decode_plan(
    codec: Any, indices: Sequence[int]
) -> Tuple[Tuple[int, ...], np.ndarray]:
    """Choose survivor rows and build the decode matrix (computed once per
    call, reused across every stripe of the stream)."""
    ordered = tuple(sorted(indices))
    k = codec.params.k
    if len(ordered) < k:
        raise ValueError(f"need at least k={k} shards, got {len(ordered)}")
    if isinstance(codec, LocalReconstructionCodec):
        subset = codec._invertible_subset_cached(ordered)
        if subset is None:
            raise ValueError(
                "failure pattern is unrecoverable for this LRC "
                f"(survivors: {list(ordered)})"
            )
        return subset, codec._decode_matrix(subset)
    chosen = ordered[:k]
    return chosen, codec._decode_matrix(chosen)


def _repair_plan(
    codec: Any, target: int, indices: Sequence[int]
) -> Tuple[Tuple[int, ...], np.ndarray]:
    """Survivor shards and the ``(1, len(survivors))`` coefficient row that
    rebuilds shard ``target`` — the LRC local-XOR path when available."""
    if not 0 <= target < codec.params.n:
        raise ValueError(f"target index {target} outside the stripe")
    if isinstance(codec, LocalReconstructionCodec):
        local = codec._local_repair_set(target)
        if local is not None and all(i in indices for i in local):
            coeffs = np.ones((1, len(local)), dtype=np.uint8)
            return tuple(local), coeffs
    subset, decode_matrix = _decode_plan(codec, indices)
    generator_row = codec._generator[target : target + 1, :]
    return subset, gfm.matmul(generator_row, decode_matrix)


# ---------------------------------------------------------------------------
# Streaming encode / decode / repair (file view)
# ---------------------------------------------------------------------------


def stream_encode(
    source: ByteSource,
    *,
    scheme: str = "reed-solomon",
    n: Optional[int] = None,
    k: Optional[int] = None,
    lrc: Optional[Sequence[int]] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: Optional[str] = None,
) -> EncodedStream:
    """Encode a byte source of any length into an :class:`EncodedStream`.

    Chunks are striped round-robin across the ``k`` data shards; parity for
    each stripe is accumulated chunk-at-a-time into preallocated buffers,
    so no ``(k, chunk)`` stripe matrix is ever materialised.  Virtual
    all-zero tail chunks complete the final stripe and contribute nothing
    to the accumulation (zero annihilates), which keeps the streamed parity
    byte-identical to whole-stripe encoding of the zero-padded source.
    """
    codec, scheme, n, k, lrc_tuple = _resolve_code(scheme, n, k, lrc)
    chosen_backend = resolve_backend(backend)
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    parity_coeffs = codec._generator[k:, :]
    zero_chunk = b"\0" * chunk_size

    data_shards: List[List[bytes]] = [[] for _ in range(k)]
    parity_shards: List[List[bytes]] = [[] for _ in range(n - k)]
    stripe_data: List[bytes] = []
    accumulator: Optional[_Accumulator] = None
    length = 0

    def flush_stripe() -> None:
        nonlocal accumulator
        assert accumulator is not None
        while len(stripe_data) < k:  # virtual zero tail chunks
            stripe_data.append(zero_chunk)
        for i in range(k):
            data_shards[i].append(stripe_data[i])
        for j, row in enumerate(accumulator.rows()):
            parity_shards[j].append(row)
        PERF.bump("stream.stripes_encoded")
        stripe_data.clear()
        accumulator = None

    for chunk in ChunkReader(source, chunk_size):
        length += len(chunk)
        PERF.bump("stream.chunks_in")
        PERF.bump("stream.bytes_in", len(chunk))
        if accumulator is None:
            accumulator = _Accumulator(
                parity_coeffs, chunk_size, chosen_backend
            )
        # A short final chunk is accumulated as-is: the untouched buffer
        # tail already equals the zero-padded contribution.
        accumulator.accumulate(len(stripe_data), chunk)
        stripe_data.append(
            bytes(chunk) if len(chunk) == chunk_size
            else zero_pad(bytes(chunk), chunk_size)
        )
        if len(stripe_data) == k:
            flush_stripe()
    if stripe_data:
        flush_stripe()

    meta = StreamMeta(
        scheme=scheme, n=n, k=k, chunk_size=chunk_size, length=length,
        lrc=lrc_tuple,
    )
    shards = tuple(tuple(chunks) for chunks in data_shards + parity_shards)
    return EncodedStream(meta=meta, shards=shards)


def _validate_shard_streams(
    shards: Mapping[int, Sequence[bytes]], meta: StreamMeta
) -> None:
    stripes = meta.num_stripes
    for index in sorted(shards):
        if not 0 <= index < meta.n:
            raise ValueError(f"shard index {index} outside [0, {meta.n})")
        chunks = shards[index]
        if len(chunks) != stripes:
            raise ValueError(
                f"shard {index} holds {len(chunks)} chunks, "
                f"expected {stripes}"
            )
        bad = next((c for c in chunks if len(c) != meta.chunk_size), None)
        if bad is not None:
            raise ValueError(
                f"shard {index} violates the chunk contract: chunk of "
                f"{len(bad)} bytes, expected {meta.chunk_size}"
            )


def stream_decode(
    shards: Mapping[int, Sequence[bytes]],
    meta: StreamMeta,
    *,
    backend: Optional[str] = None,
) -> bytes:
    """Reconstruct the original payload from any decodable survivor set.

    The decode matrix is inverted once per call and reused across every
    stripe; each stripe is then rebuilt chunk-at-a-time with the same fused
    accumulate kernel the encoder uses.  Returns the payload with the zero
    padding stripped per the trailer.
    """
    chosen_backend = resolve_backend(backend)
    _validate_shard_streams(shards, meta)
    if meta.num_stripes == 0:
        return b""
    codec = meta.codec()
    subset, decode_matrix = _decode_plan(codec, list(shards))
    out = bytearray(meta.trailer.padded_length(meta.k))
    stripe_bytes = meta.k * meta.chunk_size
    for stripe in range(meta.num_stripes):
        accumulator = _Accumulator(
            decode_matrix, meta.chunk_size, chosen_backend
        )
        for column, index in enumerate(subset):
            accumulator.accumulate(
                column, memoryview(shards[index][stripe])
            )
        base = stripe * stripe_bytes
        for i, row in enumerate(accumulator.rows()):
            start = base + i * meta.chunk_size
            out[start : start + meta.chunk_size] = row
        PERF.bump("stream.stripes_decoded")
    return meta.trailer.strip(bytes(out))


def stream_repair(
    target: int,
    shards: Mapping[int, Sequence[bytes]],
    meta: StreamMeta,
    *,
    backend: Optional[str] = None,
) -> Tuple[bytes, ...]:
    """Rebuild one lost shard's chunk stream from the survivors.

    The repair row (``generator[target] @ decode_matrix``, or the all-ones
    local-XOR row for an LRC local repair) is computed once and applied per
    stripe.  Returns ``num_stripes`` chunks of exactly ``chunk_size`` bytes
    — the shape :class:`EncodedStream` stores.
    """
    chosen_backend = resolve_backend(backend)
    _validate_shard_streams(shards, meta)
    codec = meta.codec()
    sources, coeffs = _repair_plan(codec, target, list(shards))
    rebuilt: List[bytes] = []
    for stripe in range(meta.num_stripes):
        accumulator = _Accumulator(coeffs, meta.chunk_size, chosen_backend)
        for column, index in enumerate(sources):
            accumulator.accumulate(
                column, memoryview(shards[index][stripe])
            )
        rebuilt.append(accumulator.rows()[0])
        PERF.bump("stream.chunks_repaired")
    return tuple(rebuilt)


# ---------------------------------------------------------------------------
# Streaming encode (cluster/block view)
# ---------------------------------------------------------------------------


def encode_blocks_streaming(
    sources: Sequence[ByteSource],
    codec: Union[ErasureCodec, LocalReconstructionCodec],
    *,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: Optional[str] = None,
    length: Optional[int] = None,
) -> List[bytes]:
    """Parity payloads for ``k`` block streams, one chunk at a time.

    The block-oriented twin of :func:`stream_encode`: each source is a whole
    data block (the archival encode path's unit), parity is accumulated into
    ``n - k`` preallocated ``length``-byte buffers, and blocks shorter than
    ``length`` implicitly contribute zeros — byte-identical to
    ``codec.encode(blocks, length=length)`` without ever stacking the
    ``(k, length)`` stripe matrix.

    Args:
        sources: Exactly ``k`` byte sources (blocks in stripe order).
        codec: The stripe's codec (RS/Cauchy/LRC).
        chunk_size: Read granularity.
        backend: GF backend override (defaults to ``REPRO_GF_BACKEND``).
        length: Padded block length.  Required when any source is unsized
            (file-like/iterable); defaults to the longest sized source.

    Returns:
        ``n - k`` parity payloads of exactly ``length`` bytes each.
    """
    k = codec.params.k
    if len(sources) != k:
        raise ValueError(f"expected {k} block sources, got {len(sources)}")
    chosen_backend = resolve_backend(backend)
    if length is None:
        sized = [s for s in sources if isinstance(s, (bytes, bytearray, memoryview))]
        if len(sized) != len(sources):
            raise ValueError(
                "length= is required when sources are not all sized "
                "bytes-like objects"
            )
        length = max((len(s) for s in sized), default=0)
    parity_coeffs = codec._generator[k:, :]
    accumulator = _Accumulator(parity_coeffs, length, chosen_backend)
    for column, source in enumerate(sources):
        offset = 0
        for chunk in ChunkReader(source, chunk_size):
            if offset + len(chunk) > length:
                raise ValueError(
                    f"block {column} longer than padded length {length}"
                )
            accumulator.accumulate(column, chunk, offset=offset)
            offset += len(chunk)
            PERF.bump("stream.chunks_in")
            PERF.bump("stream.bytes_in", len(chunk))
    PERF.bump("stream.stripes_encoded")
    return accumulator.rows()


# ---------------------------------------------------------------------------
# Multi-process stripe sharding
# ---------------------------------------------------------------------------


def _shard_parity_trial(
    seed: int,
    payload: bytes,
    scheme: str,
    n: Optional[int],
    k: Optional[int],
    lrc: Optional[Tuple[int, int, int]],
    chunk_size: int,
    backend: str,
) -> Tuple[Tuple[bytes, ...], ...]:
    """SweepExecutor worker: parity chunk streams for one stripe range.

    Stripes are independent, so encoding a stripe-aligned payload slice in
    a worker process yields exactly the parity chunks the sequential pass
    produces for those stripes.  The trial's identity (and cache key) is
    the payload slice plus code parameters; ``seed`` is unused.
    """
    del seed
    encoded = stream_encode(
        payload, scheme=scheme, n=n, k=k, lrc=lrc,
        chunk_size=chunk_size, backend=backend,
    )
    return tuple(encoded.shards[encoded.meta.k :])


def _data_shard_chunks(
    payload: bytes, meta: StreamMeta
) -> List[Tuple[bytes, ...]]:
    """The striped data-shard chunk streams of a payload (padding applied)."""
    view = memoryview(payload)
    shards: List[List[bytes]] = [[] for _ in range(meta.k)]
    for chunk_index in range(meta.num_stripes * meta.k):
        start = chunk_index * meta.chunk_size
        piece = bytes(view[start : start + meta.chunk_size])
        shards[chunk_index % meta.k].append(
            piece if len(piece) == meta.chunk_size
            else zero_pad(piece, meta.chunk_size)
        )
    return [tuple(chunks) for chunks in shards]


def sharded_stream_encode(
    source: ByteSource,
    *,
    scheme: str = "reed-solomon",
    n: Optional[int] = None,
    k: Optional[int] = None,
    lrc: Optional[Sequence[int]] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    backend: Optional[str] = None,
    executor: Optional[Any] = None,
    stripes_per_shard: int = 4,
    seed: int = 0,
) -> EncodedStream:
    """Encode a large payload with stripe ranges fanned out across processes.

    The payload is sliced at stripe boundaries (``k * chunk_size`` bytes);
    each slice becomes one :class:`~repro.parallel.spec.TrialSpec` running
    :func:`_shard_parity_trial` in a worker.  Because stripes are
    independent and the executor reassembles results in spec order, the
    result is byte-identical to :func:`stream_encode` for any worker count
    — ``REPRO_PARALLEL_CHECK=1`` (or ``SweepExecutor(check=True)``) asserts
    exactly that inline.  Data shards are striped locally; only the GF
    parity work is distributed.
    """
    from repro.parallel.executor import SweepExecutor
    from repro.parallel.spec import TrialSpec

    if stripes_per_shard <= 0:
        raise ValueError(
            f"stripes_per_shard must be positive, got {stripes_per_shard}"
        )
    payload = (
        bytes(source)
        if isinstance(source, (bytes, bytearray, memoryview))
        else b"".join(bytes(c) for c in ChunkReader(source, chunk_size))
    )
    _, scheme, n, k, lrc_tuple = _resolve_code(scheme, n, k, lrc)
    chosen_backend = resolve_backend(backend)
    meta = StreamMeta(
        scheme=scheme, n=n, k=k, chunk_size=chunk_size,
        length=len(payload), lrc=lrc_tuple,
    )
    if executor is None:
        executor = SweepExecutor(workers=0)
    total_stripes = meta.num_stripes
    if total_stripes == 0:
        return EncodedStream(
            meta=meta, shards=tuple(() for _ in range(n))
        )
    stripe_bytes = k * chunk_size
    specs = []
    for low in range(0, total_stripes, stripes_per_shard):
        high = min(low + stripes_per_shard, total_stripes)
        specs.append(
            TrialSpec(
                fn=_shard_parity_trial,
                config={
                    "payload": payload[low * stripe_bytes : high * stripe_bytes],
                    "scheme": scheme,
                    "n": None if scheme == "lrc" else n,
                    "k": None if scheme == "lrc" else k,
                    "lrc": lrc_tuple,
                    "chunk_size": chunk_size,
                    "backend": chosen_backend,
                },
                seed=seed,
                tag=f"stream.encode_shard[{low}:{high}]",
            )
        )
    results = executor.map_trials(specs)
    parity_shards: List[List[bytes]] = [[] for _ in range(meta.num_parity)]
    for shard_result in results:
        for j, chunks in enumerate(shard_result):
            parity_shards[j].extend(chunks)
    shards = tuple(_data_shard_chunks(payload, meta)) + tuple(
        tuple(chunks) for chunks in parity_shards
    )
    return EncodedStream(meta=meta, shards=shards)


# ---------------------------------------------------------------------------
# Cluster data plane
# ---------------------------------------------------------------------------


class StreamingDataPlane:
    """Real bytes for the simulated cluster's archival encode path.

    The DES layer models *timing*; this plane carries the actual payloads:
    per-block byte strings (deterministically synthesised on demand, or
    supplied via :meth:`put`), streamed through
    :func:`encode_blocks_streaming` when a stripe is encoded, with the
    parity payloads committed against the block ids
    ``NameNode.record_encoding`` mints.  Synthesised payloads are capped at
    ``bytes_per_block`` so simulated 64 MB blocks don't cost 64 MB of
    encoder memory — the cap only scales the payloads, never the metadata.

    Args:
        code: The ``(n, k)`` stripe geometry (must match the NameNode's).
        scheme: Codec scheme (``"reed-solomon"``/``"cauchy-rs"``).
        chunk_size: Streaming read granularity.
        backend: GF backend override (defaults to ``REPRO_GF_BACKEND``).
        bytes_per_block: Cap on synthesised payload bytes per block.
        seed: Seed for deterministic payload synthesis.
    """

    def __init__(
        self,
        code: CodeParams,
        scheme: str = "reed-solomon",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        backend: Optional[str] = None,
        bytes_per_block: int = 1 << 16,
        seed: int = 0,
    ) -> None:
        if bytes_per_block <= 0:
            raise ValueError(
                f"bytes_per_block must be positive, got {bytes_per_block}"
            )
        self.code = code
        self.codec = make_codec(code.n, code.k, scheme)
        self.chunk_size = chunk_size
        self.backend = resolve_backend(backend)
        self.bytes_per_block = bytes_per_block
        self.seed = seed
        self.payloads: Dict[int, bytes] = {}

    def put(self, block_id: int, payload: bytes) -> None:
        """Register a block's real bytes (overrides synthesis)."""
        self.payloads[block_id] = bytes(payload)

    def payload_for(self, block_id: int, size: int) -> bytes:
        """The block's bytes, synthesising a deterministic payload once.

        Synthesis is a pure function of ``(seed, block_id)``, so retried or
        repeated encodes of the same stripe see identical bytes.
        """
        existing = self.payloads.get(block_id)
        if existing is not None:
            return existing
        rng = random.Random((self.seed << 32) ^ block_id)
        payload = rng.randbytes(min(size, self.bytes_per_block))
        self.payloads[block_id] = payload
        return payload

    def encode_stripe(self, stripe: Any, store: Any) -> List[bytes]:
        """Stream-encode a stripe's data blocks into parity payloads."""
        sources = [
            self.payload_for(block_id, store.block(block_id).size)
            for block_id in stripe.block_ids
        ]
        length = max((len(s) for s in sources), default=0)
        parity = encode_blocks_streaming(
            sources,
            self.codec,
            chunk_size=self.chunk_size,
            backend=self.backend,
            length=length,
        )
        PERF.bump("stream.plane_stripes")
        PERF.bump("stream.plane_bytes", sum(len(s) for s in sources))
        return parity

    def commit_parity(
        self, parity_blocks: Sequence[Any], payloads: Sequence[bytes]
    ) -> None:
        """Store computed parity payloads under their minted block ids."""
        if len(parity_blocks) != len(payloads):
            raise ValueError(
                f"{len(parity_blocks)} parity blocks but "
                f"{len(payloads)} payloads"
            )
        for block, payload in zip(parity_blocks, payloads):
            self.payloads[block.block_id] = payload

    def stripe_payloads(self, stripe: Any) -> Dict[int, bytes]:
        """All held payloads of a stripe keyed by stripe index (0..n-1)."""
        blocks: Dict[int, bytes] = {}
        for index, block_id in enumerate(stripe.block_ids):
            payload = self.payloads.get(block_id)
            if payload is not None:
                blocks[index] = payload
        for offset, block_id in enumerate(stripe.parity_block_ids):
            payload = self.payloads.get(block_id)
            if payload is not None:
                blocks[self.code.k + offset] = payload
        return blocks

    def verify_stripe(self, stripe: Any) -> bool:
        """Re-encode the stripe's data payloads and check its parities."""
        blocks = self.stripe_payloads(stripe)
        if sorted(blocks) != list(range(self.code.n)):
            raise ValueError(
                f"stripe {stripe.stripe_id} payloads incomplete: "
                f"{sorted(blocks)}"
            )
        return self.codec.verify(blocks)

    def decode_block(self, stripe: Any, index: int, exclude: Sequence[int] = ()) -> bytes:
        """Rebuild one stripe member's payload from surviving payloads."""
        blocks = self.stripe_payloads(stripe)
        lost = set(exclude) | {index}
        available = {i: b for i, b in blocks.items() if i not in lost}
        return self.codec.reconstruct(index, available)
