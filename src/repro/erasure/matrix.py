"""Matrix algebra over GF(2^8).

Matrices are 2-D numpy ``uint8`` arrays interpreted element-wise as field
elements.  Provides the multiply / invert / solve primitives that the
Reed-Solomon and Cauchy codecs are built on.

The hot kernel is :func:`apply_to_shards`, which encodes/decodes a whole
stripe.  It is *fused*: one advanced-indexing gather through the 256x256
multiplication table produces every (coefficient x shard-byte) product at
once, and a single XOR-reduction folds them into the output rows — no
Python-level loop over coefficients.  The historical per-coefficient path
survives as :func:`apply_to_shards_scalar`, the differential-test oracle
the batched kernel must match byte for byte.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.erasure.galois import GF256
from repro.sim.metrics import PERF

#: Cap on the (rows x coeffs x chunk) product tensor the fused kernel
#: materialises at once; long shards are processed in column chunks.
_FUSED_CHUNK_BYTES = 1 << 24


class SingularMatrixError(ValueError):
    """Raised when inverting a matrix that has no inverse over GF(2^8)."""


def identity(size: int) -> np.ndarray:
    """The ``size x size`` identity matrix."""
    return np.eye(size, dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2^8).

    Args:
        a: ``(r, m)`` uint8 matrix.
        b: ``(m, c)`` uint8 matrix.

    Returns:
        ``(r, c)`` uint8 matrix ``a @ b`` with field arithmetic.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    return _fused_apply(a, b)


def matvec(a: np.ndarray, x: Sequence[int]) -> np.ndarray:
    """Matrix-vector product over GF(2^8)."""
    column = np.asarray(x, dtype=np.uint8).reshape(-1, 1)
    return matmul(a, column).reshape(-1)


def _fused_apply(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """The batched kernel behind :func:`apply_to_shards` and :func:`matmul`.

    ``out[i, l] = XOR_j T[coeffs[i, j], shards[j, l]]`` computed as one
    broadcast gather into an ``(r, m, L)`` product tensor followed by an
    XOR-reduction over ``j`` — chunked over ``L`` to bound peak memory.
    """
    rows, m = coeffs.shape
    length = shards.shape[1]
    out = np.zeros((rows, length), dtype=np.uint8)
    if length == 0 or m == 0:
        return out
    table = GF256.mul_table()
    row_coeffs = coeffs[:, :, None]
    chunk = max(1, _FUSED_CHUNK_BYTES // max(1, rows * m))
    for start in range(0, length, chunk):
        piece = shards[None, :, start : start + chunk]
        products = table[row_coeffs, piece]
        PERF.bump("gf.kernel_calls")
        PERF.bump("gf.symbol_mults", products.size)
        np.bitwise_xor.reduce(products, axis=1, out=out[:, start : start + chunk])
    return out


def accumulate_products(
    out: np.ndarray, coeffs: np.ndarray, chunk: np.ndarray
) -> None:
    """Fused multiply-XOR of one input chunk into preallocated output rows.

    ``out[i, :] ^= T[coeffs[i], chunk]`` for every row ``i`` — the streaming
    pipeline's inner kernel.  Where :func:`_fused_apply` needs the whole
    ``(m, L)`` shard stack in memory, this folds a single input shard's chunk
    into all output accumulators with one table gather and one in-place XOR,
    so parity for an arbitrarily long stream is built one chunk at a time.

    Args:
        out: ``(r, L)`` uint8 accumulator, mutated in place.
        coeffs: ``(r,)`` uint8 vector — one coefficient per output row.
        chunk: ``(L,)`` uint8 input chunk.
    """
    if out.ndim != 2 or coeffs.ndim != 1 or chunk.ndim != 1:
        raise ValueError(
            f"bad ranks: out {out.shape}, coeffs {coeffs.shape}, "
            f"chunk {chunk.shape}"
        )
    if out.shape[0] != coeffs.shape[0] or out.shape[1] != chunk.shape[0]:
        raise ValueError(
            f"incompatible shapes: out {out.shape}, coeffs {coeffs.shape}, "
            f"chunk {chunk.shape}"
        )
    if chunk.shape[0] == 0:
        return
    table = GF256.mul_table()
    products = table[coeffs[:, None], chunk[None, :]]
    PERF.bump("gf.kernel_calls")
    PERF.bump("gf.symbol_mults", products.size)
    np.bitwise_xor(out, products, out=out)


def apply_to_shards(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """Apply a coefficient matrix to a stack of byte shards (fused kernel).

    This is the workhorse of encoding/decoding: given ``m`` input shards of
    ``L`` bytes each (an ``(m, L)`` uint8 array) and an ``(r, m)`` coefficient
    matrix, produce ``r`` output shards.  The whole stripe is encoded in one
    vectorised pass; see :func:`apply_to_shards_scalar` for the historical
    per-coefficient loop (retained as the differential-test oracle).

    Args:
        coeffs: ``(r, m)`` coefficient matrix.
        shards: ``(m, L)`` array, one row per input shard.

    Returns:
        ``(r, L)`` array, one row per output shard.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    shards = np.asarray(shards, dtype=np.uint8)
    if shards.ndim != 2 or coeffs.ndim != 2 or coeffs.shape[1] != shards.shape[0]:
        raise ValueError(
            f"incompatible shapes: coeffs {coeffs.shape}, shards {shards.shape}"
        )
    return _fused_apply(coeffs, shards)


def apply_to_shards_scalar(coeffs: np.ndarray, shards: np.ndarray) -> np.ndarray:
    """Reference implementation of :func:`apply_to_shards`.

    One Python-level ``addmul`` per (row, coefficient) pair — the code path
    every shipped release used before the fused kernel.  The property-based
    differential tests assert the fused kernel matches this byte for byte;
    it is not used on any production path.
    """
    coeffs = np.asarray(coeffs, dtype=np.uint8)
    shards = np.asarray(shards, dtype=np.uint8)
    if shards.ndim != 2 or coeffs.ndim != 2 or coeffs.shape[1] != shards.shape[0]:
        raise ValueError(
            f"incompatible shapes: coeffs {coeffs.shape}, shards {shards.shape}"
        )
    out = np.zeros((coeffs.shape[0], shards.shape[1]), dtype=np.uint8)
    for i in range(coeffs.shape[0]):
        acc = out[i]
        for j in range(coeffs.shape[1]):
            GF256.addmul_array(acc, int(coeffs[i, j]), shards[j])
    return out


def invert(matrix: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises:
        SingularMatrixError: If the matrix is singular.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    size = matrix.shape[0]
    # Work in an augmented [M | I] matrix of Python ints for exactness.
    work = np.concatenate([matrix.copy(), identity(size)], axis=1).astype(np.int32)

    for col in range(size):
        # Find a pivot at or below the diagonal.
        pivot_row = next(
            (r for r in range(col, size) if work[r, col] != 0), None
        )
        if pivot_row is None:
            raise SingularMatrixError("matrix is singular over GF(2^8)")
        if pivot_row != col:
            work[[col, pivot_row]] = work[[pivot_row, col]]
        # Normalise the pivot row.
        pivot_inv = GF256.inv(int(work[col, col]))
        for j in range(2 * size):
            work[col, j] = GF256.mul(pivot_inv, int(work[col, j]))
        # Eliminate the column from every other row.
        for r in range(size):
            if r == col or work[r, col] == 0:
                continue
            factor = int(work[r, col])
            for j in range(2 * size):
                work[r, j] ^= GF256.mul(factor, int(work[col, j]))

    return work[:, size:].astype(np.uint8)


def rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2^8) (row echelon elimination)."""
    work = np.asarray(matrix, dtype=np.uint8).astype(np.int32).copy()
    rows, cols = work.shape
    rank_found = 0
    for col in range(cols):
        pivot_row = next(
            (r for r in range(rank_found, rows) if work[r, col] != 0), None
        )
        if pivot_row is None:
            continue
        if pivot_row != rank_found:
            work[[rank_found, pivot_row]] = work[[pivot_row, rank_found]]
        pivot_inv = GF256.inv(int(work[rank_found, col]))
        for j in range(cols):
            work[rank_found, j] = GF256.mul(pivot_inv, int(work[rank_found, j]))
        for r in range(rows):
            if r == rank_found or work[r, col] == 0:
                continue
            factor = int(work[r, col])
            for j in range(cols):
                work[r, j] ^= GF256.mul(factor, int(work[rank_found, j]))
        rank_found += 1
        if rank_found == rows:
            break
    return rank_found


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix ``V[i, j] = i ** j`` over GF(2^8).

    Any ``cols`` distinct rows of a Vandermonde matrix are linearly
    independent, which is the property RS coding relies on.
    """
    if rows > 256:
        raise ValueError("at most 256 distinct evaluation points exist in GF(2^8)")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = GF256.pow(i, j)
    return out
