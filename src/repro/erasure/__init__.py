"""Erasure-coding substrate: GF(2^8) arithmetic and Reed-Solomon codecs.

The paper encodes replicated data with systematic ``(n, k)`` erasure codes —
Reed-Solomon codes as implemented by HDFS-RAID.  This package provides real,
byte-level implementations built from scratch:

* :mod:`repro.erasure.galois` — GF(2^8) field arithmetic with log/antilog
  tables, vectorised over numpy arrays.
* :mod:`repro.erasure.matrix` — matrix algebra (multiply, invert) over the
  field.
* :mod:`repro.erasure.reed_solomon` — systematic Vandermonde-derived RS.
* :mod:`repro.erasure.cauchy` — systematic Cauchy Reed-Solomon.
* :mod:`repro.erasure.codec` — the ``ErasureCodec`` interface plus stripe
  helpers (encode k data blocks -> n-k parity blocks; reconstruct from any k).
"""

from repro.erasure.codec import (
    CauchyRSCodec,
    CodeParams,
    ErasureCodec,
    ReedSolomonCodec,
    make_codec,
)
from repro.erasure.galois import GF256

__all__ = [
    "CauchyRSCodec",
    "CodeParams",
    "ErasureCodec",
    "GF256",
    "ReedSolomonCodec",
    "make_codec",
]
