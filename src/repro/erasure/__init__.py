"""Erasure-coding substrate: GF(2^8) arithmetic and Reed-Solomon codecs.

The paper encodes replicated data with systematic ``(n, k)`` erasure codes —
Reed-Solomon codes as implemented by HDFS-RAID.  This package provides real,
byte-level implementations built from scratch:

* :mod:`repro.erasure.galois` — GF(2^8) field arithmetic with log/antilog
  tables, vectorised over numpy arrays.
* :mod:`repro.erasure.matrix` — matrix algebra (multiply, invert) over the
  field.
* :mod:`repro.erasure.reed_solomon` — systematic Vandermonde-derived RS.
* :mod:`repro.erasure.cauchy` — systematic Cauchy Reed-Solomon.
* :mod:`repro.erasure.codec` — the ``ErasureCodec`` interface plus stripe
  helpers (encode k data blocks -> n-k parity blocks; reconstruct from any k).
* :mod:`repro.erasure.stream` — the chunked streaming data plane: fixed-size
  chunk iterators, fused multiply-XOR accumulation into preallocated parity
  buffers, numpy/scalar backends (``REPRO_GF_BACKEND``), multi-process
  stripe sharding, and the cluster :class:`StreamingDataPlane`.
"""

from repro.erasure.codec import (
    CauchyRSCodec,
    CodeParams,
    ErasureCodec,
    ReedSolomonCodec,
    StreamTrailer,
    make_codec,
    zero_pad,
)
from repro.erasure.galois import GF256
from repro.erasure.stream import (
    ChunkReader,
    EncodedStream,
    StreamingDataPlane,
    StreamMeta,
    encode_blocks_streaming,
    resolve_backend,
    sharded_stream_encode,
    stream_decode,
    stream_encode,
    stream_repair,
)


def reset_memo_caches() -> None:
    """Clear the process-local generator/decode matrix memo caches.

    Matrix construction is counted work (``gf.kernel_calls`` etc.), so a
    measured region's op counts depend on whether an *earlier* computation
    in the same process already built the matrices it needs.  Harnesses
    that promise location-independent op accounting (the bench runner, the
    parallel sweep executor) call this before each measured trial so every
    trial sees the same cold-cache state regardless of the process — or
    the order — it runs in.
    """
    from repro.erasure import cauchy, reed_solomon

    reed_solomon.generator_matrix.cache_clear()
    reed_solomon.decode_matrix.cache_clear()
    cauchy.generator_matrix.cache_clear()
    cauchy.decode_matrix.cache_clear()


__all__ = [
    "CauchyRSCodec",
    "ChunkReader",
    "CodeParams",
    "EncodedStream",
    "ErasureCodec",
    "GF256",
    "ReedSolomonCodec",
    "StreamMeta",
    "StreamTrailer",
    "StreamingDataPlane",
    "encode_blocks_streaming",
    "make_codec",
    "reset_memo_caches",
    "resolve_backend",
    "sharded_stream_encode",
    "stream_decode",
    "stream_encode",
    "stream_repair",
    "zero_pad",
]
