"""Experiments A.1-A.3 (Section V-A): the 13-machine testbed, simulated.

The testbed is modelled faithfully: 12 single-node racks behind a 1 Gb/s
switch, one external master issuing writes, 64 MB blocks, 2-way replication
over two racks, encoding via a 12-map MapReduce job, and per-node disks
(the encoder's local reads are disk-bound under EAR while RR is
network-bound — the balance behind the paper's 20-120% gains).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.cluster.topology import ClusterTopology
from repro.erasure.codec import CodeParams
from repro.experiments.config import PolicyName, TestbedConfig
from repro.experiments.runner import ClusterSetup, build_cluster, mean
from repro.sim.metrics import ResponseTimeStats
from repro.workloads.background import UdpCrossTraffic
from repro.workloads.swim import JobRecord, SwimWorkload
from repro.workloads.writes import WriteStream


@dataclass(frozen=True)
class EncodingRunResult:
    """Outcome of one raw-encoding run (Experiment A.1)."""

    policy: str
    code: CodeParams
    num_stripes: int
    encoding_time: float
    throughput_mb_s: float
    cross_rack_downloads: int
    cross_rack_uploads: int
    #: (seconds since encoding start, cumulative stripes encoded) pairs —
    #: the Figure 12 curve.
    timeline: Tuple[Tuple[float, int], ...] = ()


@dataclass(frozen=True)
class WriteImpactResult:
    """Outcome of one write-during-encoding run (Experiment A.2)."""

    policy: str
    write_rt_before: Optional[float]
    write_rt_during: Optional[float]
    encoding_time: float
    write_series: Tuple[Tuple[float, float], ...]


def _testbed_setup(
    policy_name: str, config: TestbedConfig, code: CodeParams, seed: int
) -> ClusterSetup:
    topology = ClusterTopology.testbed(
        num_racks=config.num_racks, bandwidth=config.bandwidth
    )
    return build_cluster(
        policy_name,
        topology,
        code,
        config.scheme(),
        seed,
        disk=config.disk,
        block_size=config.block_size,
        slots_per_node=config.slots_per_node,
        scheduler=config.scheduler,
    )


def _write_stripes(setup: ClusterSetup, num_stripes: int, master: int) -> Generator:
    """Write blocks from the master until ``num_stripes`` stripes seal."""
    while len(setup.namenode.sealed_stripes()) < num_stripes:
        yield from setup.client.write_block(writer_node=master)


# ----------------------------------------------------------------------
# Experiment A.1 — raw encoding performance (Figure 8)
# ----------------------------------------------------------------------
def run_raw_encoding(
    policy_name: str,
    code: CodeParams,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
    udp_rate: float = 0.0,
) -> EncodingRunResult:
    """One Figure 8 data point: write stripes, then measure encoding.

    Args:
        policy_name: ``"rr"`` or ``"ear"``.
        code: The ``(n, k)`` code.
        config: Testbed configuration (paper defaults when omitted).
        seed: Random seed (the paper averages five runs).
        udp_rate: Iperf-style UDP cross-traffic per node pair, in
            bytes/second (Figure 8(b) sweeps this; 0 disables it).
    """
    config = config if config is not None else TestbedConfig()
    setup = _testbed_setup(policy_name, config, code, seed)
    master = setup.network.add_external("master")

    setup.sim.process(_write_stripes(setup, config.num_stripes, master))
    setup.sim.run()

    if udp_rate > 0:
        UdpCrossTraffic.testbed_pairs(setup.topology, udp_rate).apply(
            setup.network
        )

    sealed = setup.namenode.sealed_stripes()[: config.num_stripes]
    start = setup.sim.now
    setup.encode_meter.start(start)
    setup.sim.process(
        setup.raidnode.run_encoding(
            setup.job_tracker, sealed, config.num_map_tasks
        )
    )
    setup.sim.run()
    return EncodingRunResult(
        policy=policy_name,
        code=code,
        num_stripes=len(sealed),
        encoding_time=setup.sim.now - start,
        throughput_mb_s=setup.encode_meter.throughput_mb_s(),
        cross_rack_downloads=sum(
            r.cross_rack_downloads for r in setup.encoder.records
        ),
        cross_rack_uploads=sum(
            r.cross_rack_uploads for r in setup.encoder.records
        ),
        timeline=tuple(
            (finish - start, index + 1)
            for index, finish in enumerate(
                sorted(r.finish_time for r in setup.encoder.records)
            )
        ),
    )


def sweep_nk(
    ks: Sequence[int] = (4, 6, 8, 10),
    parity: int = 2,
    seeds: Sequence[int] = range(5),
    config: Optional[TestbedConfig] = None,
) -> Dict[int, Dict[str, float]]:
    """Figure 8(a): mean encoding throughput per (n, k) and policy.

    Returns:
        ``{k: {"rr": MB/s, "ear": MB/s, "gain": fraction}}``.
    """
    results: Dict[int, Dict[str, float]] = {}
    for k in ks:
        code = CodeParams(k + parity, k)
        per_policy = {
            policy: mean(
                run_raw_encoding(policy, code, config, seed).throughput_mb_s
                for seed in seeds
            )
            for policy in PolicyName.ALL
        }
        per_policy["gain"] = per_policy["ear"] / per_policy["rr"] - 1.0
        results[k] = per_policy
    return results


def sweep_udp(
    rates_mbps: Sequence[float] = (0, 200, 400, 600, 800),
    code: Optional[CodeParams] = None,
    seeds: Sequence[int] = range(5),
    config: Optional[TestbedConfig] = None,
) -> Dict[float, Dict[str, float]]:
    """Figure 8(b): mean encoding throughput vs UDP sending rate.

    Args:
        rates_mbps: UDP rates in Mb/s (converted to bytes/s internally).

    Returns:
        ``{rate_mbps: {"rr": MB/s, "ear": MB/s, "gain": fraction}}``.
    """
    code = code if code is not None else CodeParams(10, 8)
    results: Dict[float, Dict[str, float]] = {}
    for rate in rates_mbps:
        udp = rate * 1e6 / 8
        per_policy = {
            policy: mean(
                run_raw_encoding(
                    policy, code, config, seed, udp_rate=udp
                ).throughput_mb_s
                for seed in seeds
            )
            for policy in PolicyName.ALL
        }
        per_policy["gain"] = per_policy["ear"] / per_policy["rr"] - 1.0
        results[rate] = per_policy
    return results


# ----------------------------------------------------------------------
# Experiment A.2 — impact of encoding on writes (Figure 9)
# ----------------------------------------------------------------------
def run_write_during_encoding(
    policy_name: str,
    code: Optional[CodeParams] = None,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
    write_rate: float = 0.5,
    warmup_duration: float = 300.0,
    write_start_times: Optional[List[float]] = None,
) -> WriteImpactResult:
    """One Experiment A.2 run.

    Writes ``96 * k`` blocks (the future stripes), then starts a Poisson
    write stream; after ``warmup_duration`` seconds the encoding job is
    launched while writes continue.  Reports mean write response time
    before vs during encoding and the total encoding time.

    Args:
        write_start_times: Fixed arrival times to replay (the paper records
            run 1's arrivals and replays them), overriding the Poisson
            stream.
    """
    code = code if code is not None else CodeParams(10, 8)
    config = config if config is not None else TestbedConfig()
    setup = _testbed_setup(policy_name, config, code, seed)
    master = setup.network.add_external("master")

    # Phase 0: lay down the stripes to be encoded (not timed).
    setup.sim.process(_write_stripes(setup, config.num_stripes, master))
    setup.sim.run()
    phase0_end = setup.sim.now

    # Phase 1: foreground writes, no encoding yet.
    stream = WriteStream(
        setup.sim,
        setup.client,
        rate=write_rate,
        rng=setup.rng,
        writer_nodes=[master],
    )
    if write_start_times is not None:
        shifted = [phase0_end + t for t in write_start_times]
        setup.sim.process(stream.replay(shifted))
        horizon = max(write_start_times)
    else:
        setup.sim.process(stream.run(duration=warmup_duration * 3))
        horizon = warmup_duration * 3
    setup.sim.run(until=phase0_end + warmup_duration)

    # Phase 2: encoding starts; writes keep flowing.
    sealed = setup.namenode.sealed_stripes()[: config.num_stripes]
    encode_start = setup.sim.now
    setup.encode_meter.start(encode_start)
    encode_done = setup.sim.process(
        setup.raidnode.run_encoding(
            setup.job_tracker, sealed, config.num_map_tasks
        )
    )
    setup.sim.run()
    encode_end = max(
        (r.finish_time for r in setup.encoder.records), default=encode_start
    )

    stats = setup.write_stats
    return WriteImpactResult(
        policy=policy_name,
        write_rt_before=stats.mean_in_window(phase0_end, encode_start),
        write_rt_during=stats.mean_in_window(encode_start, encode_end),
        encoding_time=encode_end - encode_start,
        write_series=tuple(
            (t - phase0_end, lat) for t, lat in stats.series() if t >= phase0_end
        ),
    )


# ----------------------------------------------------------------------
# Experiment A.3 — MapReduce workloads before encoding (Figure 10)
# ----------------------------------------------------------------------
def run_mapreduce_workload(
    policy_name: str,
    num_jobs: int = 50,
    config: Optional[TestbedConfig] = None,
    code: Optional[CodeParams] = None,
    seed: int = 0,
) -> List[JobRecord]:
    """One Experiment A.3 run: SWIM jobs on replicated (pre-encoding) data.

    Returns:
        Per-job completion records; Figure 10 plots the cumulative count of
        completions over time.
    """
    config = config if config is not None else TestbedConfig()
    code = code if code is not None else CodeParams(10, 8)
    setup = _testbed_setup(policy_name, config, code, seed)
    workload_rng = random.Random(seed + 977)
    workload = SwimWorkload(workload_rng, block_size=config.block_size)
    shapes = workload.generate_shapes(num_jobs)

    jobs_box: List = []

    def materialise_then_run() -> Generator:
        jobs = yield from workload.materialise(shapes, setup.client)
        records = yield from workload.run(
            setup.sim, jobs, setup.job_tracker, setup.client, setup.network
        )
        jobs_box.extend(records)

    setup.sim.process(materialise_then_run())
    setup.sim.run()
    return list(jobs_box)


def completion_curve(records: Sequence[JobRecord]) -> List[Tuple[float, int]]:
    """Figure 10's curve: (completion time, cumulative jobs completed)."""
    finished = sorted(r.finish_time for r in records)
    return [(t, i + 1) for i, t in enumerate(finished)]
