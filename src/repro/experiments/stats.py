"""Summary statistics for experiment results.

The paper presents Experiment B.2 as boxplots — "minimum, lower quartile,
median, upper quartile, maximum, and any outlier over 30 runs".  This
module provides that five-number summary (with Tukey outlier detection)
plus simple mean/stdev/confidence-interval helpers, all dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.

    Raises:
        ValueError: On empty input.
    """
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n - 1 denominator; 0 for single values)."""
    if not values:
        raise ValueError("stdev of empty sequence")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile (the common 'type 7' definition)."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must lie in [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class FiveNumberSummary:
    """The boxplot statistics of Figure 13.

    Attributes:
        minimum / maximum: Whisker ends (extremes of the non-outlier data).
        q1 / median / q3: The box.
        outliers: Points beyond 1.5 IQR from the box (Tukey's rule).
    """

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    outliers: Tuple[float, ...] = ()

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    def __str__(self) -> str:
        body = (
            f"min={self.minimum:.3g} q1={self.q1:.3g} "
            f"med={self.median:.3g} q3={self.q3:.3g} max={self.maximum:.3g}"
        )
        if self.outliers:
            body += f" outliers={[f'{o:.3g}' for o in self.outliers]}"
        return body


def five_number_summary(values: Sequence[float]) -> FiveNumberSummary:
    """Boxplot statistics with Tukey outlier detection.

    Raises:
        ValueError: On empty input.
    """
    if not values:
        raise ValueError("summary of empty sequence")
    q1 = quantile(values, 0.25)
    median = quantile(values, 0.5)
    q3 = quantile(values, 0.75)
    fence = 1.5 * (q3 - q1)
    inliers = [v for v in values if q1 - fence <= v <= q3 + fence]
    outliers = tuple(sorted(v for v in values if v not in inliers))
    # On tiny samples an interpolated quartile can lie beyond every inlier
    # (it interpolates towards an outlier); clamp the whiskers so the
    # boxplot ordering min <= q1 <= median <= q3 <= max always holds.
    return FiveNumberSummary(
        minimum=min(min(inliers), q1),
        q1=q1,
        median=median,
        q3=q3,
        maximum=max(max(inliers), q3),
        outliers=outliers,
    )


#: Two-sided 95% t critical values by degrees of freedom (1..30);
#: falls back to the normal 1.96 beyond the table.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Two-sided 95% confidence interval for the mean (t-distribution).

    Returns:
        ``(low, high)``; degenerate (mean, mean) for a single value.

    Raises:
        ValueError: On empty input.
    """
    if not values:
        raise ValueError("confidence interval of empty sequence")
    m = mean(values)
    if len(values) == 1:
        return (m, m)
    df = len(values) - 1
    t = _T_95[df - 1] if df <= len(_T_95) else 1.96
    half = t * stdev(values) / math.sqrt(len(values))
    return (m - half, m + half)
