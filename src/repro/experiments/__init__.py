"""Experiment drivers: one entry point per table/figure in the paper.

See DESIGN.md for the experiment index.  Every driver is deterministic
given its seed(s) and returns plain result objects that the benchmark
harness (``benchmarks/``) formats into the paper's rows/series.

* :mod:`repro.experiments.testbed` — Experiments A.1-A.3 (Figures 8-10) on
  the 12-rack testbed model (disks enabled).
* :mod:`repro.experiments.largescale` — Experiment B.2 (Figure 13) on the
  20x20 cluster (links only, like the paper's CSIM simulator).
* :mod:`repro.experiments.validation` — Experiment B.1 (Figure 12,
  Table I): simulator validation against analytic transfer times.
* :mod:`repro.experiments.loadbalance` — Experiments C.1-C.2
  (Figures 14-15).
"""

from repro.experiments.config import (
    LargeScaleConfig,
    PolicyName,
    TestbedConfig,
)
from repro.experiments.runner import ClusterSetup, build_cluster

__all__ = [
    "ClusterSetup",
    "LargeScaleConfig",
    "PolicyName",
    "TestbedConfig",
    "build_cluster",
]
