"""Terminal charts: render figure-shaped results without matplotlib.

The benchmark tables carry the numbers; these helpers make the *shapes*
visible in a terminal — horizontal bars for grouped comparisons (the
Figure 8 style) and a dot-matrix line plot for series (the Figure 12
"stripes encoded over time" style).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

#: Glyphs assigned to series in plot order.
_MARKERS = "ox+*#@%&"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per label.

    Args:
        labels: Row labels.
        values: Non-negative row values (bars scale to the maximum).
        width: Maximum bar length in characters.
        unit: Suffix printed after each value.

    Example:
        >>> print(bar_chart(["RR", "EAR"], [785, 1155], width=20))
        RR  | ##############       785
        EAR | #################### 1155
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        raise ValueError("nothing to chart")
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(values) or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} "
            f"{value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 15,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Dot-matrix line plot of one or more (x, y) series.

    Each series gets a marker from ``o x + * ...``; a legend line maps
    markers back to series names.  Axes are annotated with the data range.
    """
    if not series:
        raise ValueError("nothing to chart")
    if width < 2 or height < 2:
        raise ValueError("chart must be at least 2x2")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, __ in points]
    ys = [y for __, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for __ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][col] = marker

    top = f"{y_max:g} {y_label}"
    bottom = f"{y_min:g}"
    lines = [top]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(bottom + " +" + "-" * (width - 1))
    lines.append(f"  {x_min:g} .. {x_max:g} {x_label}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
