"""Result persistence: dump experiment outcomes to JSON and back.

Experiment drivers return plain dataclasses; this module serialises them
(and anything similarly simple — dataclasses, dicts, tuples, CodeParams)
so benchmark runs can archive their numbers and downstream tooling can
plot them without re-running the simulations.

Example:
    >>> from repro.experiments.results_io import dumps, loads
    >>> loads(dumps({"gain": 0.7, "ratios": (1.6, 1.8)}))
    {'gain': 0.7, 'ratios': [1.6, 1.8]}
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.erasure.codec import CodeParams

#: Format marker written into every result file.
SCHEMA_VERSION = 1


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {
            field.name: _encode(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        payload["__type__"] = type(value).__name__
        return payload
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot serialise {type(value).__name__}: {value!r}")


def dumps(result: Any, indent: Optional[int] = None) -> str:
    """Serialise a result object to a JSON string."""
    return json.dumps(
        {"schema": SCHEMA_VERSION, "result": _encode(result)}, indent=indent
    )


def loads(payload: str) -> Any:
    """Parse a JSON string produced by :func:`dumps`.

    Dataclasses come back as plain dicts carrying a ``__type__`` marker;
    tuples come back as lists (JSON has no tuple type).

    Raises:
        ValueError: On schema mismatches or malformed payloads.
    """
    document = json.loads(payload)
    if not isinstance(document, dict) or "result" not in document:
        raise ValueError("not a repro results document")
    if document.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {document.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    return document["result"]


def save(result: Any, path: Union[str, Path]) -> Path:
    """Write a result object to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(dumps(result, indent=2))
    return path


def load(path: Union[str, Path]) -> Any:
    """Read a result document written by :func:`save`."""
    return loads(Path(path).read_text())


def code_params_from(payload: Dict[str, Any]) -> CodeParams:
    """Rehydrate a :class:`CodeParams` from its serialised dict."""
    if payload.get("__type__") != "CodeParams":
        raise ValueError("payload is not a serialised CodeParams")
    return CodeParams(payload["n"], payload["k"])
