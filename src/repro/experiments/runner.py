"""Shared experiment plumbing: cluster assembly and result tables.

``build_cluster`` wires a full simulated stack (kernel, network, NameNode
with the requested policy, client, encoder) from a configuration + seed, so
each experiment driver only expresses its workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.cluster.topology import ClusterTopology
from repro.core.ear import EncodingAwareReplication
from repro.faults.retry import RetryPolicy
from repro.core.policy import PlacementPolicy, ReplicationScheme
from repro.core.random_replication import RandomReplication
from repro.core.stripe import PreEncodingStore
from repro.erasure.codec import CodeParams
from repro.experiments.config import PolicyName, StrategyName
from repro.hdfs.client import CFSClient
from repro.hdfs.encoder import StripeEncoder
from repro.hdfs.mapreduce import JobTracker
from repro.hdfs.namenode import NameNode
from repro.hdfs.raidnode import RaidNode
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    ResilienceMetrics,
    ResponseTimeStats,
    ThroughputMeter,
    TimeSeries,
)
from repro.sim.netsim import DiskModel, Network


@dataclass
class ClusterSetup:
    """Everything an experiment needs, assembled for one policy + seed."""

    sim: Simulator
    topology: ClusterTopology
    network: Network
    policy: PlacementPolicy
    namenode: NameNode
    client: CFSClient
    encoder: StripeEncoder
    raidnode: RaidNode
    job_tracker: JobTracker
    code: CodeParams
    rng: random.Random
    write_stats: ResponseTimeStats
    encode_meter: ThroughputMeter
    encode_timeline: TimeSeries
    resilience: Optional[ResilienceMetrics] = None


def make_policy(
    name: str,
    topology: ClusterTopology,
    code: CodeParams,
    scheme: ReplicationScheme,
    rng: random.Random,
    ear_c: int = 1,
    ear_target_racks: Optional[int] = None,
) -> PlacementPolicy:
    """Instantiate a placement policy by name ("rr", "ear" or "recovery")."""
    if name == PolicyName.RR:
        return RandomReplication(
            topology, scheme=scheme, rng=rng, store=PreEncodingStore(code.k)
        )
    if name == PolicyName.EAR:
        return EncodingAwareReplication(
            topology,
            code,
            scheme=scheme,
            rng=rng,
            c=ear_c,
            num_target_racks=ear_target_racks,
        )
    if name == PolicyName.RECOVERY:
        # Imported here: repro.recovery sits above the experiments layer.
        from repro.recovery.placement import RecoveryAwareReplication

        return RecoveryAwareReplication(
            topology,
            code,
            scheme=scheme,
            rng=rng,
            c=ear_c,
            num_target_racks=ear_target_racks,
        )
    raise ValueError(f"unknown policy {name!r}; choose from {PolicyName.ALL}")


def build_cluster(
    policy_name: str,
    topology: ClusterTopology,
    code: CodeParams,
    scheme: ReplicationScheme,
    seed: int,
    disk: Optional[DiskModel] = None,
    block_size: int = 64 * 1024 * 1024,
    slots_per_node: int = 4,
    ear_c: int = 1,
    ear_target_racks: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    resilience: Optional[ResilienceMetrics] = None,
    max_task_attempts: Optional[int] = None,
    journal=None,
    strategy: str = StrategyName.DOWNLOAD,
    pipeline_chunks: int = 4,
    scheduler=None,
) -> ClusterSetup:
    """Assemble a ready-to-run simulated cluster for one policy and seed.

    ``scheduler`` picks the kernel's event scheduler (``"heap"``,
    ``"calendar"``, or a :mod:`repro.sim.scheduler` instance); ``None``
    defers to ``$REPRO_SIM_SCHEDULER``.  Both built-in schedulers keep
    the exact ``(time, seq)`` event order, so results never depend on
    the choice — only wall-clock does.

    With a ``retry`` policy the stack becomes fault-tolerant end to end:
    the encoder and RaidNode retry aborted transfers under it, and the
    JobTracker schedules health-aware (skipping down endpoints, retrying
    crashed maps — 3 attempts unless ``max_task_attempts`` overrides).
    Without it the stack behaves exactly as before — fail-fast.

    With a ``journal`` (a :class:`~repro.journal.journal.MetadataJournal`)
    every NameNode-side metadata mutation is write-ahead logged and the
    cluster can be rebuilt crash-consistently via
    :func:`repro.journal.recovery.recover`.

    ``strategy`` selects how encoding moves bytes: ``"download"`` is the
    paper's single-encoder operation, ``"pipeline"`` wraps the encoder in
    a :class:`~repro.pipeline.encoder.PipelinedEncoder` that streams
    partial GF combinations hop-to-hop (``pipeline_chunks`` chunks per
    block) and falls back to download-and-encode when its retry ladder
    exhausts.
    """
    rng = random.Random(seed)
    sim = Simulator(scheduler=scheduler)
    network = Network(sim, topology, disk=disk)
    policy = make_policy(
        policy_name, topology, code, scheme, rng,
        ear_c=ear_c, ear_target_racks=ear_target_racks,
    )
    namenode = NameNode(topology, policy, block_size=block_size, journal=journal)
    write_stats = ResponseTimeStats()
    client = CFSClient(sim, network, namenode, stats=write_stats)
    encode_meter = ThroughputMeter()
    encode_timeline = TimeSeries()
    planner = namenode.make_planner(code, rng=rng)
    encoder = StripeEncoder(
        sim,
        network,
        namenode,
        planner,
        throughput=encode_meter,
        timeline=encode_timeline,
        retry=retry,
        resilience=resilience,
        rng=rng if retry is not None else None,
    )
    if strategy == StrategyName.PIPELINE:
        # Imported here: repro.pipeline sits above the experiments layer.
        from repro.erasure.stream import StreamingDataPlane
        from repro.pipeline.encoder import PipelinedEncoder
        from repro.pipeline.metrics import PipelineMetrics

        # One shared data plane: stripes that fall back to download-and-
        # encode commit byte-identical parity through the same payloads.
        data_plane = StreamingDataPlane(code, seed=seed)
        encoder.data_plane = data_plane
        encoder = PipelinedEncoder(
            sim,
            network,
            namenode,
            planner,
            code=code,
            fallback=encoder,
            rng=rng,
            retry=retry,
            resilience=resilience,
            metrics=PipelineMetrics(),
            data_plane=data_plane,
            chunk_count=pipeline_chunks,
            throughput=encode_meter,
            timeline=encode_timeline,
        )
    elif strategy != StrategyName.DOWNLOAD:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {StrategyName.ALL}"
        )
    if retry is not None:
        attempts = 3 if max_task_attempts is None else max_task_attempts
        job_tracker = JobTracker(
            sim, topology, slots_per_node=slots_per_node, rng=rng,
            health=network.is_up, max_task_attempts=attempts,
        )
        job_tracker.watch_network(network)
    else:
        job_tracker = JobTracker(
            sim, topology, slots_per_node=slots_per_node, rng=rng
        )
    raidnode = RaidNode(
        sim, network, namenode, encoder, rng=rng,
        retry=retry, resilience=resilience,
    )
    return ClusterSetup(
        sim=sim,
        topology=topology,
        network=network,
        policy=policy,
        namenode=namenode,
        client=client,
        encoder=encoder,
        raidnode=raidnode,
        job_tracker=job_tracker,
        code=code,
        rng=rng,
        write_stats=write_stats,
        encode_meter=encode_meter,
        encode_timeline=encode_timeline,
        resilience=resilience,
    )


def populate_blocks(setup: ClusterSetup, count: int) -> None:
    """Pre-place ``count`` blocks instantly (metadata only, no traffic).

    The large-scale experiments start from already-replicated data, exactly
    like the paper's simulator, so population moves no simulated bytes.
    """
    writers = list(setup.topology.node_ids())
    for __ in range(count):
        writer = setup.rng.choice(writers)
        setup.namenode.allocate_block(writer_node=writer)


def populate_until_sealed(setup: ClusterSetup, num_stripes: int, max_blocks: int = 10_000_000) -> None:
    """Pre-place blocks until ``num_stripes`` stripes have sealed."""
    writers = list(setup.topology.node_ids())
    placed = 0
    store = setup.namenode.pre_encoding_store
    if store is None:
        raise ValueError("the policy maintains no pre-encoding store")
    while len(store.sealed_stripes()) < num_stripes:
        if placed >= max_blocks:
            raise RuntimeError("placement did not seal enough stripes")
        writer = setup.rng.choice(writers)
        setup.namenode.allocate_block(writer_node=writer)
        placed += 1


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    items = list(values)
    if not items:
        raise ValueError("mean of empty sequence")
    return sum(items) / len(items)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned text table (benchmark output helper)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
