"""Experiments C.1-C.2 (Figures 14-15): load-balancing analysis.

Monte-Carlo placement studies on the 20x20 cluster with 3-way replication
(two racks) and (14, 10) coding: per-rack storage shares (C.1) and the read
hotness index H versus file size (C.2), comparing EAR against RR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.load_balance import read_balance_study, storage_balance_study
from repro.cluster.topology import ClusterTopology
from repro.core.policy import PlacementPolicy, ReplicationScheme
from repro.erasure.codec import CodeParams
from repro.experiments.config import PolicyName
from repro.experiments.runner import make_policy


@dataclass(frozen=True)
class LoadBalanceConfig:
    """The Section V-C setup."""

    num_racks: int = 20
    nodes_per_rack: int = 20
    code: CodeParams = CodeParams(14, 10)
    replicas: int = 3
    replica_racks: int = 2

    def scheme(self) -> ReplicationScheme:
        """The replication scheme implied by the replica settings."""
        return ReplicationScheme(self.replicas, self.replica_racks)


def _factory(policy_name: str, config: LoadBalanceConfig):
    topology = ClusterTopology.large_scale(
        num_racks=config.num_racks, nodes_per_rack=config.nodes_per_rack
    )

    def make(rng: random.Random) -> PlacementPolicy:
        return make_policy(
            policy_name, topology, config.code, config.scheme(), rng
        )

    return make


def storage_balance(
    num_blocks: int = 10_000,
    runs: int = 20,
    config: Optional[LoadBalanceConfig] = None,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Figure 14: mean sorted per-rack replica shares per policy.

    The paper uses 10,000 blocks and 10,000 runs; shares land between 4.9%
    and 5.1% for both policies on 20 racks.  ``runs`` trades precision for
    wall-clock and is recorded in EXPERIMENTS.md.
    """
    config = config if config is not None else LoadBalanceConfig()
    return {
        policy: storage_balance_study(
            _factory(policy, config), num_blocks, runs, seed=seed
        )
        for policy in PolicyName.ALL
    }


def read_balance(
    file_sizes: Sequence[int] = (1, 10, 100, 1_000, 10_000),
    runs: int = 20,
    config: Optional[LoadBalanceConfig] = None,
    seed: int = 0,
) -> Dict[str, Dict[int, float]]:
    """Figure 15: mean hotness index H per file size per policy."""
    config = config if config is not None else LoadBalanceConfig()
    return {
        policy: read_balance_study(
            _factory(policy, config), file_sizes, runs, seed=seed
        )
        for policy in PolicyName.ALL
    }
