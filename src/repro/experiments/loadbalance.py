"""Experiments C.1-C.2 (Figures 14-15): load-balancing analysis.

Monte-Carlo placement studies on the 20x20 cluster with 3-way replication
(two racks) and (14, 10) coding: per-rack storage shares (C.1) and the read
hotness index H versus file size (C.2), comparing EAR against RR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.analysis.load_balance import (
    hotness_index,
    rack_replica_shares,
    read_balance_study,
    storage_balance_study,
)

if TYPE_CHECKING:  # avoid importing the executor machinery at module load
    from repro.parallel.executor import SweepExecutor
from repro.cluster.topology import ClusterTopology
from repro.core.policy import PlacementPolicy, ReplicationScheme
from repro.erasure.codec import CodeParams
from repro.experiments.config import PolicyName
from repro.experiments.runner import make_policy


@dataclass(frozen=True)
class LoadBalanceConfig:
    """The Section V-C setup."""

    num_racks: int = 20
    nodes_per_rack: int = 20
    code: CodeParams = CodeParams(14, 10)
    replicas: int = 3
    replica_racks: int = 2

    def scheme(self) -> ReplicationScheme:
        """The replication scheme implied by the replica settings."""
        return ReplicationScheme(self.replicas, self.replica_racks)


def _factory(policy_name: str, config: LoadBalanceConfig):
    topology = ClusterTopology.large_scale(
        num_racks=config.num_racks, nodes_per_rack=config.nodes_per_rack
    )

    def make(rng: random.Random) -> PlacementPolicy:
        return make_policy(
            policy_name, topology, config.code, config.scheme(), rng
        )

    return make


def _storage_trial(
    policy_name: str,
    config: LoadBalanceConfig,
    num_blocks: int,
    seed: int,
) -> List[float]:
    """One Monte-Carlo storage run — the parallel unit of Figure 14."""
    policy = _factory(policy_name, config)(random.Random(seed))
    return rack_replica_shares(policy, num_blocks)


def _read_trial(
    policy_name: str,
    config: LoadBalanceConfig,
    file_blocks: int,
    seed: int,
) -> float:
    """One hotness-index run — the parallel unit of Figure 15."""
    policy = _factory(policy_name, config)(random.Random(seed))
    return hotness_index(policy, file_blocks)


def storage_balance(
    num_blocks: int = 10_000,
    runs: int = 20,
    config: Optional[LoadBalanceConfig] = None,
    seed: int = 0,
    executor: Optional["SweepExecutor"] = None,
) -> Dict[str, List[float]]:
    """Figure 14: mean sorted per-rack replica shares per policy.

    The paper uses 10,000 blocks and 10,000 runs; shares land between 4.9%
    and 5.1% for both policies on 20 racks.  ``runs`` trades precision for
    wall-clock and is recorded in EXPERIMENTS.md.

    With an ``executor`` each (policy, run) pair becomes one trial; the
    per-run shares are then averaged in the same run order and with the
    same float arithmetic as the sequential study, so the result is
    byte-identical.
    """
    config = config if config is not None else LoadBalanceConfig()
    if executor is not None:
        from repro.parallel.spec import TrialSpec

        specs = [
            TrialSpec(
                fn=_storage_trial,
                config={
                    "policy_name": policy,
                    "config": config,
                    "num_blocks": num_blocks,
                },
                seed=seed + run,
                tag=f"loadbalance.storage.{policy}",
            )
            for policy in PolicyName.ALL
            for run in range(runs)
        ]
        flat = iter(executor.map_trials(specs))
        out: Dict[str, List[float]] = {}
        for policy in PolicyName.ALL:
            accumulated: Optional[List[float]] = None
            for __ in range(runs):
                shares = next(flat)
                if accumulated is None:
                    accumulated = shares
                else:
                    accumulated = [a + s for a, s in zip(accumulated, shares)]
            assert accumulated is not None
            out[policy] = [a / runs for a in accumulated]
        return out
    return {
        policy: storage_balance_study(
            _factory(policy, config), num_blocks, runs, seed=seed
        )
        for policy in PolicyName.ALL
    }


def read_balance(
    file_sizes: Sequence[int] = (1, 10, 100, 1_000, 10_000),
    runs: int = 20,
    config: Optional[LoadBalanceConfig] = None,
    seed: int = 0,
    executor: Optional["SweepExecutor"] = None,
) -> Dict[str, Dict[int, float]]:
    """Figure 15: mean hotness index H per file size per policy.

    With an ``executor`` each (policy, size, run) cell becomes one trial,
    seeded exactly as the sequential study seeds it; per-size means are
    re-accumulated in run order so the result is byte-identical.
    """
    config = config if config is not None else LoadBalanceConfig()
    if executor is not None:
        from repro.parallel.spec import TrialSpec

        specs = [
            TrialSpec(
                fn=_read_trial,
                config={
                    "policy_name": policy,
                    "config": config,
                    "file_blocks": size,
                },
                seed=seed + 1000 * size + run,
                tag=f"loadbalance.read.{policy}",
            )
            for policy in PolicyName.ALL
            for size in file_sizes
            for run in range(runs)
        ]
        flat = iter(executor.map_trials(specs))
        result: Dict[str, Dict[int, float]] = {}
        for policy in PolicyName.ALL:
            means: Dict[int, float] = {}
            for size in file_sizes:
                total = 0.0
                for __ in range(runs):
                    total += next(flat)
                means[size] = total / runs
            result[policy] = means
        return result
    return {
        policy: read_balance_study(
            _factory(policy, config), file_sizes, runs, seed=seed
        )
        for policy in PolicyName.ALL
    }
