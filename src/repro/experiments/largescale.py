"""Experiment B.2 (Figure 13): large-scale discrete-event simulations.

A 20-rack x 20-node CFS encodes 1000 pre-replicated stripes with 20
concurrent encoding processes while Poisson write and background streams
(1 request/s each) share the links — the paper's exact setup.  Disks are
not modelled, matching the paper's CSIM simulator (its Topology module
manages link resources only).

Reported metrics, normalised EAR over RR as in Figure 13:

* **encoding throughput** — encoded data volume divided by the encoding
  window (first start to last finish);
* **write throughput** — block size divided by the mean write response
  time during the encoding window (per-request throughput, which is what
  placement actually affects: all arrivals complete under both policies).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Generator, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # avoid importing the executor machinery at module load
    from repro.parallel.executor import SweepExecutor

from repro.cluster.topology import ClusterTopology
from repro.core.stripe import Stripe
from repro.erasure.codec import CodeParams
from repro.experiments.config import LargeScaleConfig, PolicyName
from repro.experiments.runner import (
    ClusterSetup,
    build_cluster,
    mean,
    populate_until_sealed,
)
from repro.workloads.background import BackgroundTraffic
from repro.workloads.writes import WriteStream


@dataclass(frozen=True)
class LargeScaleResult:
    """Outcome of one large-scale run."""

    policy: str
    encoding_time: float
    encode_throughput_mb_s: float
    write_throughput_mb_s: Optional[float]
    mean_write_rt: Optional[float]
    cross_rack_downloads: int
    cross_rack_uploads: int
    stripes_encoded: int
    #: Post-encoding relocation activity (only non-zero when the run was
    #: started with ``include_relocation=True``; always zero under EAR).
    relocation_moves: int = 0
    relocation_cross_moves: int = 0


@dataclass(frozen=True)
class NormalisedPoint:
    """EAR-over-RR ratios for one parameter value (a Figure 13 box)."""

    parameter: float
    encode_ratios: Tuple[float, ...]
    write_ratios: Tuple[float, ...]

    @property
    def encode_gain(self) -> float:
        """Mean encoding throughput gain of EAR over RR (fraction)."""
        return mean(self.encode_ratios) - 1.0

    @property
    def write_gain(self) -> float:
        """Mean write throughput gain of EAR over RR (fraction)."""
        return mean(self.write_ratios) - 1.0

    def encode_summary(self):
        """Boxplot statistics of the encode ratios (the paper's Figure 13
        presentation)."""
        from repro.experiments.stats import five_number_summary

        return five_number_summary(self.encode_ratios)

    def write_summary(self):
        """Boxplot statistics of the write ratios."""
        from repro.experiments.stats import five_number_summary

        return five_number_summary(self.write_ratios)


def run_largescale(
    policy_name: str,
    config: Optional[LargeScaleConfig] = None,
    seed: int = 0,
    include_relocation: bool = False,
) -> LargeScaleResult:
    """One large-scale run for one policy.

    Pre-places enough blocks to seal ``config.total_stripes`` stripes
    (instant, no simulated traffic), then runs the write stream, the
    background stream, and the encoding processes concurrently until all
    stripes are encoded.

    Args:
        include_relocation: When True, each encoded stripe is immediately
            checked by the PlacementMonitor and repaired by the BlockMover
            with real simulated traffic — the cost the paper's Experiment
            B.2 excluded ("the simulated performance of RR is actually
            over-estimated").  The encoding window then also covers the
            relocations.
    """
    config = config if config is not None else LargeScaleConfig()
    topology = ClusterTopology(
        nodes_per_rack=config.nodes_per_rack,
        num_racks=config.num_racks,
        intra_rack_bandwidth=config.bandwidth,
        cross_rack_bandwidth=config.cross_rack_bandwidth,
    )
    setup = build_cluster(
        policy_name,
        topology,
        config.code,
        config.scheme(),
        seed,
        disk=None,
        block_size=config.block_size,
        ear_c=config.ear_c,
        ear_target_racks=config.ear_target_racks,
        scheduler=config.scheduler,
    )
    populate_until_sealed(setup, config.total_stripes)
    sealed = setup.namenode.sealed_stripes()[: config.total_stripes]

    # Deal the stripes to the encoding processes round-robin.
    queues: List[List[Stripe]] = [
        sealed[i :: config.num_encoding_processes]
        for i in range(config.num_encoding_processes)
    ]

    from repro.core.relocation import BlockMover

    mover = (
        BlockMover(topology, config.code, rng=random.Random(seed + 30_003))
        if include_relocation
        else None
    )
    relocation_plans = []

    def encoding_process(stripes: List[Stripe]) -> Generator:
        for stripe in stripes:
            yield from setup.encoder.encode_stripe(stripe)
            if mover is not None:
                plan = yield from setup.raidnode.relocate_if_violating(
                    stripe, mover
                )
                if not plan.is_empty:
                    relocation_plans.append(plan)

    write_stream = WriteStream(
        setup.sim,
        setup.client,
        rate=config.write_rate,
        rng=random.Random(seed + 10_001),
        block_size=config.block_size,
    )
    background = BackgroundTraffic(
        setup.sim,
        setup.network,
        rate=config.background_rate,
        rng=random.Random(seed + 20_002),
        mean_size=config.block_size,
        cross_rack_fraction=config.background_cross_fraction,
    )

    setup.encode_meter.start(setup.sim.now)
    encoders = [
        setup.sim.process(encoding_process(queue)) for queue in queues if queue
    ]
    setup.sim.process(write_stream.run())
    setup.sim.process(background.run())
    all_encoded = setup.sim.all_of(encoders)
    end_box: List[float] = []

    def stop_when_encoded() -> Generator:
        yield all_encoded
        end_box.append(setup.sim.now)
        write_stream.stop()
        background.stop()

    setup.sim.process(stop_when_encoded())
    setup.sim.run()

    encode_end = (
        end_box[0]
        if include_relocation and end_box
        else max(r.finish_time for r in setup.encoder.records)
    )
    window_rt = setup.write_stats.mean_in_window(0.0, encode_end)
    return LargeScaleResult(
        policy=policy_name,
        encoding_time=encode_end,
        encode_throughput_mb_s=setup.encode_meter.throughput_mb_s(),
        write_throughput_mb_s=(
            None if window_rt is None else config.block_size / window_rt / 1e6
        ),
        mean_write_rt=window_rt,
        cross_rack_downloads=sum(
            r.cross_rack_downloads for r in setup.encoder.records
        ),
        cross_rack_uploads=sum(
            r.cross_rack_uploads for r in setup.encoder.records
        ),
        stripes_encoded=len(setup.encoder.records),
        relocation_moves=sum(len(p.moves) for p in relocation_plans),
        relocation_cross_moves=sum(
            p.cross_rack_moves for p in relocation_plans
        ),
    )


def compare_policies(
    config: LargeScaleConfig, seed: int
) -> Tuple[float, float]:
    """EAR/RR (encode, write) throughput ratios for one seed."""
    rr = run_largescale(PolicyName.RR, config, seed)
    ear = run_largescale(PolicyName.EAR, config, seed)
    encode_ratio = ear.encode_throughput_mb_s / rr.encode_throughput_mb_s
    if rr.write_throughput_mb_s and ear.write_throughput_mb_s:
        write_ratio = ear.write_throughput_mb_s / rr.write_throughput_mb_s
    else:
        write_ratio = 1.0
    return encode_ratio, write_ratio


def _normalised_sweep(
    parameters: Sequence[float],
    make_config,
    seeds: Sequence[int],
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Run ``compare_policies`` over the ``parameters x seeds`` grid.

    With an executor, every (parameter, seed) cell becomes one
    :class:`~repro.parallel.spec.TrialSpec`; specs are built in the exact
    sequential iteration order and the executor reassembles results in
    spec order, so the regrouped points are identical to the plain loop.
    """
    if executor is not None:
        from repro.parallel.spec import TrialSpec

        seed_list = list(seeds)
        configs = [make_config(value) for value in parameters]
        specs = [
            TrialSpec(
                fn=compare_policies,
                config={"config": config},
                seed=seed,
                tag="largescale.compare",
            )
            for config in configs
            for seed in seed_list
        ]
        flat = executor.map_trials(specs)
        per_value = [
            flat[i * len(seed_list) : (i + 1) * len(seed_list)]
            for i in range(len(configs))
        ]
        return [
            NormalisedPoint(
                parameter=value,
                encode_ratios=tuple(r[0] for r in ratios),
                write_ratios=tuple(r[1] for r in ratios),
            )
            for value, ratios in zip(parameters, per_value)
        ]
    points = []
    for value in parameters:
        config = make_config(value)
        ratios = [compare_policies(config, seed) for seed in seeds]
        points.append(
            NormalisedPoint(
                parameter=value,
                encode_ratios=tuple(r[0] for r in ratios),
                write_ratios=tuple(r[1] for r in ratios),
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 13 sweeps
# ----------------------------------------------------------------------
def sweep_k(
    ks: Sequence[int] = (6, 8, 10, 12),
    parity: int = 4,
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(a): vary ``k`` with ``n - k`` fixed at 4."""
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        ks,
        lambda k: replace(base, code=CodeParams(int(k) + parity, int(k))),
        seeds,
        executor=executor,
    )


def sweep_m(
    ms: Sequence[int] = (2, 3, 4, 5, 6),
    k: int = 10,
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(b): vary ``n - k`` with ``k`` fixed at 10."""
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        ms,
        lambda m: replace(base, code=CodeParams(k + int(m), k)),
        seeds,
        executor=executor,
    )


def sweep_bandwidth(
    gbps: Sequence[float] = (0.2, 0.5, 1.0, 2.0),
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(c): vary the top-of-rack and core link bandwidth."""
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        gbps,
        lambda g: replace(base, bandwidth=g * 1e9 / 8),
        seeds,
        executor=executor,
    )


def sweep_write_rate(
    rates: Sequence[float] = (1.0, 2.0, 3.0, 4.0),
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(d): vary the write request arrival rate."""
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        rates,
        lambda r: replace(base, write_rate=float(r)),
        seeds,
        executor=executor,
    )


def sweep_rack_tolerance(
    tolerances: Sequence[int] = (1, 2, 3, 4),
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(e): vary EAR's tolerable rack failures (via ``c``).

    Tolerating ``t`` rack failures with an ``(n, k)`` code means at most
    ``c = floor((n - k) / t)`` stripe blocks per rack; EAR then confines
    each stripe to ``ceil(n / c)`` target racks (Section III-D).  RR keeps
    its full ``n - k`` rack tolerance throughout, as in the paper.
    """
    base = base if base is not None else LargeScaleConfig()

    def make_config(t: float) -> LargeScaleConfig:
        c = max(1, base.code.num_parity // int(t))
        return replace(
            base, ear_c=c, ear_target_racks=base.code.min_racks(c)
        )

    return _normalised_sweep(tolerances, make_config, seeds, executor=executor)


def sweep_oversubscription(
    ratios: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Extension sweep: vary the rack uplink over-subscription ratio.

    The paper's premise is that the network core is over-subscribed
    ("cross-rack bandwidth is a scarce resource [6, 9], and is often
    over-subscribed [1, 15]") but its simulator keeps uplinks at full
    speed.  This sweep derates only the rack uplinks — at ratio 8 a rack's
    20 nodes share 1/8 of a node's NIC speed — and shows EAR's advantage
    widening as the premise sharpens.
    """
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        ratios,
        lambda r: replace(base, oversubscription=float(r)),
        seeds,
        executor=executor,
    )


def sweep_replicas(
    replica_counts: Sequence[int] = (2, 3, 4, 6, 8),
    base: Optional[LargeScaleConfig] = None,
    seeds: Sequence[int] = range(3),
    executor: Optional["SweepExecutor"] = None,
) -> List[NormalisedPoint]:
    """Figure 13(f): vary the replication factor, one rack per replica."""
    base = base if base is not None else LargeScaleConfig()
    return _normalised_sweep(
        replica_counts,
        lambda r: replace(base, replicas=int(r), replica_racks=int(r)),
        seeds,
        executor=executor,
    )
