"""Experiment configurations mirroring the paper's setups.

Two deployments appear throughout Section V:

* the **testbed** (Section V-A): 13 machines — one master plus 12 slaves,
  each slave its own rack — on 1 Gb/s Ethernet, 64 MB blocks, 2-way
  replication over two racks, 12 map tasks per encoding job, 96 stripes;
* the **large-scale CFS** (Section V-B): 20 racks x 20 nodes, 1 Gb/s
  top-of-rack and core links, 3-way replication over two racks, (14, 10)
  erasure coding, 20 encoding processes x 50 stripes, write and background
  traffic at 1 request/s each.

The dataclasses below default to those parameters; benchmarks shrink the
stripe counts to keep wall-clock reasonable and say so in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.topology import DEFAULT_BLOCK_SIZE, GIGABIT_PER_SECOND_BYTES
from repro.core.policy import ReplicationScheme
from repro.erasure.codec import CodeParams
from repro.sim.netsim import DiskModel


class PolicyName:
    """Placement policies under comparison."""

    RR = "rr"
    EAR = "ear"
    #: Recovery-aware EAR variant: spread encoded stripes one block per
    #: rack, trading encoding traffic for repair parallelism.
    RECOVERY = "recovery"

    ALL = (RR, EAR, RECOVERY)


class StrategyName:
    """Transition (replication -> erasure coding) strategies.

    Orthogonal to the placement policy: the policy decides where blocks
    and parity live, the strategy decides how the bytes move during the
    encoding operation.
    """

    #: The paper's Section II-A operation: download ``k`` blocks to one
    #: encoder node, compute, upload parity.
    DOWNLOAD = "download"
    #: RapidRAID-style hop-to-hop pipeline over the replica holders
    #: (:mod:`repro.pipeline`), falling back to ``download`` on failure.
    PIPELINE = "pipeline"

    ALL = (DOWNLOAD, PIPELINE)


@dataclass(frozen=True)
class TestbedConfig:
    """The 13-machine testbed of Section V-A (Experiments A.1-A.3).

    Attributes:
        num_racks: Slave machines, one per rack.
        bandwidth: NIC / switch speed in bytes/second.
        block_size: HDFS block size.
        replicas: Copies per block (the testbed uses 2-way replication
            because each rack has a single DataNode).
        replica_racks: Racks each block's copies span.
        num_stripes: Stripes written and encoded (96 in the paper).
        num_map_tasks: Maps the RaidNode launches per encoding job.
        slots_per_node: TaskTracker map slots.
        disk: Disk model; the testbed is disk-aware (local reads bound the
            EAR encoder), unlike the large-scale simulator.
    """

    # Not a pytest class, despite the Test* name.
    __test__ = False

    num_racks: int = 12
    bandwidth: float = GIGABIT_PER_SECOND_BYTES
    block_size: int = DEFAULT_BLOCK_SIZE
    replicas: int = 2
    replica_racks: int = 2
    num_stripes: int = 96
    num_map_tasks: int = 12
    slots_per_node: int = 4
    disk: Optional[DiskModel] = field(default_factory=DiskModel)
    #: Simulation-kernel event scheduler ("heap" or "calendar"); ``None``
    #: defers to ``$REPRO_SIM_SCHEDULER``.  Results are
    #: scheduler-independent by construction.
    scheduler: Optional[str] = None

    def scheme(self) -> ReplicationScheme:
        """The replication scheme implied by the replica settings."""
        return ReplicationScheme(self.replicas, self.replica_racks)

    def scaled(self, num_stripes: int) -> "TestbedConfig":
        """A copy with a smaller stripe count (for fast benchmarks)."""
        from dataclasses import replace

        return replace(self, num_stripes=num_stripes)


@dataclass(frozen=True)
class LargeScaleConfig:
    """The simulated 400-node CFS of Section V-B (Experiment B.2).

    Attributes:
        num_racks / nodes_per_rack: Cluster shape (20 x 20).
        bandwidth: Top-of-rack and core link speed, swept by Figure 13(c).
        code: Erasure code, (14, 10) by default; Figures 13(a)/(b) sweep
            ``k`` and ``n - k``.
        replicas / replica_racks: 3-way replication over two racks by
            default; Figure 13(f) sweeps replicas with one rack each.
        ear_c: EAR's per-rack cap; Figure 13(e) derives it from the
            tolerable rack failures.
        ear_target_racks: EAR's R' (None = all racks admissible).
        num_encoding_processes / stripes_per_process: 20 x 50 in the paper.
        write_rate / background_rate: Poisson request rates (requests/s).
        background_cross_fraction: Cross-rack share of background requests.
    """

    num_racks: int = 20
    nodes_per_rack: int = 20
    bandwidth: float = GIGABIT_PER_SECOND_BYTES
    #: Over-subscription ratio of the rack uplinks: the cross-rack link
    #: speed is ``bandwidth / oversubscription``.  1.0 reproduces the
    #: paper's setup; larger values model the over-subscribed cores the
    #: paper's premise rests on ("cross-rack bandwidth ... often
    #: over-subscribed [1, 15]").
    oversubscription: float = 1.0
    code: CodeParams = field(default_factory=lambda: CodeParams(14, 10))
    replicas: int = 3
    replica_racks: int = 2
    ear_c: int = 1
    ear_target_racks: Optional[int] = None
    num_encoding_processes: int = 20
    stripes_per_process: int = 50
    write_rate: float = 1.0
    background_rate: float = 1.0
    background_cross_fraction: float = 0.5
    block_size: int = DEFAULT_BLOCK_SIZE
    #: Simulation-kernel event scheduler ("heap" or "calendar"); ``None``
    #: defers to ``$REPRO_SIM_SCHEDULER``.  Results are
    #: scheduler-independent by construction.
    scheduler: Optional[str] = None

    def scheme(self) -> ReplicationScheme:
        """The replication scheme implied by the replica settings."""
        return ReplicationScheme(self.replicas, self.replica_racks)

    @property
    def total_stripes(self) -> int:
        """Stripes encoded across all encoding processes."""
        return self.num_encoding_processes * self.stripes_per_process

    @property
    def cross_rack_bandwidth(self) -> float:
        """Effective rack uplink speed after over-subscription."""
        if self.oversubscription <= 0:
            raise ValueError("oversubscription must be positive")
        return self.bandwidth / self.oversubscription

    def scaled(self, stripes_per_process: int) -> "LargeScaleConfig":
        """A copy with fewer stripes per process (for fast benchmarks)."""
        from dataclasses import replace

        return replace(self, stripes_per_process=stripes_per_process)
