"""Experiment B.1 (Figure 12, Table I): simulator validation.

The paper validates its CSIM simulator against the physical testbed.  We
have no physical testbed, so validation here means two things (documented
as a substitution in DESIGN.md):

1. **Analytic validation** — with an idle network, every transfer time is
   exactly ``size / bottleneck_bandwidth``; write response times and
   single-stripe encode times must match closed-form expectations.
2. **Cross-mode consistency** (the spirit of Figure 12/Table I) — the
   testbed-mode drivers (Section V-A) and a plain re-simulation of the
   same scenario must produce matching encoded-stripes-vs-time curves and
   write response times within a small tolerance, across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.cluster.topology import ClusterTopology
from repro.erasure.codec import CodeParams
from repro.experiments.config import PolicyName, TestbedConfig
from repro.experiments.runner import build_cluster, mean
from repro.experiments.testbed import run_write_during_encoding


@dataclass(frozen=True)
class AnalyticCheck:
    """One validation row: measured vs expected time."""

    name: str
    measured: float
    expected: float

    @property
    def relative_error(self) -> float:
        """``|measured - expected| / expected``."""
        return abs(self.measured - self.expected) / self.expected


def validate_write_path(
    config: Optional[TestbedConfig] = None, seed: int = 0
) -> AnalyticCheck:
    """An idle-network write must take exactly ``hops * size / bw``.

    The testbed write pipeline is master -> replica 1 -> replica 2 (two
    sequential 64 MB hops at 1 Gb/s): about 1.07 s, matching the ~1.4 s the
    real testbed reports once its protocol overheads are included.
    """
    config = config if config is not None else TestbedConfig()
    code = CodeParams(10, 8)
    topology = ClusterTopology.testbed(config.num_racks, config.bandwidth)
    setup = build_cluster(
        PolicyName.RR,
        topology,
        code,
        config.scheme(),
        seed,
        disk=config.disk,
        block_size=config.block_size,
    )
    master = setup.network.add_external("master")

    def one_write() -> Generator:
        yield from setup.client.write_block(writer_node=master)

    setup.sim.process(one_write())
    setup.sim.run()
    measured = setup.write_stats.mean()
    expected = config.replicas * config.block_size / config.bandwidth
    return AnalyticCheck("write-response-idle", measured, expected)


def validate_single_stripe_encode(
    code: Optional[CodeParams] = None,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
) -> AnalyticCheck:
    """An idle-network EAR stripe encode must match its closed form.

    On the single-node-rack testbed all ``k`` downloads are local disk
    reads (sequential on one disk) and the ``n - k`` parity uploads run in
    parallel but share the encoder's egress NIC:

        T = k * size / disk_read_bw + (n - k) * size / bw.
    """
    code = code if code is not None else CodeParams(10, 8)
    config = config if config is not None else TestbedConfig()
    if config.disk is None:
        raise ValueError("the testbed validation requires the disk model")
    topology = ClusterTopology.testbed(config.num_racks, config.bandwidth)
    setup = build_cluster(
        PolicyName.EAR,
        topology,
        code,
        config.scheme(),
        seed,
        disk=config.disk,
        block_size=config.block_size,
    )
    master = setup.network.add_external("master")

    def write_then_encode() -> Generator:
        while not setup.namenode.sealed_stripes():
            yield from setup.client.write_block(writer_node=master)
        stripe = setup.namenode.sealed_stripes()[0]
        yield from setup.encoder.encode_stripe(stripe)

    setup.sim.process(write_then_encode())
    setup.sim.run()
    record = setup.encoder.records[0]
    size = config.block_size
    expected = (
        code.k * size / config.disk.read_bandwidth
        + code.num_parity * size / config.bandwidth
    )
    return AnalyticCheck("ear-stripe-encode-idle", record.duration, expected)


@dataclass(frozen=True)
class ConsistencyCheck:
    """Cross-seed reproduction of Experiment A.2 (Table I's structure)."""

    policy: str
    rt_without_encoding: float
    rt_with_encoding: float
    encoding_time: float


def table1_rows(
    seeds=(0, 1, 2),
    config: Optional[TestbedConfig] = None,
    code: Optional[CodeParams] = None,
) -> List[ConsistencyCheck]:
    """Table I's structure: write RTs with and without background encoding.

    Runs Experiment A.2 per policy and averages over seeds; the "without
    encoding" column is the pre-encoding window, the "with" column the
    encoding window.
    """
    rows: List[ConsistencyCheck] = []
    for policy in PolicyName.ALL:
        results = [
            run_write_during_encoding(policy, code, config, seed)
            for seed in seeds
        ]
        rows.append(
            ConsistencyCheck(
                policy=policy,
                rt_without_encoding=mean(
                    r.write_rt_before for r in results if r.write_rt_before
                ),
                rt_with_encoding=mean(
                    r.write_rt_during for r in results if r.write_rt_during
                ),
                encoding_time=mean(r.encoding_time for r in results),
            )
        )
    return rows


def encoded_stripes_curves(
    config: Optional[TestbedConfig] = None,
    code: Optional[CodeParams] = None,
    seed: int = 0,
) -> Dict[str, List[Tuple[float, int]]]:
    """Figure 12's curves: cumulative encoded stripes vs time per policy."""
    from repro.experiments.testbed import run_raw_encoding

    curves: Dict[str, List[Tuple[float, int]]] = {}
    for policy in PolicyName.ALL:
        result = run_raw_encoding(
            policy, code if code is not None else CodeParams(10, 8), config, seed
        )
        curves[policy] = list(result.timeline)
    return curves
