"""The append-only segmented write-ahead log (on-disk format + scanner).

One journal directory holds::

    segment-00000001.wal      # newline-delimited record envelopes
    segment-00000002.wal
    checkpoint-00000042.json  # fsimage-style snapshots (see checkpoint.py)

Each envelope line is ``<json>\\t<crc32 hex>`` where the CRC covers the
JSON bytes and the JSON is the canonical (sorted-keys, tight-separator)
encoding of ``{"seq": n, "type": tag, "data": {...}}``.  Appends go
through an explicit in-memory buffer: a record is *durable* only after
:meth:`JournalWriter.flush`, which is exactly the boundary the crash
drills exercise.  The scanner tolerates a torn or truncated final
record — the signature a crash between write and flush leaves behind —
but reports any mid-log corruption as an error.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.metrics import PERF

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".wal"
_SEGMENT_RE = re.compile(r"^segment-(\d{8})\.wal$")

#: Records per segment before the writer rotates to a fresh file.
DEFAULT_SEGMENT_RECORDS = 1024


class JournalFormatError(ValueError):
    """A structurally invalid line somewhere other than the log's tail."""


def encode_line(seq: int, envelope: Dict[str, object]) -> str:
    """One record as its on-disk line (canonical JSON + CRC, no newline)."""
    payload = dict(envelope)
    payload["seq"] = seq
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    return f"{text}\t{crc:08x}"


def decode_line(line: str) -> Dict[str, object]:
    """Parse and CRC-check one line.

    Raises:
        JournalFormatError: On a missing CRC field, CRC mismatch, or
            undecodable JSON — the caller decides whether the position
            (tail or mid-log) makes that torn or corrupt.
    """
    stripped = line.rstrip("\n")
    text, sep, crc_hex = stripped.rpartition("\t")
    if not sep:
        raise JournalFormatError("record line has no CRC field")
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        raise JournalFormatError(
            f"record CRC {crc_hex!r} is not hexadecimal"
        ) from None
    actual = zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise JournalFormatError(
            f"record CRC mismatch (stored {crc_hex}, computed {actual:08x})"
        )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise JournalFormatError(f"record JSON undecodable: {exc}") from None
    if not isinstance(payload, dict) or "seq" not in payload:
        raise JournalFormatError("record envelope lacks a seq field")
    return payload


def segment_path(directory: str, index: int) -> str:
    """The path of segment ``index`` inside ``directory``."""
    return os.path.join(directory, f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}")


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """``(index, path)`` of every segment file, in index order."""
    found: List[Tuple[int, str]] = []
    if not os.path.isdir(directory):
        return found
    for name in sorted(os.listdir(directory)):
        match = _SEGMENT_RE.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(directory, name)))
    return found


class JournalWriter:
    """Appends envelope lines to rotating segment files.

    Args:
        directory: Journal directory (created if missing).
        segment_records: Records per segment before rotation.
        fsync: Whether :meth:`flush` also fsyncs the file descriptor
            (off by default; the tests model durability at flush level).

    A resumed writer (an existing journal directory) always starts a
    *new* segment, so a previous process's possibly-torn tail is never
    appended to.
    """

    def __init__(
        self,
        directory: str,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        fsync: bool = False,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.directory = directory
        self.segment_records = segment_records
        self.fsync = fsync
        os.makedirs(directory, exist_ok=True)
        existing = list_segments(directory)
        self._segment_index = (existing[-1][0] + 1) if existing else 1
        self._records_in_segment = 0
        self._buffer: List[str] = []
        self._handle = None
        self.bytes_written = 0

    @property
    def current_segment_path(self) -> str:
        """The path the next flushed record will land in."""
        return segment_path(self.directory, self._segment_index)

    # ------------------------------------------------------------------
    def append(self, line: str) -> None:
        """Buffer one encoded line (durable only after :meth:`flush`)."""
        self._buffer.append(line + "\n")

    def flush(self) -> None:
        """Write every buffered line to disk and make it durable.

        Rotation happens mid-flush the moment a segment fills, so
        ``segment_records`` bounds segment size even when many records
        are flushed in one batch.
        """
        if not self._buffer:
            return
        pending, self._buffer = self._buffer, []
        for text in pending:
            handle = self._ensure_handle()
            handle.write(text)
            self.bytes_written += len(text.encode("utf-8"))
            self._records_in_segment += 1
            if self._records_in_segment >= self.segment_records:
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
                self._rotate()
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def write_torn(self, line: str, keep_bytes: Optional[int] = None) -> None:
        """Write a deliberately truncated record (crash-drill helper).

        Flushes any buffered records first, then writes only the first
        ``keep_bytes`` bytes of ``line`` (half of it by default) with no
        trailing newline — the exact artifact a crash mid-write leaves.
        """
        self.flush()
        encoded = line.encode("utf-8")
        cut = len(encoded) // 2 if keep_bytes is None else keep_bytes
        handle = self._ensure_handle()
        handle.write(encoded[:cut].decode("utf-8", errors="ignore"))
        handle.flush()
        self.bytes_written += cut

    def close(self) -> None:
        """Flush and release the current segment handle."""
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(
                segment_path(self.directory, self._segment_index),
                "a",
                encoding="utf-8",
            )
        return self._handle

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._segment_index += 1
        self._records_in_segment = 0
        PERF.bump("journal.segments_rotated")


# ----------------------------------------------------------------------
# Scanning
# ----------------------------------------------------------------------
@dataclass
class ScanResult:
    """Everything a full journal scan found.

    Attributes:
        envelopes: Decoded record envelopes in log order (each carries
            ``seq``, ``type`` and ``data``).
        torn_tail: Description of a tolerated torn/truncated final
            record, or ``None`` when the log ends cleanly.
        errors: Mid-log structural problems (corrupt CRC, bad JSON,
            out-of-order sequence numbers).  A healthy journal has none.
        segments: ``(index, path, records)`` per scanned segment.
    """

    envelopes: List[Dict[str, object]] = field(default_factory=list)
    torn_tail: Optional[str] = None
    errors: List[str] = field(default_factory=list)
    segments: List[Tuple[int, str, int]] = field(default_factory=list)

    @property
    def last_seq(self) -> int:
        """Highest durable sequence number (0 for an empty log)."""
        return int(self.envelopes[-1]["seq"]) if self.envelopes else 0


def scan_journal(directory: str) -> ScanResult:
    """Read every segment, tolerating only a torn final record.

    A line that fails CRC or JSON checks is a *torn tail* when it is the
    last line of the last segment (a crash between write and flush);
    anywhere else it is an error.  Sequence numbers must be strictly
    increasing across the whole log.
    """
    result = ScanResult()
    segments = list_segments(directory)
    last_seq: Optional[int] = None
    for position, (index, path) in enumerate(segments):
        is_last_segment = position == len(segments) - 1
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        count = 0
        for line_no, line in enumerate(lines, start=1):
            is_tail = is_last_segment and line_no == len(lines)
            if not line.strip():
                continue
            try:
                payload = decode_line(line)
            except JournalFormatError as exc:
                if is_tail:
                    result.torn_tail = (
                        f"{os.path.basename(path)}:{line_no}: {exc}"
                    )
                else:
                    result.errors.append(
                        f"{os.path.basename(path)}:{line_no}: {exc}"
                    )
                continue
            if is_tail and not line.endswith("\n"):
                # A record without its newline survived the crash whole;
                # accept it — the CRC proves it is intact.
                pass
            seq = int(payload["seq"])  # type: ignore[arg-type]
            if last_seq is not None and seq <= last_seq:
                result.errors.append(
                    f"{os.path.basename(path)}:{line_no}: sequence number "
                    f"{seq} does not increase (previous {last_seq})"
                )
                continue
            last_seq = seq
            result.envelopes.append(payload)
            count += 1
        result.segments.append((index, path, count))
    return result
