"""Crash-consistent recovery: checkpoint + log-tail replay.

``recover()`` rebuilds the NameNode-side metadata from a journal
directory the way a restarted NameNode would: load the newest valid
checkpoint (skipping any that fail their CRC), then replay every durable
log record after it.  Replay is *idempotent* — a record whose effect is
already present (because the checkpoint captured it, or because a
previous recovery attempt half-ran) is skipped, not re-applied — and the
torn tail a mid-write crash leaves behind is discarded by the scanner.

Stripe commits are bracketed in the log as an intent/commit pair
(:class:`~repro.journal.records.BeginStripeCommit` …
:class:`~repro.journal.records.EndStripeCommit`).  A bracket still open
at the end of the log is **rolled forward** from its intent record:
parity bytes are uploaded *before* the metadata commit begins (see
``StripeEncoder._encode_once`` step ordering), so completing the commit
is always safe, and it is the only resolution that leaves no stripe
observably half-committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.journal import records as rec
from repro.journal.checkpoint import load_latest_checkpoint
from repro.journal.journal import MetadataJournal
from repro.journal.state import restore_state, state_fingerprint
from repro.journal.wal import scan_journal
from repro.sim.metrics import PERF


@dataclass
class RecoveryStats:
    """What one recovery pass did.

    Attributes:
        checkpoint_seq: Sequence number of the checkpoint used (0 when
            recovery replayed from an empty state).
        last_seq: Highest durable sequence number replayed.
        replayed_ops: Records whose effects were applied.
        skipped_ops: Records skipped because their effect was already
            present (idempotent replay).
        rolled_forward: Stripe ids whose commit bracket was completed
            from its intent record.
        torn_tail: Scanner description of a tolerated torn final record.
        errors: Structural log errors plus replay impossibilities
            (a healthy journal produces none).
    """

    checkpoint_seq: int = 0
    last_seq: int = 0
    replayed_ops: int = 0
    skipped_ops: int = 0
    rolled_forward: List[int] = field(default_factory=list)
    torn_tail: Optional[str] = None
    errors: List[str] = field(default_factory=list)


@dataclass
class RecoveredState:
    """The rebuilt stores plus the stats of the recovery pass."""

    directory: str
    block_store: object
    stripe_store: Optional[object]
    namespace: object
    dead_nodes: Set[int]
    stats: RecoveryStats
    pending_relocations: List[int] = field(default_factory=list)

    def fingerprint(self) -> str:
        """``state_fingerprint()`` of the recovered metadata."""
        return state_fingerprint(
            self.block_store, self.stripe_store, self.namespace,
            self.dead_nodes, self.pending_relocations,
        )

    def reopen_journal(self, **kwargs) -> MetadataJournal:
        """A fresh journal resuming this directory, stores attached.

        The writer starts a new segment and sequence numbers continue
        after the durable tail, so post-recovery mutations journal
        seamlessly onto the same log.
        """
        journal = MetadataJournal(self.directory, **kwargs)
        journal.attach(
            block_store=self.block_store,
            stripe_store=self.stripe_store,
            namespace=self.namespace,
        )
        journal.dead_nodes = set(self.dead_nodes)
        journal.pending_relocations = list(self.pending_relocations)
        return journal


class _Replayer:
    """Applies decoded records to the rebuilding stores, idempotently."""

    def __init__(self, topology, block_store, stripe_store, namespace,
                 dead_nodes: Set[int], stats: RecoveryStats,
                 pending_relocations: Optional[List[int]] = None) -> None:
        self.topology = topology
        self.blocks = block_store
        self.stripes = stripe_store
        self.namespace = namespace
        self.dead_nodes = dead_nodes
        self.stats = stats
        self.pending_relocations: List[int] = (
            [] if pending_relocations is None else pending_relocations
        )
        # stripe_id -> (intent record, parity ids already replayed)
        self.open_brackets: Dict[int, Tuple[rec.BeginStripeCommit, List[int]]] = {}

    # -- helpers -------------------------------------------------------
    def _applied(self) -> None:
        self.stats.replayed_ops += 1
        PERF.bump("journal.replayed_ops")

    def _skipped(self) -> None:
        self.stats.skipped_ops += 1

    def _error(self, seq: int, message: str) -> None:
        self.stats.errors.append(f"seq {seq}: {message}")

    def _ensure_stripe_store(self, k: int):
        if self.stripes is None:
            from repro.core.stripe import PreEncodingStore

            self.stripes = PreEncodingStore(k)
        return self.stripes

    # -- dispatch ------------------------------------------------------
    def apply(self, seq: int, record: rec.JournalRecord) -> None:
        handler = getattr(self, "_on_" + type(record).record_type, None)
        if handler is None:
            self._error(seq, f"no replay handler for {type(record).__name__}")
            return
        handler(seq, record)

    # -- block lifecycle ----------------------------------------------
    def _on_add_block(self, seq: int, record: rec.AddBlock) -> None:
        from repro.cluster.block import Block

        if record.block_id in self.blocks:
            self._skipped()
            return
        self.blocks.restore_block(Block(
            record.block_id, record.size, record.kind, record.stripe_id
        ))
        self._applied()

    def _on_place_replica(self, seq: int, record: rec.PlaceReplica) -> None:
        if record.block_id not in self.blocks:
            self._error(seq, f"replica of unknown block {record.block_id}")
            return
        if record.node_id in self.blocks.replica_nodes(record.block_id):
            self._skipped()
            return
        self.blocks.add_replica(
            record.block_id, record.node_id, is_primary=record.is_primary
        )
        self._applied()

    def _on_delete_replica(self, seq: int, record: rec.DeleteReplica) -> None:
        if (record.block_id not in self.blocks
                or record.node_id
                not in self.blocks.replica_nodes(record.block_id)):
            self._skipped()
            return
        self.blocks.remove_replica(record.block_id, record.node_id)
        self._applied()

    def _on_assign_stripe(self, seq: int, record: rec.AssignStripe) -> None:
        if record.block_id not in self.blocks:
            self._error(seq, f"stripe assignment for unknown block "
                             f"{record.block_id}")
            return
        if self.blocks.block(record.block_id).stripe_id == record.stripe_id:
            self._skipped()
            return
        self.blocks.assign_stripe(record.block_id, record.stripe_id)
        self._applied()

    def _on_relocate(self, seq: int, record: rec.Relocate) -> None:
        if record.block_id not in self.blocks:
            self._error(seq, f"relocation of unknown block {record.block_id}")
            return
        nodes = self.blocks.replica_nodes(record.block_id)
        if record.dst_node in nodes:
            self._skipped()
            return
        if record.src_node not in nodes:
            self._error(seq, f"relocation source {record.src_node} holds no "
                             f"replica of block {record.block_id}")
            return
        self.blocks.move_replica(
            record.block_id, record.src_node, record.dst_node
        )
        self._applied()

    def _on_mark_corrupted(self, seq: int, record: rec.MarkCorrupted) -> None:
        if (record.block_id not in self.blocks
                or record.node_id
                not in self.blocks.replica_nodes(record.block_id)):
            self._error(seq, f"corruption mark for absent replica "
                             f"({record.block_id}, {record.node_id})")
            return
        if self.blocks.is_corrupted(record.block_id, record.node_id):
            self._skipped()
            return
        self.blocks.mark_corrupted(record.block_id, record.node_id)
        self._applied()

    def _on_clear_corrupted(self, seq: int, record: rec.ClearCorrupted) -> None:
        if (record.block_id not in self.blocks
                or not self.blocks.is_corrupted(
                    record.block_id, record.node_id)):
            self._skipped()
            return
        self.blocks.clear_corrupted(record.block_id, record.node_id)
        self._applied()

    # -- stripe lifecycle ---------------------------------------------
    def _on_new_stripe(self, seq: int, record: rec.NewStripe) -> None:
        from repro.core.stripe import Stripe

        store = self._ensure_stripe_store(record.k)
        try:
            store.stripe(record.stripe_id)
            self._skipped()
            return
        except KeyError:
            pass
        store.restore_stripe(Stripe(
            stripe_id=record.stripe_id,
            k=record.k,
            core_rack=record.core_rack,
            target_racks=None if record.target_racks is None
            else tuple(record.target_racks),
        ))
        self._applied()

    def _on_stripe_add_block(self, seq: int, record: rec.StripeAddBlock) -> None:
        if self.stripes is None:
            self._error(seq, f"stripe {record.stripe_id} unknown (no store)")
            return
        try:
            stripe = self.stripes.stripe(record.stripe_id)
        except KeyError:
            self._error(seq, f"block added to unknown stripe "
                             f"{record.stripe_id}")
            return
        if record.block_id in stripe.block_ids:
            self._skipped()
            return
        self.stripes.add_block(
            record.stripe_id, record.block_id,
            seal_when_full=record.seal_when_full,
        )
        self._applied()

    def _on_seal_stripe(self, seq: int, record: rec.SealStripe) -> None:
        from repro.core.stripe import StripeState

        if self.stripes is None:
            self._error(seq, f"seal of unknown stripe {record.stripe_id}")
            return
        stripe = self.stripes.stripe(record.stripe_id)
        if stripe.state != StripeState.OPEN:
            self._skipped()
            return
        stripe.seal()
        self._applied()

    # -- the commit bracket -------------------------------------------
    def _on_begin_stripe_commit(
        self, seq: int, record: rec.BeginStripeCommit
    ) -> None:
        self.open_brackets[record.stripe_id] = (record, [])
        self._applied()

    def _on_parity_add(self, seq: int, record: rec.ParityAdd) -> None:
        from repro.cluster.block import Block, BlockKind

        bracket = self.open_brackets.get(record.stripe_id)
        if bracket is not None:
            bracket[1].append(record.block_id)
        if record.block_id in self.blocks:
            self._skipped()
            return
        self.blocks.restore_block(Block(
            record.block_id, record.size, BlockKind.PARITY, record.stripe_id
        ))
        self.blocks.add_replica(
            record.block_id, record.node_id, is_primary=True
        )
        self._applied()

    def _on_end_stripe_commit(
        self, seq: int, record: rec.EndStripeCommit
    ) -> None:
        from repro.core.stripe import StripeState

        self.open_brackets.pop(record.stripe_id, None)
        if self.stripes is None:
            self._error(seq, f"commit of unknown stripe {record.stripe_id}")
            return
        stripe = self.stripes.stripe(record.stripe_id)
        if stripe.state == StripeState.ENCODED:
            self._skipped()
            return
        stripe.mark_encoded(list(record.parity_block_ids))
        self._applied()

    def roll_forward_open_brackets(self) -> None:
        """Complete every still-open commit bracket from its intent.

        Reproduces ``NameNode.record_encoding`` exactly: the remaining
        parity blocks are created in plan order (the sequential id
        counter regenerates the ids the crashed process would have
        allocated), then the retention pairs are applied with the same
        surviving-keeper fallback, then the stripe is marked encoded.
        """
        from repro.cluster.block import BlockKind
        from repro.core.stripe import StripeState

        for stripe_id in sorted(self.open_brackets):
            intent, parity_ids = self.open_brackets[stripe_id]
            parity_ids = list(parity_ids)
            for node_id in intent.parity_nodes[len(parity_ids):]:
                parity = self.blocks.create_block(
                    intent.parity_size, kind=BlockKind.PARITY,
                    stripe_id=stripe_id,
                )
                self.blocks.add_replica(
                    parity.block_id, node_id, is_primary=True
                )
                parity_ids.append(parity.block_id)
            for block_id, node_id in intent.retained:
                survivors = self.blocks.replica_nodes(block_id)
                if not survivors:
                    continue
                keeper = node_id if node_id in survivors else survivors[0]
                self.blocks.retain_only(block_id, keeper)
            if self.stripes is not None:
                stripe = self.stripes.stripe(stripe_id)
                if stripe.state != StripeState.ENCODED:
                    stripe.mark_encoded(parity_ids)
            self.stats.rolled_forward.append(stripe_id)
        self.open_brackets.clear()

    # -- relocation backlog -------------------------------------------
    def _on_relocation_requested(
        self, seq: int, record: rec.RelocationRequested
    ) -> None:
        # Duplicates are legal (the same stripe can be flagged twice),
        # so no idempotence check: every request record is one backlog
        # entry, matched by one relocation_served record.
        self.pending_relocations.append(record.stripe_id)
        self._applied()

    def _on_relocation_served(
        self, seq: int, record: rec.RelocationServed
    ) -> None:
        if record.stripe_id not in self.pending_relocations:
            self._skipped()
            return
        self.pending_relocations.remove(record.stripe_id)
        self._applied()

    # -- node liveness -------------------------------------------------
    def _on_node_dead(self, seq: int, record: rec.NodeDead) -> None:
        if record.node_id in self.dead_nodes:
            self._skipped()
            return
        self.dead_nodes.add(record.node_id)
        self._applied()

    def _on_node_alive(self, seq: int, record: rec.NodeAlive) -> None:
        if record.node_id not in self.dead_nodes:
            self._skipped()
            return
        self.dead_nodes.discard(record.node_id)
        self._applied()

    # -- file namespace ------------------------------------------------
    def _on_file_create(self, seq: int, record: rec.FileCreate) -> None:
        if self.namespace.exists(record.name):
            self._skipped()
            return
        self.namespace.create(record.name)
        self._applied()

    def _on_file_append_block(
        self, seq: int, record: rec.FileAppendBlock
    ) -> None:
        if not self.namespace.exists(record.name):
            self._error(seq, f"block appended to unknown file {record.name!r}")
            return
        if record.block_id in self.namespace.lookup(record.name).block_ids:
            self._skipped()
            return
        self.namespace.append_block(record.name, record.block_id, record.size)
        self._applied()

    def _on_file_delete(self, seq: int, record: rec.FileDelete) -> None:
        if not self.namespace.exists(record.name):
            self._skipped()
            return
        self.namespace.delete(record.name)
        self._applied()


def recover(
    directory: str,
    topology,
    k: Optional[int] = None,
) -> RecoveredState:
    """Rebuild the metadata from a journal directory.

    Args:
        directory: The journal directory (segments + checkpoints).
        topology: The cluster topology the stores describe (topology is
            configuration, not journaled state).
        k: Stripe width for the pre-encoding store when neither a
            checkpoint nor a ``new_stripe`` record establishes one
            (``None`` leaves the stripe store absent).

    Returns:
        The rebuilt stores plus a :class:`RecoveryStats` describing the
        pass.  The stores come back *detached*; call
        :meth:`RecoveredState.reopen_journal` to resume journaling.
    """
    stats = RecoveryStats()
    checkpoint, warnings = load_latest_checkpoint(directory)
    stats.errors.extend(warnings)

    if checkpoint is not None:
        restored = restore_state(checkpoint.state, topology)
        block_store = restored.block_store
        stripe_store = restored.stripe_store
        namespace = restored.namespace
        dead_nodes = restored.dead_nodes
        pending_relocations = restored.pending_relocations
        stats.checkpoint_seq = checkpoint.last_seq
    else:
        from repro.cluster.block import BlockStore
        from repro.core.stripe import PreEncodingStore
        from repro.hdfs.files import FileNamespace

        block_store = BlockStore(topology)
        stripe_store = None if k is None else PreEncodingStore(k)
        namespace = FileNamespace()
        dead_nodes = set()
        pending_relocations = []

    scan = scan_journal(directory)
    stats.torn_tail = scan.torn_tail
    stats.errors.extend(scan.errors)
    stats.last_seq = scan.last_seq

    replayer = _Replayer(
        topology, block_store, stripe_store, namespace, dead_nodes, stats,
        pending_relocations=pending_relocations,
    )
    for envelope in scan.envelopes:
        seq = int(envelope["seq"])  # type: ignore[arg-type]
        if seq <= stats.checkpoint_seq:
            continue
        try:
            record = rec.decode_record(envelope)
        except (rec.UnknownRecordError, TypeError, ValueError) as exc:
            replayer._error(seq, f"undecodable record: {exc}")
            continue
        replayer.apply(seq, record)
    replayer.roll_forward_open_brackets()

    return RecoveredState(
        directory=directory,
        block_store=replayer.blocks,
        stripe_store=replayer.stripes,
        namespace=replayer.namespace,
        dead_nodes=replayer.dead_nodes,
        stats=stats,
        pending_relocations=replayer.pending_relocations,
    )


def verify_stripe_consistency(block_store, stripe_store) -> List[str]:
    """Check that no stripe is observably half-committed.

    A stripe is half-committed when parity blocks for it exist in the
    block store while the stripe itself is not (yet) encoded, or when an
    encoded stripe's registered parity set disagrees with the block
    store.  Returns human-readable problems (empty = consistent).
    """
    from repro.core.stripe import StripeState

    problems: List[str] = []
    if stripe_store is None:
        return problems
    parity_by_stripe: Dict[int, Set[int]] = {}
    for block in block_store.blocks():
        if block.is_parity() and block.stripe_id is not None:
            parity_by_stripe.setdefault(
                block.stripe_id, set()
            ).add(block.block_id)
    for stripe in sorted(stripe_store, key=lambda s: s.stripe_id):
        registered = parity_by_stripe.get(stripe.stripe_id, set())
        if stripe.state == StripeState.ENCODED:
            if not stripe.parity_block_ids:
                problems.append(
                    f"stripe {stripe.stripe_id} is encoded but records no "
                    f"parity blocks"
                )
            if set(stripe.parity_block_ids) != registered:
                problems.append(
                    f"stripe {stripe.stripe_id} parity mismatch: stripe "
                    f"records {sorted(stripe.parity_block_ids)}, block "
                    f"store holds {sorted(registered)}"
                )
            for parity_id in stripe.parity_block_ids:
                if (parity_id in block_store
                        and not block_store.replica_nodes(parity_id)):
                    problems.append(
                        f"parity block {parity_id} of stripe "
                        f"{stripe.stripe_id} has no replica"
                    )
        elif registered:
            problems.append(
                f"stripe {stripe.stripe_id} is {stripe.state} but parity "
                f"blocks {sorted(registered)} exist — half-committed"
            )
    return problems
