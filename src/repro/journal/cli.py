"""``repro journal`` — operator tooling for journal directories.

Three subcommands:

* ``dump``   — print every record (seq, type, fields) in log order;
* ``verify`` — run the structural checks and exit non-zero on errors;
* ``stats``  — record/segment/checkpoint counts, byte sizes, and a
  per-record-type histogram.

Wired into the main ``repro`` CLI; also runnable standalone via
``python -m repro.journal.cli``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from repro.journal import records as rec
from repro.journal.checkpoint import list_checkpoints
from repro.journal.verify import verify_journal
from repro.journal.wal import list_segments, scan_journal


def add_journal_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the journal subcommands to an argparse parser."""
    sub = parser.add_subparsers(dest="journal_command", required=True)

    dump = sub.add_parser("dump", help="print every record in log order")
    dump.add_argument("directory", help="journal directory")
    dump.add_argument(
        "--json", action="store_true", dest="as_json",
        help="one JSON object per line instead of aligned text",
    )
    dump.add_argument(
        "--type", dest="type_filter", default=None,
        help="only records of this type tag (e.g. parity_add)",
    )

    verify = sub.add_parser(
        "verify", help="structural checks; non-zero exit on errors"
    )
    verify.add_argument("directory", help="journal directory")

    stats = sub.add_parser("stats", help="counts, sizes, type histogram")
    stats.add_argument("directory", help="journal directory")
    stats.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable JSON output",
    )


def cmd_journal(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro journal ...`` invocation."""
    try:
        if args.journal_command == "dump":
            return _cmd_dump(args.directory, args.as_json, args.type_filter)
        if args.journal_command == "verify":
            return _cmd_verify(args.directory)
        return _cmd_stats(args.directory, args.as_json)
    except BrokenPipeError:  # downstream pager/head closed the pipe
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _cmd_dump(
    directory: str, as_json: bool, type_filter: Optional[str]
) -> int:
    scan = scan_journal(directory)
    for envelope in scan.envelopes:
        type_tag = envelope.get("type")
        if type_filter is not None and type_tag != type_filter:
            continue
        if as_json:
            print(json.dumps(envelope, sort_keys=True))
        else:
            data = envelope.get("data") or {}
            fields = " ".join(
                f"{key}={data[key]!r}" for key in sorted(data)
            )
            print(f"{envelope['seq']:>8}  {type_tag:<20}  {fields}")
    if scan.torn_tail:
        print(f"# torn tail (tolerated): {scan.torn_tail}", file=sys.stderr)
    for error in scan.errors:
        print(f"# ERROR: {error}", file=sys.stderr)
    return 1 if scan.errors else 0


def _cmd_verify(directory: str) -> int:
    report = verify_journal(directory)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_stats(directory: str, as_json: bool) -> int:
    scan = scan_journal(directory)
    histogram: Dict[str, int] = {}
    for envelope in scan.envelopes:
        type_tag = str(envelope.get("type"))
        histogram[type_tag] = histogram.get(type_tag, 0) + 1
    segment_bytes = sum(
        os.path.getsize(path) for _idx, path in list_segments(directory)
    )
    checkpoint_bytes = sum(
        os.path.getsize(path) for _seq, path in list_checkpoints(directory)
    )
    payload = {
        "directory": directory,
        "records": len(scan.envelopes),
        "last_seq": scan.last_seq,
        "segments": len(scan.segments),
        "segment_bytes": segment_bytes,
        "checkpoints": len(list_checkpoints(directory)),
        "checkpoint_bytes": checkpoint_bytes,
        "torn_tail": scan.torn_tail,
        "errors": scan.errors,
        "record_types": {key: histogram[key] for key in sorted(histogram)},
    }
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"journal: {directory}")
        print(f"records: {payload['records']} (last seq {payload['last_seq']})")
        print(f"segments: {payload['segments']} ({segment_bytes} bytes)")
        print(
            f"checkpoints: {payload['checkpoints']} "
            f"({checkpoint_bytes} bytes)"
        )
        if scan.torn_tail:
            print(f"torn tail (tolerated): {scan.torn_tail}")
        for error in scan.errors:
            print(f"ERROR: {error}")
        for type_tag in sorted(histogram):
            print(f"  {type_tag:<20} {histogram[type_tag]}")
    return 1 if scan.errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.journal.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro-journal",
        description="Inspect and verify metadata journal directories.",
    )
    add_journal_arguments(parser)
    args = parser.parse_args(argv)
    return cmd_journal(args)


if __name__ == "__main__":
    raise SystemExit(main())
