"""Typed, frozen journal records — the write-ahead log's vocabulary.

Every metadata mutation the NameNode-side stores can perform has exactly
one record type here.  Records are immutable dataclasses whose fields are
restricted to JSON-serializable types (ints, strings, bools, optionals
and tuples thereof — enforced statically by reprolint rule ``JRN001``),
so a record round-trips losslessly through the on-disk envelope and two
encodes of the same record are byte-identical.

The stripe *commit* is bracketed by an intent/commit pair:
:class:`BeginStripeCommit` carries the full plan (parity nodes and the
retained-replica map), the per-step effects are journaled as
:class:`ParityAdd` / :class:`DeleteReplica` records, and
:class:`EndStripeCommit` seals the bracket.  Recovery rolls an open
bracket forward from the intent, so no crash point can leave a stripe
observably half-committed.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple, Type


@dataclass(frozen=True)
class JournalRecord:
    """Base class for all journal records.

    Subclasses set ``record_type`` (the stable on-disk type tag) and are
    frozen dataclasses with JSON-serializable fields only (rule JRN001).
    """

    record_type: ClassVar[str] = ""

    def to_payload(self) -> Dict[str, object]:
        """The record's fields as a JSON-ready dict."""
        out: Dict[str, object] = {}
        for spec in fields(self):
            out[spec.name] = _jsonify(getattr(self, spec.name))
        return out


def _jsonify(value: object) -> object:
    if isinstance(value, tuple):
        return [_jsonify(item) for item in value]
    return value


def _tupleize(value: object) -> object:
    if isinstance(value, list):
        return tuple(_tupleize(item) for item in value)
    return value


# ----------------------------------------------------------------------
# Block lifecycle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddBlock(JournalRecord):
    """A data block was allocated (id, size, kind, optional stripe)."""

    record_type: ClassVar[str] = "add_block"

    block_id: int
    size: int
    kind: str
    stripe_id: Optional[int] = None


@dataclass(frozen=True)
class PlaceReplica(JournalRecord):
    """One replica of a block was recorded on a node."""

    record_type: ClassVar[str] = "place_replica"

    block_id: int
    node_id: int
    is_primary: bool = False


@dataclass(frozen=True)
class DeleteReplica(JournalRecord):
    """One replica of a block was deleted from a node."""

    record_type: ClassVar[str] = "delete_replica"

    block_id: int
    node_id: int


@dataclass(frozen=True)
class AssignStripe(JournalRecord):
    """A block was bound to a stripe in the block store."""

    record_type: ClassVar[str] = "assign_stripe"

    block_id: int
    stripe_id: int


@dataclass(frozen=True)
class Relocate(JournalRecord):
    """A replica moved between nodes (BlockMover / repair relocation)."""

    record_type: ClassVar[str] = "relocate"

    block_id: int
    src_node: int
    dst_node: int


@dataclass(frozen=True)
class MarkCorrupted(JournalRecord):
    """A replica's checksum no longer matches (bit-rot detected)."""

    record_type: ClassVar[str] = "mark_corrupted"

    block_id: int
    node_id: int


@dataclass(frozen=True)
class ClearCorrupted(JournalRecord):
    """A previously corrupted replica was rewritten from a good copy."""

    record_type: ClassVar[str] = "clear_corrupted"

    block_id: int
    node_id: int


# ----------------------------------------------------------------------
# Stripe lifecycle and the commit bracket
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NewStripe(JournalRecord):
    """A fresh stripe was opened in the pre-encoding store."""

    record_type: ClassVar[str] = "new_stripe"

    stripe_id: int
    k: int
    core_rack: Optional[int] = None
    target_racks: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.target_racks is not None:
            object.__setattr__(
                self, "target_racks", tuple(self.target_racks)
            )


@dataclass(frozen=True)
class StripeAddBlock(JournalRecord):
    """A data block joined an open stripe (sealing when it reaches k)."""

    record_type: ClassVar[str] = "stripe_add_block"

    stripe_id: int
    block_id: int
    seal_when_full: bool = True


@dataclass(frozen=True)
class SealStripe(JournalRecord):
    """A stripe was explicitly sealed (eligible for encoding)."""

    record_type: ClassVar[str] = "seal_stripe"

    stripe_id: int


@dataclass(frozen=True)
class BeginStripeCommit(JournalRecord):
    """Intent record opening a stripe-commit bracket.

    Carries everything recovery needs to roll the commit forward:
    the parity nodes in creation order, the parity block size, and the
    planned ``(block_id, node_id)`` retention pairs.
    """

    record_type: ClassVar[str] = "begin_stripe_commit"

    stripe_id: int
    parity_nodes: Tuple[int, ...]
    parity_size: int
    retained: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parity_nodes", tuple(self.parity_nodes))
        object.__setattr__(
            self, "retained", tuple(tuple(pair) for pair in self.retained)
        )


@dataclass(frozen=True)
class ParityAdd(JournalRecord):
    """One parity block was created and placed on its node."""

    record_type: ClassVar[str] = "parity_add"

    stripe_id: int
    block_id: int
    node_id: int
    size: int


@dataclass(frozen=True)
class EndStripeCommit(JournalRecord):
    """Commit record closing a stripe-commit bracket."""

    record_type: ClassVar[str] = "end_stripe_commit"

    stripe_id: int
    parity_block_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "parity_block_ids", tuple(self.parity_block_ids)
        )


# ----------------------------------------------------------------------
# Relocation requests (repair-queue placement-violation backlog)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RelocationRequested(JournalRecord):
    """A repair committed a rack-cap violation; the stripe awaits a move.

    The repair queue journals the request *before* adding the stripe to
    its in-memory backlog, so a crash mid-storm replays the same pending
    relocations instead of silently forgetting the violation.
    """

    record_type: ClassVar[str] = "relocation_requested"

    stripe_id: int


@dataclass(frozen=True)
class RelocationServed(JournalRecord):
    """A pending relocation request left the backlog.

    Written when the mover served the request — or when a transient
    failure deferred it to the next violation scan; either way the
    request is no longer pending, so replay must drop it too.
    """

    record_type: ClassVar[str] = "relocation_served"

    stripe_id: int


# ----------------------------------------------------------------------
# Node liveness (permanent membership changes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NodeDead(JournalRecord):
    """A node left the cluster permanently (metadata-visible death)."""

    record_type: ClassVar[str] = "node_dead"

    node_id: int


@dataclass(frozen=True)
class NodeAlive(JournalRecord):
    """A previously dead node rejoined the cluster."""

    record_type: ClassVar[str] = "node_alive"

    node_id: int


# ----------------------------------------------------------------------
# File namespace
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FileCreate(JournalRecord):
    """A file name was created in the namespace."""

    record_type: ClassVar[str] = "file_create"

    name: str


@dataclass(frozen=True)
class FileAppendBlock(JournalRecord):
    """A block was appended to a file."""

    record_type: ClassVar[str] = "file_append_block"

    name: str
    block_id: int
    size: int


@dataclass(frozen=True)
class FileDelete(JournalRecord):
    """A file was removed from the namespace."""

    record_type: ClassVar[str] = "file_delete"

    name: str


# ----------------------------------------------------------------------
# Registry and (de)serialization
# ----------------------------------------------------------------------
RECORD_TYPES: Dict[str, Type[JournalRecord]] = {
    cls.record_type: cls
    for cls in (
        AddBlock, PlaceReplica, DeleteReplica, AssignStripe, Relocate,
        MarkCorrupted, ClearCorrupted,
        NewStripe, StripeAddBlock, SealStripe,
        BeginStripeCommit, ParityAdd, EndStripeCommit,
        RelocationRequested, RelocationServed,
        NodeDead, NodeAlive,
        FileCreate, FileAppendBlock, FileDelete,
    )
}


class UnknownRecordError(ValueError):
    """Raised when decoding a record whose type tag is not registered."""


def encode_record(record: JournalRecord) -> Dict[str, object]:
    """``record`` as its on-disk envelope payload (type tag + fields)."""
    if type(record).record_type not in RECORD_TYPES:
        raise UnknownRecordError(
            f"record class {type(record).__name__} is not registered"
        )
    return {"type": type(record).record_type, "data": record.to_payload()}


def decode_record(payload: Dict[str, object]) -> JournalRecord:
    """Rebuild a record from its envelope payload.

    Raises:
        UnknownRecordError: For unregistered type tags.
        TypeError / ValueError: For malformed field sets.
    """
    type_tag = payload.get("type")
    cls = RECORD_TYPES.get(type_tag)  # type: ignore[arg-type]
    if cls is None:
        raise UnknownRecordError(f"unknown journal record type {type_tag!r}")
    data = payload.get("data")
    if not isinstance(data, dict):
        raise ValueError(f"record {type_tag!r} has no data object")
    kwargs = {str(key): _tupleize(value) for key, value in data.items()}
    return cls(**kwargs)
