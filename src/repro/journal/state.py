"""Canonical metadata state: capture, fingerprint, restore.

``capture_state`` flattens the NameNode-side metadata — block store,
pre-encoding store, file namespace, dead-node set — into one canonical,
JSON-serializable dict; ``state_fingerprint`` hashes that dict.  The
fingerprint is the durability layer's correctness oracle: for any crash
point, the fingerprint of the recovered metadata must equal the
fingerprint the pre-crash process would have produced at the same
consistency point (see :mod:`repro.faults.crash`).

Replica lists are kept in *insertion order* (not sorted): journal replay
reproduces the exact insertion history, so the stricter ordered
comparison is both achievable and more sensitive — it catches replay
reorderings that a set-compare would mask.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


def capture_state(
    block_store,
    stripe_store=None,
    namespace=None,
    dead_nodes: Iterable[int] = (),
    pending_relocations: Iterable[int] = (),
) -> Dict[str, object]:
    """The full metadata state as one canonical JSON-serializable dict."""
    blocks: List[List[object]] = []
    replicas: Dict[str, List[List[object]]] = {}
    for block in sorted(block_store.blocks(), key=lambda b: b.block_id):
        blocks.append(
            [block.block_id, block.size, block.kind, block.stripe_id]
        )
        replicas[str(block.block_id)] = [
            [replica.node_id, bool(replica.is_primary)]
            for replica in block_store.replicas(block.block_id)
        ]
    state: Dict[str, object] = {
        "blocks": blocks,
        "replicas": replicas,
        "corrupted": [list(pair) for pair in block_store.corrupted_replicas()],
        "next_block_id": block_store.next_block_id,
        "dead_nodes": sorted(dead_nodes),
        # Request order, not sorted: replay reproduces the exact backlog
        # sequence, so the stricter ordered comparison is achievable.
        "pending_relocations": list(pending_relocations),
        "stripes": None,
        "files": [],
    }
    if stripe_store is not None:
        items = []
        for stripe in sorted(stripe_store, key=lambda s: s.stripe_id):
            items.append([
                stripe.stripe_id,
                stripe.k,
                list(stripe.block_ids),
                stripe.core_rack,
                None if stripe.target_racks is None
                else list(stripe.target_racks),
                stripe.state,
                list(stripe.parity_block_ids),
            ])
        state["stripes"] = {
            "k": stripe_store.k,
            "next_stripe_id": stripe_store.next_stripe_id,
            "items": items,
        }
    if namespace is not None:
        state["files"] = [
            [meta.name, list(meta.block_ids), meta.size]
            for meta in namespace.files()
        ]
    return state


def canonical_json(state: Dict[str, object]) -> str:
    """The canonical (sorted-keys, tight-separator) encoding of a state."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def state_fingerprint(
    block_store,
    stripe_store=None,
    namespace=None,
    dead_nodes: Iterable[int] = (),
    pending_relocations: Iterable[int] = (),
) -> str:
    """sha256 over the canonical metadata state.

    Deterministic for identical metadata regardless of host, hash seed,
    or the path (live mutation vs journal replay) that produced it.
    """
    blob = canonical_json(
        capture_state(
            block_store, stripe_store, namespace, dead_nodes,
            pending_relocations,
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RestoredStores:
    """Fresh store objects rebuilt from a captured state."""

    block_store: object
    stripe_store: Optional[object]
    namespace: object
    dead_nodes: set
    pending_relocations: List[int]


def restore_state(state: Dict[str, object], topology) -> RestoredStores:
    """Rebuild live stores from a captured (or checkpointed) state dict.

    The restored stores are detached (``journal is None``); recovery
    attaches a journal only after replay completes, so rebuilding never
    re-journals history.
    """
    from repro.cluster.block import Block, BlockStore
    from repro.core.stripe import PreEncodingStore, Stripe
    from repro.hdfs.files import FileNamespace

    block_store = BlockStore(topology)
    for block_id, size, kind, stripe_id in state.get("blocks", []):
        block_store.restore_block(Block(block_id, size, kind, stripe_id))
    for key, entries in state.get("replicas", {}).items():
        for node_id, is_primary in entries:
            block_store.add_replica(int(key), node_id, is_primary=is_primary)
    for block_id, node_id in state.get("corrupted", []):
        block_store.mark_corrupted(block_id, node_id)
    next_block_id = state.get("next_block_id")
    if isinstance(next_block_id, int):
        block_store.resume_ids(next_block_id)

    stripe_store: Optional[PreEncodingStore] = None
    stripes_blob = state.get("stripes")
    if isinstance(stripes_blob, dict):
        stripe_store = PreEncodingStore(int(stripes_blob["k"]))
        for item in stripes_blob.get("items", []):
            (stripe_id, k, block_ids, core_rack,
             target_racks, stripe_state, parity_ids) = item
            stripe = Stripe(
                stripe_id=stripe_id,
                k=k,
                block_ids=list(block_ids),
                core_rack=core_rack,
                target_racks=None if target_racks is None
                else tuple(target_racks),
                state=stripe_state,
                parity_block_ids=list(parity_ids),
            )
            stripe_store.restore_stripe(stripe)
        next_stripe_id = stripes_blob.get("next_stripe_id")
        if isinstance(next_stripe_id, int):
            stripe_store.resume_ids(next_stripe_id)

    namespace = FileNamespace()
    for name, block_ids, size in state.get("files", []):
        namespace.restore_file(name, block_ids, size)

    return RestoredStores(
        block_store=block_store,
        stripe_store=stripe_store,
        namespace=namespace,
        dead_nodes=set(state.get("dead_nodes", [])),
        pending_relocations=[
            int(sid) for sid in state.get("pending_relocations", [])
        ],
    )
